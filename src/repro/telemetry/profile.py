"""Low-overhead phase profiler with self-timed overhead accounting.

The registry counts *what* happened and spans record *sampled* walks;
this module answers the remaining question — **where did the wall time
go** — with per-phase cost attribution cheap enough to leave on for a
whole run:

* :class:`PhaseProfiler` maintains a stack of named phases; each
  ``with profiler.phase("gather")`` charges its inclusive and self
  (exclusive) seconds to the full stack path, flamegraph-style.
* The profiler times itself: a calibration loop at construction
  measures the per-phase bookkeeping cost on this host, and
  ``overhead_seconds`` reports ``events × per-event cost`` as part of
  every snapshot — the measurement error is itself measured.
* :func:`~repro.telemetry.memory.sample_rusage` readings bracket the
  profile, so page-fault and RSS deltas sit next to the phase table
  (I/O-bound phases show up as major faults, the ThunderRW discipline).
* Output renders two ways: a phase table (inclusive / self / calls /
  share of root time) and collapsed-stack text (``a;b;c <µs>`` per
  line) that any flamegraph tool ingests directly.

Like the tracer, a profiler is **single-threaded by design** — one
stack. Parallel workers each profile their own chunk and the engine
absorbs the snapshots under a prefix at the join barrier
(:meth:`PhaseProfiler.absorb`), the same per-worker discipline as the
metrics registry. :data:`NULL_PROFILER` is the shared off switch: its
``phase()`` returns a no-op context manager, costing one attribute
check and one method call per instrumented site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.clock import now as _now
from repro.telemetry.memory import sample_rusage

#: Enter/exit cycles the construction-time calibration loop runs to
#: estimate per-event bookkeeping cost. 256 pairs cost ~100 µs once.
CALIBRATION_EVENTS = 256

#: Phase paths are stored as tuples of names; rendered joined by ";"
#: (the collapsed-stack separator flamegraph tools expect).
PathKey = Tuple[str, ...]


class _NullPhase:
    """Reusable no-op context manager handed out by the null profiler."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class NullProfiler:
    """Disabled profiler: every call is a cheap no-op.

    Shared as :data:`NULL_PROFILER` — it holds no state, so one
    instance can serve every engine simultaneously.
    """

    __slots__ = ()
    enabled = False

    def phase(self, name: str):
        return _NULL_PHASE

    def add_seconds(self, path, seconds: float, calls: int = 1,
                    self_seconds: Optional[float] = None) -> None:
        pass

    def absorb(self, snapshot, prefix=()) -> None:
        pass


NULL_PROFILER = NullProfiler()


class _Frame:
    """One open phase: context manager that charges its path on exit."""

    __slots__ = ("profiler", "path", "start", "child_seconds")

    def __init__(self, profiler: "PhaseProfiler", path: PathKey):
        self.profiler = profiler
        self.path = path
        self.start = 0.0
        self.child_seconds = 0.0

    def __enter__(self):
        self.profiler._stack.append(self)
        self.start = _now()
        return self

    def __exit__(self, *exc):
        end = _now()
        prof = self.profiler
        prof._stack.pop()
        inclusive = end - self.start
        prof._charge(self.path, inclusive, inclusive - self.child_seconds)
        if prof._stack:
            prof._stack[-1].child_seconds += inclusive
        return False


class PhaseProfiler:
    """Stack-based hierarchical phase profiler.

    ``phases`` maps a path tuple to ``[calls, inclusive_s, self_s]``.
    Self time can go *negative* for synthetic parents whose absorbed
    children overlap in real time (parallel chunk execution folded
    under one ``walk`` phase); rendering clamps it at zero.
    """

    enabled = True

    def __init__(self, calibrate: bool = True):
        self.phases: Dict[PathKey, List[float]] = {}
        self.events = 0
        self._stack: List[_Frame] = []
        self.rusage_start = sample_rusage()
        #: Seconds of profiler bookkeeping per phase() enter/exit pair,
        #: measured on this host at construction (0.0 when skipped).
        self.per_event_seconds = (
            _calibrate_per_event() if calibrate else _cached_per_event()
        )

    # -- recording ---------------------------------------------------------

    def phase(self, name: str) -> _Frame:
        """Open a phase; use as ``with profiler.phase("gather"):``."""
        if self._stack:
            path = self._stack[-1].path + (name,)
        else:
            path = (name,)
        return _Frame(self, path)

    def _charge(self, path: PathKey, inclusive: float, self_seconds: float) -> None:
        self.events += 1
        cell = self.phases.get(path)
        if cell is None:
            self.phases[path] = [1, inclusive, self_seconds]
        else:
            cell[0] += 1
            cell[1] += inclusive
            cell[2] += self_seconds

    def add_seconds(self, path, seconds: float, calls: int = 1,
                    self_seconds: Optional[float] = None) -> None:
        """Charge externally-measured time to ``path`` (synthetic phase).

        The parallel engine uses this for per-chunk queue waits and
        worker wall time it measured at the barrier rather than inline.
        ``self_seconds`` defaults to ``seconds`` (a leaf); pass 0.0 when
        absorbed children already account for the interior.
        """
        key = tuple(path) if not isinstance(path, tuple) else path
        own = seconds if self_seconds is None else self_seconds
        cell = self.phases.get(key)
        if cell is None:
            self.phases[key] = [calls, seconds, own]
        else:
            cell[0] += calls
            cell[1] += seconds
            cell[2] += own

    def absorb(self, snapshot: Optional[dict], prefix=()) -> None:
        """Fold a worker profiler's :meth:`snapshot` in under ``prefix``.

        Associative like the registry merge: per-chunk profiles from
        any completion order fold to the same totals.
        """
        if not snapshot:
            return
        prefix = tuple(prefix)
        for joined, cell in snapshot.get("phases", {}).items():
            key = prefix + tuple(joined.split(";"))
            self.add_seconds(
                key, cell["inclusive_s"], calls=cell["calls"],
                self_seconds=cell["self_s"],
            )
        self.events += int(snapshot.get("events", 0))

    # -- views -------------------------------------------------------------

    @property
    def overhead_seconds(self) -> float:
        """Estimated profiler bookkeeping cost included in this profile."""
        return self.events * self.per_event_seconds

    def root_seconds(self) -> float:
        """Sum of inclusive time over root phases (≈ profiled wall time)."""
        return sum(
            cell[1] for path, cell in self.phases.items() if len(path) == 1
        )

    def phase_seconds(self, name: str) -> float:
        """Inclusive seconds of every path ending in ``name``."""
        return sum(
            cell[1] for path, cell in self.phases.items() if path[-1] == name
        )

    def snapshot(self) -> dict:
        """JSON/pickle-ready form (ships from workers, feeds reports)."""
        rusage_end = sample_rusage()
        doc = {
            "phases": {
                ";".join(path): {
                    "calls": int(cell[0]),
                    "inclusive_s": cell[1],
                    "self_s": cell[2],
                }
                for path, cell in sorted(self.phases.items())
            },
            "events": self.events,
            "overhead_seconds": self.overhead_seconds,
        }
        if self.rusage_start is not None and rusage_end is not None:
            doc["rusage"] = rusage_end.delta(self.rusage_start)
        return doc

    # -- rendering ---------------------------------------------------------

    def collapsed_stacks(self) -> str:
        """Flamegraph-compatible collapsed-stack text (self time, µs).

        One line per path: ``root;child;leaf <count>`` where the count
        is integer microseconds of *self* time (clamped at zero — see
        the class note on synthetic parents).
        """
        lines = []
        for path, cell in sorted(self.phases.items()):
            micros = int(round(max(cell[2], 0.0) * 1e6))
            lines.append(f"{';'.join(path)} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def format_table(self, wall_seconds: Optional[float] = None) -> str:
        """Human phase table: inclusive/self/calls/share, plus footers
        for coverage (vs ``wall_seconds``), overhead, and rusage."""
        total = self.root_seconds()
        lines = [
            f"{'phase':<40} {'calls':>8} {'incl_s':>10} {'self_s':>10} {'share':>7}"
        ]
        for path, cell in sorted(self.phases.items()):
            label = "  " * (len(path) - 1) + path[-1]
            share = (cell[1] / total * 100.0) if total else 0.0
            lines.append(
                f"{label:<40} {int(cell[0]):>8} {cell[1]:>10.4f} "
                f"{max(cell[2], 0.0):>10.4f} {share:>6.1f}%"
            )
        lines.append(
            f"profiled: {total:.4f}s over {self.events} phase events; "
            f"estimated profiler overhead {self.overhead_seconds * 1e3:.3f} ms"
        )
        if wall_seconds:
            lines.append(
                f"coverage: {total / wall_seconds * 100.0:.1f}% of "
                f"{wall_seconds:.4f}s wall"
            )
        rusage_end = sample_rusage()
        if self.rusage_start is not None and rusage_end is not None:
            d = rusage_end.delta(self.rusage_start)
            lines.append(
                f"rusage: maxrss={d['max_rss_bytes'] // 1024} KiB "
                f"majflt={d['major_faults']} minflt={d['minor_faults']} "
                f"utime={d['utime_seconds']:.3f}s stime={d['stime_seconds']:.3f}s"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Overhead calibration
# ---------------------------------------------------------------------------

_PER_EVENT_CACHE: Optional[float] = None


def _calibrate_per_event() -> float:
    """Measure this host's per-phase bookkeeping cost (cached).

    Runs a throwaway profiler through ``CALIBRATION_EVENTS`` enter/exit
    pairs and divides. Cached per process so per-chunk worker profilers
    (``calibrate=False`` + :func:`_cached_per_event`) and repeated CLI
    runs never pay it twice.
    """
    global _PER_EVENT_CACHE
    if _PER_EVENT_CACHE is None:
        probe = PhaseProfiler.__new__(PhaseProfiler)
        probe.phases = {}
        probe.events = 0
        probe._stack = []
        probe.rusage_start = None
        probe.per_event_seconds = 0.0
        t0 = _now()
        for _ in range(CALIBRATION_EVENTS):
            with probe.phase("calibrate"):
                pass
        _PER_EVENT_CACHE = (_now() - t0) / CALIBRATION_EVENTS
    return _PER_EVENT_CACHE


def _cached_per_event() -> float:
    """The already-calibrated per-event cost, or 0.0 if never measured."""
    return _PER_EVENT_CACHE or 0.0
