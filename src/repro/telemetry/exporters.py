"""Exporters: Prometheus text exposition, JSON run reports, human tables.

Three consumers of one :class:`~repro.telemetry.MetricsRegistry`:

* :func:`to_prometheus` — the text exposition format scrapers ingest
  (counters, gauges, and cumulative ``_bucket``/``_sum``/``_count``
  histogram series). :func:`parse_prometheus` is the matching reader,
  used by the round-trip tests and by anyone post-processing saved
  exposition files.
* :func:`build_run_report` / :func:`validate_run_report` — a
  schema-versioned JSON document (metrics + span tree + run metadata)
  written next to ``bench_results``; ``tea-repro stats --report`` replays
  one.
* :func:`format_stats_table` — the ``--stats`` human rendering.

Validation is hand-rolled (no jsonschema dependency): a report either
validates to an empty error list or names every violation.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import Tracer

#: Version stamp every JSON run report carries; bump on layout changes.
REPORT_SCHEMA = "tea-repro/run-report/v1"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str = "tea") -> str:
    flat = _NAME_RE.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


class _NameTable:
    """Collision-proof sanitized names: ``cache.hits`` and ``cache hits``
    both flatten to ``tea_cache_hits``, so the second (and later) takers
    get a deterministic ``_2``/``_3`` suffix instead of silently merging
    two different metrics into one exposition series."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._taken: Dict[str, int] = {}

    def assign(self, raw_name: str) -> str:
        base = _prom_name(raw_name, self.prefix)
        n = self._taken.get(base)
        if n is None:
            self._taken[base] = 1
            return base
        while True:
            n += 1
            candidate = f"{base}_{n}"
            if candidate not in self._taken:
                break
        self._taken[base] = n
        self._taken[candidate] = 1
        return candidate


def _prom_value(value) -> str:
    # Prometheus text format spells special values +Inf / -Inf / NaN
    # (repr would give 'inf', which scrapers reject).
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    return str(value)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def to_prometheus(registry: MetricsRegistry, prefix: str = "tea") -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: List[str] = []
    names = _NameTable(prefix)
    for c in registry.counters():
        name = names.assign(c.name)
        if c.help:
            lines.append(f"# HELP {name} {c.help}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_prom_value(c.value)}")
    for g in registry.gauges():
        name = names.assign(g.name)
        if g.help:
            lines.append(f"# HELP {name} {g.help}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_prom_value(g.value)}")
    for h in registry.histograms():
        name = names.assign(h.name)
        if h.help:
            lines.append(f"# HELP {name} {h.help}")
        lines.append(f"# TYPE {name} histogram")
        cumulative = h.zero_count
        for bound, count in zip(h.bucket_bounds(), h.counts[:-1]):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{_prom_value(float(bound))}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {h.count}')
        lines.append(f"{name}_sum {_prom_value(h.total)}")
        lines.append(f"{name}_count {h.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Parse text exposition back into ``{metric: {...}}``.

    Counters and gauges map to ``{"type": ..., "value": ...}``;
    histograms to ``{"type": "histogram", "buckets": {le: cumulative},
    "sum": ..., "count": ...}``. Supports exactly what
    :func:`to_prometheus` emits (no labels besides ``le``).
    """
    out: Dict[str, dict] = {}
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        key, value = line.rsplit(None, 1)
        number = float(value)
        m = re.match(r'^(\w+)_bucket\{le="([^"]+)"\}$', key)
        if m:
            base, le = m.group(1), m.group(2)
            hist = out.setdefault(base, {"type": "histogram", "buckets": {}})
            hist["buckets"][le] = number
            continue
        if key.endswith("_sum") and key[:-4] in types and types[key[:-4]] == "histogram":
            out.setdefault(key[:-4], {"type": "histogram", "buckets": {}})["sum"] = number
            continue
        if key.endswith("_count") and key[:-6] in types and types[key[:-6]] == "histogram":
            out.setdefault(key[:-6], {"type": "histogram", "buckets": {}})["count"] = number
            continue
        out[key] = {"type": types.get(key, "untyped"), "value": number}
    return out


# ---------------------------------------------------------------------------
# JSON run report
# ---------------------------------------------------------------------------

def build_run_report(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    meta: Optional[dict] = None,
) -> dict:
    """Assemble the schema-versioned JSON run report document."""
    doc = {"schema": REPORT_SCHEMA, "meta": dict(meta or {})}
    doc.update(registry.snapshot())
    doc["spans"] = tracer.to_dicts() if tracer is not None else []
    return doc


def validate_run_report(doc) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["report is not a JSON object"]
    if doc.get("schema") != REPORT_SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, expected {REPORT_SCHEMA!r}")
    for section, kind in (("meta", dict), ("counters", dict), ("gauges", dict),
                          ("histograms", dict), ("spans", list)):
        if not isinstance(doc.get(section), kind):
            errors.append(f"missing or mistyped section {section!r}")
    if errors:
        return errors
    for name, value in doc["counters"].items():
        if not isinstance(value, (int, float)):
            errors.append(f"counter {name!r} is not numeric")
    for name, value in doc["gauges"].items():
        if value is not None and not isinstance(value, (int, float)):
            errors.append(f"gauge {name!r} is not numeric or null")
    for name, hist in doc["histograms"].items():
        if not isinstance(hist, dict):
            errors.append(f"histogram {name!r} is not an object")
            continue
        missing = {"count", "sum", "bounds", "counts"} - set(hist)
        if missing:
            errors.append(f"histogram {name!r} missing fields {sorted(missing)}")
            continue
        if len(hist["counts"]) != len(hist["bounds"]) + 1:
            errors.append(f"histogram {name!r}: counts/bounds length mismatch")
        bucket_total = sum(hist["counts"]) + hist.get("zero_count", 0)
        if bucket_total != hist["count"]:
            errors.append(f"histogram {name!r}: bucket counts do not sum to count")

    def check_span(span, path: str) -> None:
        if not isinstance(span, dict):
            errors.append(f"span {path} is not an object")
            return
        for key in ("name", "start", "duration"):
            if key not in span:
                errors.append(f"span {path} missing {key!r}")
        for i, child in enumerate(span.get("children", [])):
            check_span(child, f"{path}/{span.get('name', '?')}[{i}]")

    for i, span in enumerate(doc["spans"]):
        check_span(span, f"roots[{i}]")
    return errors


def write_run_report(path, doc: dict) -> dict:
    """Validate and write a built run report document; returns it.

    Build the document first with :func:`build_run_report` or
    ``EngineResult.run_report()``.
    """
    problems = validate_run_report(doc)
    if problems:  # pragma: no cover - internal consistency guard
        raise ValueError(f"refusing to write invalid report: {problems}")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def load_run_report(path) -> dict:
    """Read and validate a saved run report; raises on schema violations."""
    with open(path) as fh:
        doc = json.load(fh)
    problems = validate_run_report(doc)
    if problems:
        raise ValueError(f"{path}: invalid run report: {'; '.join(problems)}")
    return doc


# ---------------------------------------------------------------------------
# Human table
# ---------------------------------------------------------------------------

def _fmt_num(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _span_lines(span: dict, depth: int, lines: List[str]) -> None:
    label = "  " * depth + span["name"]
    attrs = span.get("attributes") or {}
    extra = (" " + " ".join(f"{k}={_fmt_num(v)}" for k, v in sorted(attrs.items()))
             if attrs else "")
    lines.append(f"  {label:<38} {span['duration'] * 1e3:10.3f} ms{extra}")
    for child in span.get("children", []):
        _span_lines(child, depth + 1, lines)


def format_stats_table(doc: dict) -> str:
    """Render one run report as the ``--stats`` human table.

    Display is where rounding happens — the report itself keeps full
    precision (see the ``CacheStats`` satellite note in
    ``docs/observability.md``).
    """
    lines: List[str] = []
    meta = doc.get("meta", {})
    if meta:
        lines.append("run: " + "  ".join(
            f"{k}={v}" for k, v in sorted(meta.items())))
    counters = doc.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_fmt_num(counters[name])}")
    gauges = doc.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {_fmt_num(gauges[name])}")
    histograms = doc.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name:<{width}}  count={h['count']}  mean={_fmt_num(mean)}  "
                f"min={_fmt_num(h.get('min'))}  max={_fmt_num(h.get('max'))}"
            )
    spans = doc.get("spans", [])
    if spans:
        lines.append("spans:")
        for root in spans:
            _span_lines(root, 0, lines)
    return "\n".join(lines)
