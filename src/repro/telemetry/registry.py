"""Mergeable metrics: counters, gauges, and log-scale histograms.

The registry is the single sink every engine, sampler, cache, and
streaming batch reports into (replacing the ad-hoc trio of
``PhaseTimer`` / ``MemoryReport`` / hand-printed ``CostCounters``
snapshots). Design constraints, in order:

* **per-step cheap** — ``Counter.inc`` is one attribute add and
  ``Histogram.observe`` is one C-level ``bisect`` over precomputed
  bucket bounds, so the scalar walk loop can afford them;
* **mergeable** — registries are plain objects with an associative
  :meth:`MetricsRegistry.merge`, so the parallel builders, the batch
  executor, and the distributed engine give every worker its *own*
  registry and fold them together at the end (no locks in hot paths —
  see the thread-safety note on
  :class:`~repro.sampling.counters.CostCounters`);
* **exportable** — :mod:`repro.telemetry.exporters` renders one registry
  as Prometheus text exposition, a schema-versioned JSON run report, or
  a human table.

Metric names are dotted (``sampling.steps``, ``cache.hits``,
``walk.length``); exporters sanitise them per format. The catalogue of
names the stack emits lives in ``docs/observability.md``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]

_GAUGE_AGGS = ("last", "sum", "max", "min")


class Counter:
    """Monotonically increasing named value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time named value with a declared merge aggregation.

    ``agg`` decides what :meth:`MetricsRegistry.merge` does when two
    registries both carry the gauge: ``"last"`` (the merged-in value
    wins), ``"sum"``, ``"max"``, or ``"min"``. All four are associative,
    which keeps registry merging order-insensitive up to ``"last"``'s
    explicit ordering semantics.
    """

    __slots__ = ("name", "help", "agg", "value")

    def __init__(self, name: str, help: str = "", agg: str = "last"):
        if agg not in _GAUGE_AGGS:
            raise ValueError(f"agg must be one of {_GAUGE_AGGS}, got {agg!r}")
        self.name = name
        self.help = help
        self.agg = agg
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def update(self, value: Optional[Number]) -> None:
        """Fold one incoming value in, honouring the aggregation."""
        if value is None:
            return
        if self.value is None or self.agg == "last":
            self.value = value
        elif self.agg == "sum":
            self.value += value
        elif self.agg == "max":
            self.value = max(self.value, value)
        else:  # min
            self.value = min(self.value, value)


class Histogram:
    """Log-scale (geometric) histogram.

    Bucket *i* covers values ``<= start * growth**i``; one overflow
    bucket catches the rest and a dedicated underflow bucket catches
    values ``<= 0``. The defaults (start=1, growth=2, 32 buckets) suit
    the integer quantities the walk loop observes — walk length,
    rejection trials per step, trunk bytes loaded; sub-second latencies
    use ``start=1e-6`` (see :data:`LATENCY_BUCKETS`).

    ``observe`` is one ``bisect_left`` over the precomputed bounds —
    cheap enough to call per sampling step.
    """

    __slots__ = ("name", "help", "start", "growth", "bounds", "counts",
                 "zero_count", "count", "total", "min", "max")

    def __init__(self, name: str, help: str = "", start: float = 1.0,
                 growth: float = 2.0, buckets: int = 32):
        if start <= 0 or growth <= 1:
            raise ValueError("start must be > 0 and growth > 1")
        self.name = name
        self.help = help
        self.start = float(start)
        self.growth = float(growth)
        self.bounds: List[float] = [start * growth ** i for i in range(int(buckets))]
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # + overflow
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0:
            self.zero_count += 1
            return
        self.counts[bisect_left(self.bounds, value)] += 1

    def observe_n(self, value: Number, n: int) -> None:
        """Record ``value`` ``n`` times in one update.

        Hot loops that see few distinct values (e.g. walk lengths)
        accumulate a ``Counter`` locally and fold it in here, paying one
        bisect per distinct value instead of one call per observation.
        """
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0:
            self.zero_count += n
            return
        self.counts[bisect_left(self.bounds, value)] += n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def scheme(self) -> tuple:
        return (self.start, self.growth, len(self.bounds))

    def bucket_bounds(self) -> List[float]:
        """Finite upper bounds; the implicit last bucket is +Inf."""
        return list(self.bounds)

    def merge_from(self, other: "Histogram") -> None:
        if other.scheme() != self.scheme():
            raise ValueError(
                f"histogram {self.name!r}: incompatible bucket schemes "
                f"{self.scheme()} vs {other.scheme()}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "start": self.start,
            "growth": self.growth,
            "zero_count": self.zero_count,
            "bounds": self.bucket_bounds(),
            "counts": list(self.counts),
        }


#: Histogram kwargs suited to sub-second latencies (1 µs … ~4.7 s).
LATENCY_BUCKETS = {"start": 1e-6, "growth": 2.0, "buckets": 23}

#: Histogram kwargs suited to byte volumes (64 B … ~4 GiB).
BYTES_BUCKETS = {"start": 64.0, "growth": 4.0, "buckets": 13}


class MetricsRegistry:
    """Named bag of counters, gauges, and histograms.

    Accessors are get-or-create and idempotent; asking for an existing
    name with a different metric kind raises. Workers each hold their
    own registry and the owner folds them with :meth:`merge` — merge is
    associative (tested), so fold order does not matter.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors -------------------------------------------

    def _check_free(self, name: str, kind: dict) -> None:
        for store, label in ((self._counters, "counter"),
                             (self._gauges, "gauge"),
                             (self._histograms, "histogram")):
            if store is not kind and name in store:
                raise ValueError(f"metric {name!r} already registered as a {label}")

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "", agg: str = "last") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name, help, agg=agg)
        return metric

    def histogram(self, name: str, help: str = "", **scheme) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, help, **scheme)
        return metric

    # -- convenience ---------------------------------------------------------

    def inc(self, name: str, n: Number = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: Number, **scheme) -> None:
        self.histogram(name, **scheme).observe(value)

    def set_gauge(self, name: str, value: Number, agg: str = "last") -> None:
        self.gauge(name, agg=agg).set(value)

    # -- views ---------------------------------------------------------------

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def gauges(self) -> Iterable[Gauge]:
        return self._gauges.values()

    def histograms(self) -> Iterable[Histogram]:
        return self._histograms.values()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return (name in self._counters or name in self._gauges
                or name in self._histograms)

    def counter_value(self, name: str) -> Number:
        return self._counters[name].value if name in self._counters else 0

    def gauge_value(self, name: str) -> Optional[Number]:
        return self._gauges[name].value if name in self._gauges else None

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into self; returns self. Associative."""
        for c in other._counters.values():
            self.counter(c.name, c.help).inc(c.value)
        for g in other._gauges.values():
            self.gauge(g.name, g.help, agg=g.agg).update(g.value)
        for h in other._histograms.values():
            mine = self.histogram(h.name, h.help, start=h.start,
                                  growth=h.growth, buckets=len(h.bounds))
            mine.merge_from(h)
        return self

    def snapshot(self) -> dict:
        """Plain-dict view (the JSON report's metrics sections)."""
        return {
            "counters": {c.name: c.value for c in self._counters.values()},
            "gauges": {g.name: g.value for g in self._gauges.values()},
            "histograms": {h.name: h.snapshot() for h in self._histograms.values()},
        }
