"""Clock helpers: the only sanctioned time source for engine code.

Hot-loop code under ``src/repro/engines/`` must not call
``time.time()`` / ``time.perf_counter()`` directly (enforced by
``tools/lint_clocks.py``); it imports these wrappers instead. Funnelling
every engine-side timestamp through one module buys three things:

* the profiler's self-timing calibration measures the *same* clock the
  instrumented code uses, so reported overhead is honest;
* tests can monkeypatch one symbol to make timing deterministic;
* a future switch to a cheaper clock (``clock_gettime_ns`` coarse
  variants) is a one-line change instead of a grep-and-pray sweep.

``now()`` is the high-resolution monotonic phase clock (what profilers
and span tracers difference); ``monotonic()`` is the coarser scheduling
clock (queue waits, deadlines); ``wall()`` is epoch wall time (event
timestamps that must be comparable across processes).
"""

from __future__ import annotations

import time

#: High-resolution monotonic clock for phase/span durations.
now = time.perf_counter

#: Monotonic scheduling clock (queue waits, watchdog deadlines).
monotonic = time.monotonic

#: Epoch wall clock, for cross-process-comparable event timestamps.
wall = time.time

__all__ = ["now", "monotonic", "wall"]
