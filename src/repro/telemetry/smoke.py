"""Telemetry smoke: profiler accounting and event-log correlation gates.

``python -m repro.telemetry.smoke`` is the Makefile's
``telemetry-smoke`` gate (ISSUE 6 acceptance criteria, executable):

* **Profiler coverage** — a profiled batch run's root phase times must
  sum to within 10% of the measured wall time, and the profiler's
  self-measured overhead must stay under 5% of wall.
* **Collapsed stacks** — the flamegraph output parses (``path <µs>``
  per line, non-negative integer counts) and covers the table's phases.
* **Event-log correlation** — a 4-worker process-backend parallel run
  must produce events that all carry the same ``run_id``, including at
  least one event recorded *inside a worker process* (different pid).
* **JSONL round-trip** — written event files read back identically.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from repro.engines.base import Workload
from repro.telemetry import EventLog, PhaseProfiler, events
from repro.telemetry.clock import now as _now


def _smoke_graph():
    from repro.graph.datasets import load_dataset

    return load_dataset("tiny", seed=7)


def _smoke_spec():
    from repro.walks.apps import APPLICATIONS

    return APPLICATIONS["exponential"]


def profiler_smoke(verbose: bool) -> dict:
    """Coverage within 10% of wall, overhead under 5%, stacks parse."""
    from repro.engines.batch import BatchTeaEngine

    engine = BatchTeaEngine(_smoke_graph(), _smoke_spec())
    engine.profiler = profiler = PhaseProfiler()
    workload = Workload(walks_per_vertex=4, max_length=40)
    # The run is ~5 ms, so the 10% coverage tolerance is smaller than a
    # single gen-2 GC pause; whether one lands inside the timed-but-
    # unprofiled sliver of run() depends on the process's allocation
    # history. Collect up front and pause GC so the gate measures the
    # profiler, not the collector (same hygiene as timeit).
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = _now()
        engine.run(workload, seed=0)
        wall = _now() - t0
    finally:
        if gc_was_enabled:
            gc.enable()

    covered = profiler.root_seconds()
    assert abs(covered - wall) <= 0.10 * wall, (
        f"profiled root time {covered:.4f}s is not within 10% of "
        f"{wall:.4f}s wall"
    )
    overhead = profiler.overhead_seconds
    assert overhead < 0.05 * wall, (
        f"profiler overhead {overhead * 1e3:.3f} ms exceeds 5% of "
        f"{wall * 1e3:.3f} ms wall"
    )
    for name in ("gather", "draw", "scatter"):
        assert profiler.phase_seconds(name) > 0.0, (
            f"hot-loop phase {name!r} was never charged"
        )

    stacks = profiler.collapsed_stacks()
    lines = [ln for ln in stacks.splitlines() if ln]
    assert len(lines) >= len(profiler.phases), "collapsed output incomplete"
    for line in lines:
        path, _, micros = line.rpartition(" ")
        assert path and int(micros) >= 0, f"malformed stack line: {line!r}"
    table = profiler.format_table(wall_seconds=wall)
    assert "coverage:" in table and "overhead" in table
    return {
        "wall_s": round(wall, 4),
        "coverage_pct": round(covered / wall * 100.0, 1),
        "overhead_pct": round(overhead / wall * 100.0, 2),
    }


def events_smoke(verbose: bool) -> dict:
    """4-worker run: one run_id everywhere, >=1 worker-process event."""
    from repro.parallel.engine import ParallelBatchTeaEngine

    engine = ParallelBatchTeaEngine(
        _smoke_graph(), _smoke_spec(), workers=4, chunk_size=8,
        backend="process",
    )
    log = EventLog()
    previous = events.install(log)
    try:
        engine.run(Workload(walks_per_vertex=2, max_length=20), seed=0)
    finally:
        events.install(previous)

    assert log.events, "parallel run emitted no events"
    run_ids = {e["run_id"] for e in log.events}
    assert run_ids == {log.run_id}, (
        f"expected one run_id {log.run_id!r}, saw {run_ids}"
    )
    kinds = set(log.kinds())
    assert "chunk.exec" in kinds, f"no chunk.exec events (kinds: {kinds})"
    foreign = {e["pid"] for e in log.events} - {os.getpid()}
    if engine.last_backend == "process":
        assert foreign, (
            "process-backend run shipped no events from worker processes"
        )

    # JSONL round-trip.
    with tempfile.TemporaryDirectory(prefix="tea-events-") as tmp:
        path = Path(tmp) / "events.jsonl"
        count = log.write(path)
        assert count == len(log.events)
        back = EventLog.read(path)
        assert sorted(back, key=lambda e: e["ts"]) == sorted(
            log.events, key=lambda e: e["ts"]
        ), "event JSONL round-trip diverged"
    return {
        "events": len(log.events),
        "worker_pids": len(foreign),
        "backend": engine.last_backend,
    }


def telemetry_smoke(verbose: bool = True) -> dict:
    summary = {}
    summary.update(profiler_smoke(verbose))
    if verbose:
        print("  profiler: ok")
    summary.update(events_smoke(verbose))
    if verbose:
        print("  events: ok")
        print("telemetry smoke (tiny)")
        for key, value in summary.items():
            print(f"  {key}: {value}")
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="telemetry smoke: profiler coverage + event correlation"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    telemetry_smoke(verbose=not args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
