"""Structured JSONL event log with a per-run ``run_id``.

The resilience and prefetch layers count what happened (retries,
degradations, evictions) but counters cannot answer *when* or *in what
order* — which is the question during an incident. This module turns
those counters into a correlatable timeline: one :class:`EventLog` per
run, installed process-wide, collecting dict events that all carry the
same ``run_id``:

* ``emit(kind, **fields)`` — the module-level fire-and-forget hook the
  instrumented layers call. When no log is installed it is one global
  read and a ``None`` check, so always-on instrumentation stays free.
* The parallel executor propagates the run: thread/serial workers
  share the parent's installed log directly; forked process workers
  inherit it (fork start method) and ship the events recorded during a
  chunk back inside the :class:`~repro.parallel.worker.ChunkResult`,
  where the engine folds them into the parent log at the barrier.

Event kinds and one documented example line each live in
``docs/observability.md``. Every event carries ``ts`` (epoch seconds),
``run_id``, ``pid``, and ``kind``; emitters add site-specific fields.
"""

from __future__ import annotations

import json
import os
import uuid
from typing import List, Optional

from repro.telemetry.clock import wall as _wall

#: Schema stamp written into the header event of serialised logs.
EVENT_SCHEMA = "tea-repro/events/v1"


def new_run_id() -> str:
    """A fresh 16-hex-char run correlation id."""
    return uuid.uuid4().hex[:16]


class EventLog:
    """In-memory buffer of structured events, serialisable as JSONL.

    Appends are plain ``list.append`` — atomic under the GIL, so thread
    workers emit into the shared parent log without locking. Forked
    process workers get a copy-on-write snapshot; their new events ship
    back explicitly (see :mod:`repro.parallel.worker`).
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id if run_id is not None else new_run_id()
        self.events: List[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, kind: str, **fields) -> dict:
        event = {
            "ts": _wall(),
            "run_id": self.run_id,
            "pid": os.getpid(),
            "kind": kind,
        }
        event.update(fields)
        self.events.append(event)
        return event

    def extend(self, events) -> None:
        """Adopt events shipped back from a worker process."""
        self.events.extend(events)

    def kinds(self) -> List[str]:
        return [e["kind"] for e in self.events]

    def lines(self):
        """JSONL rendering, one compact line per event, time-ordered."""
        for event in sorted(self.events, key=lambda e: e.get("ts", 0.0)):
            yield json.dumps(event, sort_keys=True)

    def write(self, path) -> int:
        """Write the log as JSONL; returns the number of events written."""
        with open(path, "w") as fh:
            for line in self.lines():
                fh.write(line + "\n")
        return len(self.events)

    @staticmethod
    def read(path) -> List[dict]:
        """Parse a JSONL event file back into dicts (blank lines skipped)."""
        out = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out


# ---------------------------------------------------------------------------
# Process-wide installation
# ---------------------------------------------------------------------------
#
# One active log per process keeps the emit sites trivially cheap and
# means forked workers inherit the installed log for free. install()
# returns the previous log so callers can restore it (nesting runs).

_CURRENT: Optional[EventLog] = None


def install(log: Optional[EventLog]) -> Optional[EventLog]:
    """Install ``log`` as the process-wide event sink; returns the old one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = log
    return previous


def current() -> Optional[EventLog]:
    """The installed event log, or ``None``."""
    return _CURRENT


def current_run_id() -> Optional[str]:
    """The installed log's run id, or ``None`` when no log is active."""
    return _CURRENT.run_id if _CURRENT is not None else None


def emit(kind: str, **fields) -> Optional[dict]:
    """Emit into the installed log; a no-op returning ``None`` without one."""
    log = _CURRENT
    if log is None:
        return None
    return log.emit(kind, **fields)
