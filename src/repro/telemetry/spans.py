"""Nested span tracing (the structured successor to ``PhaseTimer``).

A :class:`Span` is one timed region with attributes and children; a
:class:`Tracer` maintains the active-span stack, collects finished root
spans, and decides which walks get traced. ``prepare`` and ``walk`` are
root spans; preprocessing emits child spans (candidate search, weight
computation, index build, aux-index build, trunk spill), and a
configurable 1-in-N sampling rate bounds per-walk tracing overhead: only
sampled walks open a ``walk.one`` span and pay for per-step timing.

The tracer is deliberately single-threaded (one stack); parallel workers
each get their own tracer/registry and results are merged — the same
per-worker discipline as :class:`~repro.telemetry.MetricsRegistry`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Span:
    """One timed region: name, wall-clock bounds, attributes, children."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(self, name: str, start_time: Optional[float] = None, **attributes):
        # The clock parameter is deliberately NOT called ``start`` so
        # that ``start`` stays usable as an ordinary span attribute.
        self.name = name
        self.start = time.perf_counter() if start_time is None else start_time
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes)
        self.children: List["Span"] = []

    def set(self, key: str, value) -> "Span":
        self.attributes[key] = value
        return self

    def close(self, end: Optional[float] = None) -> "Span":
        if self.end is None:
            self.end = time.perf_counter() if end is None else end
        return self

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, origin: float = 0.0) -> dict:
        """JSON-ready form; times are seconds relative to ``origin``."""
        out = {
            "name": self.name,
            "start": self.start - origin,
            "duration": self.duration,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [c.to_dict(origin) for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, children={len(self.children)})"


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def set(self, key, value):
        return self

    @property
    def duration(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Tracer:
    """Span collector with an active stack and per-walk sampling.

    Parameters
    ----------
    enabled:
        When False every ``span()`` is a no-op yielding a shared null
        span — the off switch costs one attribute check.
    walk_sample_every:
        Per-walk trace sampling: 0 disables walk-level spans entirely;
        N >= 1 traces one walk in every N (walk indices where
        ``index % N == 0``), which keeps tracing overhead proportional
        to 1/N.
    """

    def __init__(self, enabled: bool = True, walk_sample_every: int = 0):
        self.enabled = bool(enabled)
        self.walk_sample_every = int(walk_sample_every)
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attributes):
        if not self.enabled:
            yield NULL_SPAN
            return
        span = Span(name, **attributes)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.close()

    def sample_walk(self, walk_index: int) -> bool:
        """Should this walk get its own span (and per-step timing)?"""
        if not self.enabled or self.walk_sample_every <= 0:
            return False
        return walk_index % self.walk_sample_every == 0

    # -- views ---------------------------------------------------------------

    def phase_seconds(self) -> Dict[str, float]:
        """Root-span durations keyed by name (the ``PhaseTimer`` view).

        Repeated root names accumulate, matching the old timer's
        semantics for sequential re-entry.
        """
        out: Dict[str, float] = {}
        for root in self.roots:
            out[root.name] = out.get(root.name, 0.0) + root.duration
        return out

    def find(self, name: str) -> List[Span]:
        """All finished spans with the given name, depth-first order."""
        return [s for root in self.roots for s in root.walk() if s.name == name]

    def to_dicts(self) -> List[dict]:
        """JSON-ready roots; times relative to the earliest root start."""
        if not self.roots:
            return []
        origin = min(root.start for root in self.roots)
        return [root.to_dict(origin) for root in self.roots]

    def merge(self, other: "Tracer") -> "Tracer":
        """Adopt another tracer's finished roots (per-worker fold)."""
        self.roots.extend(other.roots)
        return self


#: Shared disabled tracer: safe to hand to any engine as the default —
#: it never records, so sharing the instance is free of cross-talk.
NULL_TRACER = Tracer(enabled=False)
