"""Memory accounting: structure bytes (Figures 9/12b) plus OS rusage.

Two complementary views live here:

* :class:`MemoryReport` — exact ``nbytes`` of every array a structure
  owns. The paper compares engines by the bytes their sampling
  structures occupy; accounting exactly avoids the interpreter noise
  that dominates process RSS in Python.
* :func:`sample_rusage` / :class:`RusageSample` — the OS-level
  counters (max RSS, page faults, CPU time) the phase profiler samples
  around a run, so I/O-bound phases show up as major-fault deltas the
  way ThunderRW-style stall profiling expects.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Optional


def format_bytes(n: int) -> str:
    """Human-readable bytes (KiB/MiB/GiB)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.2f} TiB"


@dataclass
class MemoryReport:
    """Per-component byte counts for one engine configuration."""

    components: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, nbytes: int) -> "MemoryReport":
        self.components[name] = self.components.get(name, 0) + int(nbytes)
        return self

    @property
    def total(self) -> int:
        return sum(self.components.values())

    def fraction(self, name: str) -> float:
        """Share of the total held by one component (e.g. the paper's
        observation that the HPAT index is 82.5%–91.2% of TEA's memory)."""
        total = self.total
        return self.components.get(name, 0) / total if total else 0.0

    def pretty(self) -> str:
        lines = [f"total: {format_bytes(self.total)}"]
        for name, nbytes in sorted(self.components.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name}: {format_bytes(nbytes)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# OS resource usage (getrusage) sampling
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RusageSample:
    """One ``getrusage(RUSAGE_SELF)`` reading, normalised to bytes.

    ``max_rss_bytes`` is a high-water mark (monotone per process), the
    fault counters are cumulative — so *deltas* between two samples
    bound what a region of code did, while the RSS delta only shows
    growth past the previous peak.
    """

    utime_seconds: float
    stime_seconds: float
    max_rss_bytes: int
    major_faults: int
    minor_faults: int

    def delta(self, earlier: "RusageSample") -> dict:
        """Counter deltas since ``earlier`` (RSS reports the later peak)."""
        return {
            "utime_seconds": self.utime_seconds - earlier.utime_seconds,
            "stime_seconds": self.stime_seconds - earlier.stime_seconds,
            "max_rss_bytes": self.max_rss_bytes,
            "major_faults": self.major_faults - earlier.major_faults,
            "minor_faults": self.minor_faults - earlier.minor_faults,
        }

    def snapshot(self) -> dict:
        return {
            "utime_seconds": self.utime_seconds,
            "stime_seconds": self.stime_seconds,
            "max_rss_bytes": self.max_rss_bytes,
            "major_faults": self.major_faults,
            "minor_faults": self.minor_faults,
        }


def sample_rusage() -> Optional[RusageSample]:
    """Current-process rusage, or ``None`` where unavailable (Windows).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; both
    normalise to bytes here so downstream consumers never branch.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    ru = resource.getrusage(resource.RUSAGE_SELF)
    rss = int(ru.ru_maxrss)
    if sys.platform != "darwin":
        rss *= 1024
    return RusageSample(
        utime_seconds=float(ru.ru_utime),
        stime_seconds=float(ru.ru_stime),
        max_rss_bytes=rss,
        major_faults=int(ru.ru_majflt),
        minor_faults=int(ru.ru_minflt),
    )
