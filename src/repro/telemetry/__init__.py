"""Unified telemetry: metrics, spans, profiler, events, exporters.

One layer every engine, sampler, cache, and streaming batch reports
into (see ``docs/observability.md`` for the metric catalogue, span
taxonomy, profiler phases, and event-log schema):

* :class:`MetricsRegistry` — named counters, gauges, log-scale
  histograms; cheap enough for per-step use, mergeable across workers;
* :class:`Tracer` / :class:`Span` — nested phase tracing with a 1-in-N
  per-walk sampling rate (the structured successor to ``PhaseTimer``);
* :class:`PhaseProfiler` (:mod:`repro.telemetry.profile`) — per-phase
  cost attribution for hot loops, with self-timed overhead and
  collapsed-stack / phase-table output;
* :class:`EventLog` (:mod:`repro.telemetry.events`) — structured JSONL
  timeline with a per-run ``run_id`` propagated into pool workers;
* :mod:`repro.telemetry.clock` — the sanctioned engine time source
  (enforced by ``tools/lint_clocks.py``);
* :class:`MemoryReport` / :class:`PhaseTimer` — byte accounting and
  the legacy phase timer, consolidated here from ``repro.metrics``;
* exporters — Prometheus text exposition, schema-versioned JSON run
  reports, and the ``--stats`` human table.
"""

from repro.telemetry.registry import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.spans import NULL_TRACER, Span, Tracer
from repro.telemetry.events import EventLog, new_run_id
from repro.telemetry.memory import (
    MemoryReport,
    RusageSample,
    format_bytes,
    sample_rusage,
)
from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.telemetry.timing import PhaseTimer
from repro.telemetry.exporters import (
    REPORT_SCHEMA,
    build_run_report,
    format_stats_table,
    load_run_report,
    parse_prometheus,
    to_prometheus,
    validate_run_report,
    write_run_report,
)

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MemoryReport",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "PhaseProfiler",
    "PhaseTimer",
    "REPORT_SCHEMA",
    "RusageSample",
    "Span",
    "Tracer",
    "build_run_report",
    "format_bytes",
    "format_stats_table",
    "load_run_report",
    "new_run_id",
    "parse_prometheus",
    "sample_rusage",
    "to_prometheus",
    "validate_run_report",
    "write_run_report",
]
