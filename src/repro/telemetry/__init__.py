"""Unified telemetry: metrics registry, nested spans, exporters.

One layer every engine, sampler, cache, and streaming batch reports
into (see ``docs/observability.md`` for the metric catalogue and span
taxonomy):

* :class:`MetricsRegistry` — named counters, gauges, log-scale
  histograms; cheap enough for per-step use, mergeable across workers;
* :class:`Tracer` / :class:`Span` — nested phase tracing with a 1-in-N
  per-walk sampling rate (the structured successor to ``PhaseTimer``);
* exporters — Prometheus text exposition, schema-versioned JSON run
  reports, and the ``--stats`` human table.
"""

from repro.telemetry.registry import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.spans import NULL_TRACER, Span, Tracer
from repro.telemetry.exporters import (
    REPORT_SCHEMA,
    build_run_report,
    format_stats_table,
    load_run_report,
    parse_prometheus,
    to_prometheus,
    validate_run_report,
    write_run_report,
)

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_TRACER",
    "REPORT_SCHEMA",
    "Span",
    "Tracer",
    "build_run_report",
    "format_stats_table",
    "load_run_report",
    "parse_prometheus",
    "to_prometheus",
    "validate_run_report",
    "write_run_report",
]
