"""Tiny phase timer used by engines and benchmarks.

.. deprecated::
    ``PhaseTimer`` is superseded by :class:`repro.telemetry.Tracer`
    (nested spans with attributes) and, for cost attribution, by
    :class:`repro.telemetry.profile.PhaseProfiler`. The timer remains
    for back-compat callers (the ``EngineResult.timer`` field and the
    Figure 11/13 benchmarks read it), and engines keep filling it
    alongside spans.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.telemetry.clock import now as _now


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Re-entering a phase name *while it is still open* (nested use) is
    counted once, against the outermost entry: historically the inner
    ``with`` double-counted the overlapped wall time, so a nested
    ``phase("walk")`` inside ``phase("walk")`` reported up to 2× the
    elapsed seconds. Sequential re-entry still accumulates.

    Deprecated in favour of :class:`repro.telemetry.Tracer` spans (see
    the module note); kept for back-compat callers.

    >>> timer = PhaseTimer()
    >>> with timer.phase("preprocess"):
    ...     pass
    >>> "preprocess" in timer.seconds
    True
    """

    seconds: Dict[str, float] = field(default_factory=dict)
    _depth: Dict[str, int] = field(default_factory=dict, repr=False, compare=False)
    _open_since: Dict[str, float] = field(default_factory=dict, repr=False, compare=False)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        depth = self._depth.get(name, 0)
        if depth == 0:
            self._open_since[name] = _now()
        self._depth[name] = depth + 1
        try:
            yield
        finally:
            remaining = self._depth[name] - 1
            self._depth[name] = remaining
            if remaining == 0:
                start = self._open_since.pop(name)
                self.seconds[name] = self.seconds.get(name, 0.0) + (
                    _now() - start
                )

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def snapshot(self) -> Dict[str, float]:
        out = dict(self.seconds)
        out["total"] = self.total
        return out
