"""Skip-gram with negative sampling (SGNS) over walk corpora.

The training objective of DeepWalk, node2vec and CTDNE: for each
(center, context) pair within a window along a walk, maximise
``log σ(u·v) + Σ_k log σ(−u·n_k)`` with negatives n_k drawn from the
unigram distribution raised to 3/4. Implemented in pure numpy with
mini-batched SGD; negatives come from an
:class:`~repro.sampling.alias.AliasTable` — the same primitive the
engine's trunks use, so one O(1) draw per negative.

This is deliberately a compact reference implementation (no hierarchical
softmax, no async workers): enough to measure the paper's motivating
claim that temporal walk corpora carry more predictive signal than
static ones (see :mod:`repro.embeddings.link_prediction`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.rng import RngLike, make_rng
from repro.sampling.alias import AliasTable
from repro.walks.walker import WalkPath


@dataclass
class SGNSEmbedding:
    """Trained vertex embeddings (input vectors; context vectors kept too)."""

    vectors: np.ndarray       # (num_vertices, dim) — the embeddings
    context: np.ndarray       # (num_vertices, dim) — output matrix
    pair_count: int
    epochs: int

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])

    def similarity(self, u: int, v: int) -> float:
        """Cosine similarity between two vertex embeddings."""
        a, b = self.vectors[u], self.vectors[v]
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(a @ b / (na * nb))

    def score(self, u, v) -> np.ndarray:
        """Raw dot-product edge scores for parallel arrays of endpoints."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        return np.einsum("ij,ij->i", self.vectors[u], self.vectors[v])

    def most_similar(self, u: int, k: int = 5) -> List[Tuple[int, float]]:
        """Top-k vertices by cosine similarity to u (excluding u)."""
        norms = np.linalg.norm(self.vectors, axis=1)
        norms[norms == 0] = 1.0
        sims = (self.vectors @ self.vectors[u]) / (norms * max(norms[u], 1e-12))
        sims[u] = -np.inf
        top = np.argsort(sims)[::-1][:k]
        return [(int(i), float(sims[i])) for i in top]


def _pairs_from_walks(
    walks: Sequence[WalkPath], window: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(centers, contexts, counts): all windowed pairs plus vertex counts."""
    centers: List[int] = []
    contexts: List[int] = []
    occurrences: List[int] = []
    for walk in walks:
        vs = walk.vertices
        occurrences.extend(vs)
        for i, center in enumerate(vs):
            lo = max(0, i - window)
            hi = min(len(vs), i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    centers.append(center)
                    contexts.append(vs[j])
    return (
        np.asarray(centers, dtype=np.int64),
        np.asarray(contexts, dtype=np.int64),
        np.asarray(occurrences, dtype=np.int64),
    )


def train_sgns(
    walks: Sequence[WalkPath],
    num_vertices: int,
    dim: int = 32,
    window: int = 4,
    negatives: int = 5,
    epochs: int = 3,
    learning_rate: float = 0.025,
    batch_size: int = 1024,
    seed: RngLike = 0,
) -> SGNSEmbedding:
    """Train SGNS embeddings from a walk corpus.

    Parameters mirror word2vec's: ``window`` is the half-window along the
    walk, ``negatives`` the negative samples per positive pair. Training
    is mini-batched vectorised SGD with a linearly decaying learning
    rate. Deterministic for a given seed.
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if dim <= 0 or window <= 0 or negatives < 0 or epochs <= 0:
        raise ValueError("dim/window/epochs must be positive, negatives >= 0")
    rng = make_rng(seed)
    centers, contexts, occurrences = _pairs_from_walks(walks, window)
    if centers.size == 0:
        raise ValueError("walk corpus produced no training pairs")
    if centers.max() >= num_vertices or contexts.max() >= num_vertices:
        raise ValueError("walks reference vertices >= num_vertices")

    # Unigram^0.75 negative-sampling distribution via an alias table.
    counts = np.bincount(occurrences, minlength=num_vertices).astype(np.float64)
    noise = counts**0.75
    if not (noise.sum() > 0):
        raise ValueError("degenerate corpus")
    noise_table = AliasTable.from_weights(noise)

    vec_in = (rng.random((num_vertices, dim)) - 0.5) / dim
    vec_out = np.zeros((num_vertices, dim))

    total_batches = epochs * (1 + (centers.size - 1) // batch_size)
    batch_index = 0
    for _ in range(epochs):
        order = rng.permutation(centers.size)
        for start in range(0, centers.size, batch_size):
            sel = order[start : start + batch_size]
            lr = learning_rate * max(0.1, 1.0 - batch_index / total_batches)
            batch_index += 1
            c = centers[sel]
            pos = contexts[sel]
            b = c.size
            # Negatives: (b, negatives) alias draws in one vectorised shot.
            cells = rng.integers(0, num_vertices, size=(b, max(negatives, 1)))
            take_cell = rng.random((b, max(negatives, 1))) < noise_table.prob[cells]
            neg = np.where(take_cell, cells, noise_table.alias[cells])

            vc = vec_in[c]                     # (b, dim)
            vo_pos = vec_out[pos]              # (b, dim)
            vo_neg = vec_out[neg]              # (b, K, dim)

            s_pos = 1.0 / (1.0 + np.exp(-np.einsum("id,id->i", vc, vo_pos)))
            g_pos = (s_pos - 1.0)[:, None]     # σ(x) − label
            s_neg = 1.0 / (1.0 + np.exp(-np.einsum("id,ikd->ik", vc, vo_neg)))
            g_neg = s_neg[:, :, None]

            grad_c = g_pos * vo_pos
            if negatives:
                grad_c = grad_c + np.einsum("ikd,ik->id", vo_neg, s_neg)
            # Scatter-add (vertices repeat within a batch).
            np.add.at(vec_out, pos, -lr * g_pos * vc)
            if negatives:
                np.add.at(
                    vec_out.reshape(num_vertices, dim),
                    neg.ravel(),
                    (-lr * (g_neg * vc[:, None, :])).reshape(-1, dim),
                )
            np.add.at(vec_in, c, -lr * grad_c)

    return SGNSEmbedding(
        vectors=vec_in, context=vec_out, pair_count=int(centers.size), epochs=epochs
    )
