"""Temporal link prediction: the standard downstream evaluation.

Protocol (CTDNE's evaluation, simplified): split the edge stream by
time — train on the earliest fraction, hold out the rest — embed the
training graph from a walk corpus, then score held-out (positive)
edges against an equal number of sampled non-edges (negatives) by
embedding dot product. AUC = probability a random positive outranks a
random negative; 0.5 is chance.

The point inside this reproduction: walk corpora produced by *temporal*
specs (exponential, node2vec) should beat time-oblivious corpora on
future-edge prediction — the paper's opening claim, measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.embeddings.sgns import SGNSEmbedding, train_sgns
from repro.engines.base import Workload
from repro.engines.tea import TeaEngine
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike, make_rng
from repro.walks.spec import WalkSpec


def time_split(stream: EdgeStream, train_fraction: float = 0.8) -> Tuple[EdgeStream, EdgeStream]:
    """Split a time-sorted stream into (train, test) by position in time."""
    if not (0.0 < train_fraction < 1.0):
        raise ValueError("train_fraction must be in (0, 1)")
    cut = int(len(stream) * train_fraction)
    if cut == 0 or cut == len(stream):
        raise ValueError("split leaves an empty side; adjust train_fraction")
    return stream[:cut], stream[cut:]


def auc_score(positive_scores: np.ndarray, negative_scores: np.ndarray) -> float:
    """Rank-based AUC (Mann–Whitney U / (n_pos · n_neg)); ties count half."""
    pos = np.asarray(positive_scores, dtype=np.float64)
    neg = np.asarray(negative_scores, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("need at least one positive and one negative score")
    all_scores = np.concatenate([pos, neg])
    order = np.argsort(all_scores, kind="stable")
    ranks = np.empty(all_scores.size, dtype=np.float64)
    ranks[order] = np.arange(1, all_scores.size + 1)
    # Average ranks over ties.
    sorted_scores = all_scores[order]
    i = 0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    u = ranks[: pos.size].sum() - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))


@dataclass
class LinkPredictionResult:
    """Outcome of one link-prediction evaluation."""

    auc: float
    num_test_edges: int
    num_train_edges: int
    embedding: SGNSEmbedding
    spec_name: str

    def __repr__(self) -> str:
        return (
            f"LinkPredictionResult(spec={self.spec_name}, auc={self.auc:.3f}, "
            f"train={self.num_train_edges}, test={self.num_test_edges})"
        )


def _sample_negatives(
    num_vertices: int,
    positives: set,
    count: int,
    rng: np.random.Generator,
    max_attempts: int = 100,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform non-edge pairs (u, v), u != v, not in ``positives``."""
    us, vs = [], []
    for _ in range(max_attempts):
        need = count - len(us)
        if need <= 0:
            break
        cu = rng.integers(0, num_vertices, size=2 * need)
        cv = rng.integers(0, num_vertices, size=2 * need)
        for a, b in zip(cu, cv):
            if a != b and (int(a), int(b)) not in positives:
                us.append(int(a))
                vs.append(int(b))
                if len(us) == count:
                    break
    if len(us) < count:
        raise RuntimeError("could not sample enough negative pairs")
    return np.asarray(us), np.asarray(vs)


def temporal_link_prediction(
    stream: EdgeStream,
    spec: WalkSpec,
    train_fraction: float = 0.8,
    dim: int = 32,
    walks_per_vertex: int = 4,
    walk_length: int = 10,
    window: int = 3,
    epochs: int = 3,
    max_test_edges: int = 500,
    seed: RngLike = 0,
) -> LinkPredictionResult:
    """End-to-end evaluation of one walk spec on future-edge prediction.

    Train a TEA walk corpus + SGNS on edges before the time cut; report
    AUC on held-out future edges vs sampled non-edges. Held-out edges
    between vertices unseen in training are skipped (no embedding).
    """
    rng = make_rng(seed)
    train, test = time_split(stream, train_fraction)
    n = stream.num_vertices()
    graph = TemporalGraph.from_stream(train, num_vertices=n)

    engine = TeaEngine(graph, spec)
    workload = Workload(walks_per_vertex=walks_per_vertex, max_length=walk_length)
    corpus = engine.run(workload, seed=rng.integers(0, 2**31)).paths
    embedding = train_sgns(
        corpus, num_vertices=n, dim=dim, window=window, epochs=epochs,
        seed=rng.integers(0, 2**31),
    )

    # Positives: future edges between vertices the training corpus saw.
    seen = np.zeros(n, dtype=bool)
    for path in corpus:
        seen[path.vertices] = True
    mask = seen[test.src] & seen[test.dst] & (test.src != test.dst)
    pos_u = test.src[mask][:max_test_edges]
    pos_v = test.dst[mask][:max_test_edges]
    if pos_u.size == 0:
        raise RuntimeError("no scorable held-out edges; enlarge the corpus")

    known = set(zip(stream.src.tolist(), stream.dst.tolist()))
    neg_u, neg_v = _sample_negatives(n, known, pos_u.size, rng)

    auc = auc_score(embedding.score(pos_u, pos_v), embedding.score(neg_u, neg_v))
    return LinkPredictionResult(
        auc=auc,
        num_test_edges=int(pos_u.size),
        num_train_edges=len(train),
        embedding=embedding,
        spec_name=spec.name,
    )
