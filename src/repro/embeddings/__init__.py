"""Downstream graph learning on TEA walk corpora.

The paper's motivation (Section 1): "various graph learning projects
identify that integrating temporal information into random walks can
dramatically improve graph learning accuracy". TEA itself stops at the
walk corpus; this package supplies the standard downstream stack so the
claim can be *measured* end to end inside the reproduction:

* :mod:`~repro.embeddings.sgns` — skip-gram with negative sampling
  (DeepWalk/node2vec/CTDNE's training objective) in pure numpy, with
  negatives drawn from an alias table over the unigram^0.75 distribution
  (dogfooding the sampling layer);
* :mod:`~repro.embeddings.link_prediction` — time-ordered train/test
  split, embedding-based edge scoring, and AUC evaluation.
"""

from repro.embeddings.sgns import SGNSEmbedding, train_sgns
from repro.embeddings.link_prediction import (
    LinkPredictionResult,
    auc_score,
    temporal_link_prediction,
    time_split,
)

__all__ = [
    "SGNSEmbedding",
    "train_sgns",
    "LinkPredictionResult",
    "auc_score",
    "temporal_link_prediction",
    "time_split",
]
