"""Applications built *atop* TEA (paper Section 5.2, "Applications scope").

The paper notes that popular static-graph random-walk algorithms —
personalized PageRank, SimRank, meta-path walks — "do not have existing
variations on temporal graphs", but can be conveniently implemented on
top of TEA's optimised sampling. This package does exactly that: each
algorithm drives the prepared TEA index through the public sampling
interface, inheriting the hybrid-sampling speed and the temporal-path
semantics (all traversals respect strictly increasing edge times).
"""

from repro.analytics.pagerank import temporal_pagerank
from repro.analytics.simrank import temporal_simrank
from repro.analytics.metapath import MetapathWalker, temporal_metapath_walks
from repro.analytics.reachability import (
    earliest_arrival_times,
    temporal_reachability,
    walk_reachability_estimate,
)

__all__ = [
    "temporal_pagerank",
    "temporal_simrank",
    "MetapathWalker",
    "temporal_metapath_walks",
    "earliest_arrival_times",
    "temporal_reachability",
    "walk_reachability_estimate",
]
