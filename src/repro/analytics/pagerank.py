"""Temporal personalized PageRank via TEA-sampled restart walks.

Classic Monte Carlo PPR: run walks from the source set, restarting with
probability ``alpha`` at every step; the stationary visit frequencies
estimate the PageRank vector. The temporal twist — and the reason this
needs a temporal walk engine — is that a walk segment must be a valid
temporal path, so influence only flows along time-respecting paths: v
scores high from u only if u's activity can actually *reach* v in time
order. A restart resets the walker's clock (a fresh query at the source).

Sampling uses the prepared TEA index (HPAT + auxiliary index + candidate
index), so per-step cost is the paper's O(log log D).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.engines.tea import TeaEngine
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.walks.spec import WalkSpec
from repro.walks.apps import exponential_walk


def temporal_pagerank(
    graph: TemporalGraph,
    sources: Optional[Sequence[int]] = None,
    spec: Optional[WalkSpec] = None,
    alpha: float = 0.15,
    num_walks: int = 2000,
    max_hops: int = 100,
    seed: RngLike = 0,
    engine: Optional[TeaEngine] = None,
) -> np.ndarray:
    """Estimate temporal (personalized) PageRank scores.

    Parameters
    ----------
    sources:
        Restart set. ``None`` means global PageRank (uniform restarts over
        all vertices).
    spec:
        Temporal bias of the underlying walk (default: exponential, the
        paper's canonical temporal weight). Must not carry a
        Dynamic_parameter (PPR is weight-only).
    alpha:
        Restart probability per step.
    num_walks:
        Monte Carlo walks; variance shrinks as 1/sqrt(num_walks).
    max_hops:
        Safety cap per walk segment (temporal exhaustion usually ends
        segments first).
    engine:
        A prepared :class:`TeaEngine` to reuse across calls (it must have
        been built on ``graph`` with the same ``spec``).

    Returns
    -------
    numpy.ndarray
        Length-``num_vertices`` visit-frequency vector summing to 1.
    """
    if not (0.0 < alpha < 1.0):
        raise ValueError("alpha must be in (0, 1)")
    if num_walks <= 0:
        raise ValueError("num_walks must be positive")
    spec = spec or exponential_walk()
    if spec.has_dynamic_parameter:
        raise ValueError("temporal_pagerank requires a weight-only WalkSpec")
    if engine is None:
        engine = TeaEngine(graph, spec)
    engine.prepare()
    g = engine.graph
    rng = make_rng(seed)
    counters = CostCounters()

    if sources is None:
        starts = rng.integers(0, g.num_vertices, size=num_walks)
    else:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size == 0:
            raise ValueError("sources must be non-empty")
        starts = sources[rng.integers(0, sources.size, size=num_walks)]

    visits = np.zeros(g.num_vertices, dtype=np.float64)
    for start in starts:
        v = int(start)
        t = None
        visits[v] += 1.0
        for _ in range(max_hops):
            if rng.random() < alpha:
                break
            s = g.candidate_count(v, t) if t is not None else g.out_degree(v)
            if s <= 0:
                break
            counters.record_step()
            idx = engine.sample_edge(v, s, t, rng, counters)
            pos = int(g.indptr[v]) + idx
            v = int(g.nbr[pos])
            t = float(g.etime[pos])
            visits[v] += 1.0
    return visits / visits.sum()
