"""Temporal SimRank via coupled TEA walks.

SimRank's Monte Carlo interpretation: s(u, v) = E[C^τ] where τ is the
first-meeting time of two independent random walks from u and v (Jeh &
Widom). The temporal variant runs the two walks as *temporal* walks, so
two vertices are similar when time-respecting paths from both tend to
converge on the same vertices soon — "similar because their activity
flows to the same places at compatible times."

Both walks sample through the shared prepared TEA index, so a similarity
query costs O(num_pairs · walk_length · log log D).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engines.tea import TeaEngine
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.walks.apps import exponential_walk
from repro.walks.spec import WalkSpec


def temporal_simrank(
    graph: TemporalGraph,
    u: int,
    v: int,
    spec: Optional[WalkSpec] = None,
    decay: float = 0.6,
    num_pairs: int = 500,
    max_hops: int = 20,
    seed: RngLike = 0,
    engine: Optional[TeaEngine] = None,
) -> float:
    """Estimate temporal SimRank s(u, v) ∈ [0, 1].

    Parameters
    ----------
    decay:
        SimRank's C constant: meeting after k steps contributes C^k.
    num_pairs:
        Number of coupled walk pairs (Monte Carlo samples).
    engine:
        A prepared :class:`TeaEngine` to reuse (same graph and spec).
    """
    if not (0.0 < decay < 1.0):
        raise ValueError("decay must be in (0, 1)")
    if u == v:
        return 1.0
    spec = spec or exponential_walk()
    if spec.has_dynamic_parameter:
        raise ValueError("temporal_simrank requires a weight-only WalkSpec")
    if engine is None:
        engine = TeaEngine(graph, spec)
    engine.prepare()
    g = engine.graph
    rng = make_rng(seed)
    counters = CostCounters()

    def step(vertex: int, t):
        """One temporal hop; returns (vertex, time) or None at a dead end."""
        s = g.candidate_count(vertex, t) if t is not None else g.out_degree(vertex)
        if s <= 0:
            return None
        counters.record_step()
        idx = engine.sample_edge(vertex, s, t, rng, counters)
        pos = int(g.indptr[vertex]) + idx
        return int(g.nbr[pos]), float(g.etime[pos])

    total = 0.0
    for _ in range(num_pairs):
        a, b = int(u), int(v)
        ta = tb = None
        for k in range(1, max_hops + 1):
            na, nb = step(a, ta), step(b, tb)
            if na is None or nb is None:
                break
            (a, ta), (b, tb) = na, nb
            if a == b:
                total += decay**k
                break
    return total / num_pairs


def temporal_simrank_matrix(
    graph: TemporalGraph,
    vertices,
    spec: Optional[WalkSpec] = None,
    decay: float = 0.6,
    num_pairs: int = 300,
    max_hops: int = 20,
    seed: RngLike = 0,
) -> np.ndarray:
    """Pairwise temporal SimRank over a vertex subset (symmetric matrix)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    n = vertices.size
    spec = spec or exponential_walk()
    engine = TeaEngine(graph, spec)
    engine.prepare()
    out = np.eye(n)
    rng = make_rng(seed)
    for i in range(n):
        for j in range(i + 1, n):
            s = temporal_simrank(
                graph, int(vertices[i]), int(vertices[j]), spec=spec,
                decay=decay, num_pairs=num_pairs, max_hops=max_hops,
                seed=int(rng.integers(0, 2**31)), engine=engine,
            )
            out[i, j] = out[j, i] = s
    return out
