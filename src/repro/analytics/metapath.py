"""Temporal meta-path walks (metapath2vec atop TEA).

A meta-path walk on a heterogeneous graph follows a cyclic vertex-type
pattern (e.g. user → item → user → ...). The temporal variant adds the
time constraint: each hop must also be later than the previous one, so a
walk like U-I-U only connects a user to users who interacted with the
item *after* them — exactly the "who was influenced by whom" semantics
static meta-paths cannot express.

Mechanically this is the paper's Dynamic_parameter pattern (Algorithm 2
lines 18–22): TEA samples from the temporal-weight distribution, and a
rejection step accepts only candidates whose type matches the pattern's
next slot. A bounded number of rejections falls back to an exact
filtered scan (cost-accounted), so heavily type-imbalanced neighborhoods
stay correct.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.engines.tea import TeaEngine
from repro.exceptions import GraphFormatError
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search
from repro.walks.apps import exponential_walk
from repro.walks.spec import WalkSpec
from repro.walks.walker import WalkPath

MAX_TYPE_TRIALS = 64


class MetapathWalker:
    """Temporal walks constrained to a cyclic vertex-type pattern."""

    def __init__(
        self,
        graph: TemporalGraph,
        vertex_types: Sequence[int],
        metapath: Sequence[int],
        spec: Optional[WalkSpec] = None,
    ):
        self.types = np.asarray(vertex_types, dtype=np.int64)
        if self.types.size != graph.num_vertices:
            raise GraphFormatError(
                f"vertex_types has {self.types.size} entries for "
                f"{graph.num_vertices} vertices"
            )
        self.metapath = list(int(t) for t in metapath)
        if len(self.metapath) < 2:
            raise ValueError("a metapath needs at least two type slots")
        if self.metapath[0] != self.metapath[-1]:
            raise ValueError(
                "cyclic metapaths must start and end with the same type "
                "(e.g. [user, item, user])"
            )
        spec = spec or exponential_walk()
        if spec.has_dynamic_parameter:
            raise ValueError("metapath walks compose with weight-only specs")
        self.engine = TeaEngine(graph, spec)
        self.engine.prepare()
        self.counters = CostCounters()

    def _sample_typed(self, v: int, s: int, want_type: int, rng) -> Optional[int]:
        """Sample an edge index in [0, s) whose destination has the type.

        TEA draw + type-rejection, with an exact filtered-ITS fallback.
        Returns None when no candidate of the wanted type exists.
        """
        g = self.engine.graph
        lo = int(g.indptr[v])
        for _ in range(MAX_TYPE_TRIALS):
            self.counters.record_step()
            idx = self.engine.sample_edge(v, s, None, rng, self.counters)
            ok = self.types[g.nbr[lo + idx]] == want_type
            self.counters.record_trial(bool(ok))
            if ok:
                return idx
        # Exact fallback: restrict the distribution to matching candidates.
        mask = self.types[g.nbr[lo : lo + s]] == want_type
        if not np.any(mask):
            return None
        weights = self.engine.weights[lo : lo + s] * mask
        self.counters.record_scan(s)
        prefix = build_prefix_sums(weights)
        r = draw_in_range(rng, 0.0, prefix[s])
        return its_search(prefix, r, 0, s)

    def walk(self, start: int, num_cycles: int, rng) -> WalkPath:
        """One temporal meta-path walk of up to ``num_cycles`` pattern laps.

        The start vertex must carry the pattern's first type. The walk
        ends early when the temporal candidate set has no vertex of the
        required next type.
        """
        g = self.engine.graph
        if self.types[start] != self.metapath[0]:
            raise ValueError(
                f"start vertex {start} has type {self.types[start]}, "
                f"pattern expects {self.metapath[0]}"
            )
        hops = [(int(start), None)]
        v, t = int(start), None
        slot = 0
        steps = num_cycles * (len(self.metapath) - 1)
        for _ in range(steps):
            slot = (slot + 1) % len(self.metapath)
            if slot == 0:
                slot = 1  # cyclic patterns repeat from the second slot
            want = self.metapath[slot]
            s = g.candidate_count(v, t) if t is not None else g.out_degree(v)
            if s <= 0:
                break
            idx = self._sample_typed(v, s, want, rng)
            if idx is None:
                break
            pos = int(g.indptr[v]) + idx
            v, t = int(g.nbr[pos]), float(g.etime[pos])
            hops.append((v, t))
        return WalkPath(hops=hops)

    def corpus(
        self, starts: Sequence[int], num_cycles: int = 4, seed: RngLike = 0
    ) -> List[WalkPath]:
        """Meta-path walk corpus from every start vertex."""
        rng = make_rng(seed)
        return [self.walk(int(u), num_cycles, rng) for u in starts]


def temporal_metapath_walks(
    graph: TemporalGraph,
    vertex_types: Sequence[int],
    metapath: Sequence[int],
    starts: Sequence[int],
    num_cycles: int = 4,
    spec: Optional[WalkSpec] = None,
    seed: RngLike = 0,
) -> List[WalkPath]:
    """Convenience wrapper: build a :class:`MetapathWalker` and run it."""
    walker = MetapathWalker(graph, vertex_types, metapath, spec=spec)
    return walker.corpus(starts, num_cycles=num_cycles, seed=seed)
