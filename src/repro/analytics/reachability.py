"""Temporal reachability: exact earliest-arrival and walk estimates.

The paper's Figure 1 point — only time-respecting paths exist in a
temporal graph — made computable:

* :func:`earliest_arrival_times` — the classic one-pass edge-stream
  algorithm (Wu et al., the paper's refs [42, 43]): scanning edges in
  ascending time order, an edge (u, v, t) relaxes v whenever u was
  reachable strictly before t; each edge is considered once, O(|E|).
* :func:`temporal_reachability` — the boolean reachable set.
* :func:`walk_reachability_estimate` — Monte Carlo visit frequencies via
  TEA walks; necessarily a subset of the exact reachable set
  (property-tested), and the quantity the commute-network example
  contrasts against static reachability.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engines.base import Workload
from repro.engines.tea import TeaEngine
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike
from repro.walks.apps import unbiased_walk
from repro.walks.spec import WalkSpec


def earliest_arrival_times(
    graph: TemporalGraph,
    source: int,
    start_time: Optional[float] = None,
) -> np.ndarray:
    """Earliest arrival time at every vertex from ``source``.

    ``start_time=None`` means the walker may depart on any edge
    (arrival at the source is −inf); otherwise only edges strictly
    later than ``start_time`` may be used. Unreachable vertices get
    ``+inf``. Follows the temporal-path rule exactly: consecutive edge
    times must strictly increase.
    """
    if not (0 <= source < graph.num_vertices):
        raise IndexError(f"source {source} out of range")
    arrival = np.full(graph.num_vertices, np.inf)
    arrival[source] = -np.inf if start_time is None else float(start_time)
    stream = graph.to_stream()  # ascending time order
    for u, v, t in zip(stream.src, stream.dst, stream.time):
        if t > arrival[u] and t < arrival[v]:
            arrival[v] = t
    return arrival


def temporal_reachability(
    graph: TemporalGraph,
    source: int,
    start_time: Optional[float] = None,
) -> np.ndarray:
    """Boolean mask of vertices reachable by a temporal path."""
    return np.isfinite(earliest_arrival_times(graph, source, start_time)) | (
        np.arange(graph.num_vertices) == source
    )


def walk_reachability_estimate(
    graph: TemporalGraph,
    source: int,
    spec: Optional[WalkSpec] = None,
    num_walks: int = 1000,
    max_length: int = 50,
    seed: RngLike = 0,
    engine: Optional[TeaEngine] = None,
) -> Dict[int, float]:
    """Visit frequency of every vertex over TEA walks from ``source``.

    Returns ``{vertex: fraction of walks that visited it}``. Vertices a
    temporal path cannot reach never appear (a guarantee, not a
    statistic — walks are temporal paths by construction).
    """
    if num_walks <= 0:
        raise ValueError("num_walks must be positive")
    spec = spec or unbiased_walk()
    if engine is None:
        engine = TeaEngine(graph, spec)
    workload = Workload(
        walks_per_vertex=num_walks, max_length=max_length, start_vertices=[source]
    )
    result = engine.run(workload, seed=seed)
    visits: Dict[int, int] = {}
    for path in result.paths:
        for v in set(path.vertices):
            visits[v] = visits.get(v, 0) + 1
    return {v: c / num_walks for v, c in visits.items()}


def temporal_closeness(
    graph: TemporalGraph,
    start_time: Optional[float] = None,
    sources: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Temporal closeness centrality (harmonic form).

    For each source u, closeness(u) = Σ_v 1 / (1 + (arrival_v − t0)/span)
    over vertices v temporally reachable from u, where t0 is
    ``start_time`` (or the graph's earliest timestamp) and span the
    graph's time range. Each reached vertex contributes a bounded score
    in (1/2, 1] — earlier reach scores higher — and unreachable vertices
    contribute 0 (the harmonic convention). O(|S|·|E|) via the one-pass
    earliest-arrival scan per source.
    """
    if graph.num_edges == 0:
        return np.zeros(graph.num_vertices)
    t0 = float(graph.etime.min()) if start_time is None else float(start_time)
    span = max(float(graph.etime.max()) - t0, 1e-12)
    out = np.zeros(graph.num_vertices)
    source_ids = (
        np.arange(graph.num_vertices) if sources is None else np.asarray(sources)
    )
    for u in source_ids:
        arrival = earliest_arrival_times(graph, int(u), start_time)
        mask = np.isfinite(arrival)
        mask[int(u)] = False
        if mask.any():
            delays = (arrival[mask] - t0) / span
            out[int(u)] = float((1.0 / (1.0 + delays)).sum())
    return out
