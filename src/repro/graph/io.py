"""Edge-list I/O.

Supports the two formats the systems community actually passes around:

* **Text**: whitespace-separated ``u v t`` lines, ``#``/``%`` comments
  (the KONECT export format the paper's datasets use).
* **Binary**: a little ``.tegb`` container — magic, count, then the three
  arrays back to back — for fast reload of generated analogues.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.edge_stream import EdgeStream

_MAGIC = b"TEGB\x01"

PathLike = Union[str, os.PathLike]


def load_edge_list(path: PathLike) -> EdgeStream:
    """Load a whitespace-separated ``u v t [w]`` text file into a stream.

    Lines starting with ``#`` or ``%`` are comments. A missing third
    column is rejected — temporal graphs require timestamps. An optional
    fourth column carries KONECT-style positive edge weights; either all
    data lines have it or none do.
    """
    src, dst, time, weight = [], [], [], []
    with open(path, "r") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 3:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v t [w]', got {line!r}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
                time.append(float(parts[2]))
                if len(parts) >= 4:
                    weight.append(float(parts[3]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
    if weight and len(weight) != len(src):
        raise GraphFormatError(
            f"{path}: weight column present on some lines but not all"
        )
    return EdgeStream(src, dst, time, weight=weight or None)


def save_edge_list(stream: EdgeStream, path: PathLike) -> None:
    """Write a stream as ``u v t [w]`` text (time-ascending order)."""
    with open(path, "w") as f:
        if stream.weight is not None:
            f.write("# temporal edge list: src dst time weight\n")
            for u, v, t, w in zip(stream.src, stream.dst, stream.time,
                                  stream.weight):
                f.write(f"{u} {v} {float(t)!r} {float(w)!r}\n")
        else:
            f.write("# temporal edge list: src dst time\n")
            for u, v, t in zip(stream.src, stream.dst, stream.time):
                f.write(f"{u} {v} {t:g}\n")


def save_binary(stream: EdgeStream, path: PathLike) -> None:
    """Write the compact binary container (``.tegb``)."""
    with open(path, "wb") as f:
        f.write(_MAGIC)
        np.asarray([len(stream)], dtype=np.int64).tofile(f)
        stream.src.tofile(f)
        stream.dst.tofile(f)
        stream.time.tofile(f)


def load_binary(path: PathLike) -> EdgeStream:
    """Read a ``.tegb`` container written by :func:`save_binary`."""
    with open(path, "rb") as f:
        magic = f.read(len(_MAGIC))
        if magic != _MAGIC:
            raise GraphFormatError(f"{path}: not a .tegb file")
        (m,) = np.fromfile(f, dtype=np.int64, count=1)
        m = int(m)
        src = np.fromfile(f, dtype=np.int64, count=m)
        dst = np.fromfile(f, dtype=np.int64, count=m)
        time = np.fromfile(f, dtype=np.float64, count=m)
        if src.size != m or dst.size != m or time.size != m:
            raise GraphFormatError(f"{path}: truncated .tegb file")
    return EdgeStream(src, dst, time, sort=False)


def load_auto(path: PathLike) -> EdgeStream:
    """Dispatch on extension: ``.tegb`` binary, anything else text."""
    if Path(path).suffix == ".tegb":
        return load_binary(path)
    return load_edge_list(path)
