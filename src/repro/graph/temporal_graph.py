"""In-memory temporal graph in time-descending CSR form.

Every sampler in this library relies on one structural fact (paper
Sections 3.2–3.4): if each vertex's out-edges are sorted by *decreasing*
timestamp, then the candidate edge set

    Γt(u) = { (u, v_i, t_i) ∈ N(u) : t_i > t }

is a **prefix** of u's adjacency list, identified by a single integer (its
length). :class:`TemporalGraph` materialises exactly that layout from an
:class:`~repro.graph.edge_stream.EdgeStream`:

* ``indptr[v] : indptr[v+1]`` delimits v's out-edges in the flat arrays;
* ``nbr`` holds destination vertices, ``etime`` the timestamps, both in
  time-descending order within each vertex segment (ties keep stream
  order, newest stream position first, so prefix semantics stay stable
  under streaming appends).

The static undirected adjacency needed by temporal node2vec's β parameter
(distance d(w, v) ∈ {0, 1, 2}) is built lazily and cached.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.edge_stream import EdgeStream


class TemporalGraph:
    """A temporal graph frozen into time-descending CSR arrays.

    Construct via :meth:`from_stream`. All arrays are read-only; streaming
    updates produce a *new* graph (see :mod:`repro.streaming.batch`) or use
    the incremental index (:mod:`repro.core.incremental`) which avoids
    rebuilding.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "indptr",
        "nbr",
        "etime",
        "_neg_etime",
        "_static_indptr",
        "_static_nbr",
        "_stream",
        "_keys_cache",
        "eweight",
    )

    def __init__(self, indptr: np.ndarray, nbr: np.ndarray, etime: np.ndarray,
                 stream: Optional[EdgeStream] = None,
                 eweight: Optional[np.ndarray] = None):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.nbr = np.asarray(nbr, dtype=np.int64)
        self.etime = np.asarray(etime, dtype=np.float64)
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise GraphFormatError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0 or self.indptr[-1] != self.nbr.size:
            raise GraphFormatError("indptr must start at 0 and end at |E|")
        if self.nbr.shape != self.etime.shape:
            raise GraphFormatError("nbr and etime must have equal shapes")
        self.num_vertices = int(self.indptr.size - 1)
        self.num_edges = int(self.nbr.size)
        # Negated times are ascending within each vertex segment, which lets
        # candidate_count() be a single searchsorted call.
        self._neg_etime = -self.etime
        self._static_indptr: Optional[np.ndarray] = None
        self._static_nbr: Optional[np.ndarray] = None
        self._stream = stream
        self._keys_cache = None
        # Optional per-edge user weights (same CSR order as etime); the
        # effective sampling weight is eweight * WeightModel(f(t)).
        if eweight is not None:
            eweight = np.asarray(eweight, dtype=np.float64)
            if eweight.shape != self.etime.shape:
                raise GraphFormatError("eweight must align with the edge arrays")
        self.eweight = eweight
        for a in (self.indptr, self.nbr, self.etime, self._neg_etime):
            a.setflags(write=False)
        if self.eweight is not None:
            self.eweight.setflags(write=False)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_stream(cls, stream: EdgeStream, num_vertices: Optional[int] = None) -> "TemporalGraph":
        """Build the time-descending CSR from an edge stream.

        ``num_vertices`` may exceed the largest id in the stream to reserve
        isolated vertices (useful when streaming will add edges later).
        """
        n = stream.num_vertices() if num_vertices is None else int(num_vertices)
        if num_vertices is not None and stream.num_vertices() > n:
            raise GraphFormatError(
                f"stream references vertex >= num_vertices={n}"
            )
        m = len(stream)
        indptr = np.zeros(n + 1, dtype=np.int64)
        if m:
            counts = np.bincount(stream.src, minlength=n)
            np.cumsum(counts, out=indptr[1:])
        nbr = np.empty(m, dtype=np.int64)
        etime = np.empty(m, dtype=np.float64)
        eweight = None
        if m:
            # Stable sort by (src asc, time desc). The stream is time-
            # ascending, so reversing it makes time descending; a stable
            # sort on src then preserves that within each vertex.
            order = np.argsort(stream.src[::-1], kind="stable")
            nbr[:] = stream.dst[::-1][order]
            etime[:] = stream.time[::-1][order]
            if stream.weight is not None:
                eweight = stream.weight[::-1][order]
        return cls(indptr, nbr, etime, stream=stream, eweight=eweight)

    @classmethod
    def from_edges(cls, edges, num_vertices: Optional[int] = None) -> "TemporalGraph":
        """Convenience: build from an iterable of ``(u, v, t)`` triples."""
        return cls.from_stream(EdgeStream.from_edges(edges), num_vertices)

    # -- basic queries -----------------------------------------------------

    def out_degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        d = self.degrees()
        return int(d.max()) if d.size else 0

    def mean_degree(self) -> float:
        return self.num_edges / self.num_vertices if self.num_vertices else 0.0

    def neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(destinations, times)`` of v's out-edges, newest first."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.nbr[lo:hi], self.etime[lo:hi]

    def edge_at(self, v: int, j: int) -> Tuple[int, float]:
        """The j-th newest out-edge of v as ``(destination, time)``."""
        pos = self.indptr[v] + j
        if not (self.indptr[v] <= pos < self.indptr[v + 1]):
            raise IndexError(f"vertex {v} has no out-edge index {j}")
        return int(self.nbr[pos]), float(self.etime[pos])

    # -- candidate edge sets -------------------------------------------------

    def candidate_count(self, v: int, t: Optional[float]) -> int:
        """Size of Γt(v): out-edges of v with time strictly greater than t.

        ``t=None`` means "no temporal constraint" (the first step of a walk
        starting at v) and returns the full out-degree. Because edges are
        time-descending, Γt(v) is exactly the first ``candidate_count(v, t)``
        entries of :meth:`neighbors`.
        """
        lo, hi = self.indptr[v], self.indptr[v + 1]
        if t is None:
            return int(hi - lo)
        # etime[lo:hi] descends, so -etime ascends; edges with time > t are
        # those with -time < -t.
        return int(np.searchsorted(self._neg_etime[lo:hi], -t, side="left"))

    def _offset_keys(self):
        """Cached offset-key view for batched candidate searches.

        Each vertex's negated times are shifted into a disjoint numeric
        range, so one global ``searchsorted`` answers per-vertex queries
        for arbitrarily many (vertex, time) pairs at once.
        """
        cached = getattr(self, "_keys_cache", None)
        if cached is not None:
            return cached
        neg = self._neg_etime
        finite_span = float(max(1.0, np.ptp(neg) if neg.size else 1.0))
        span = 4.0 * finite_span
        seg_of_edge = np.repeat(np.arange(self.num_vertices), np.diff(self.indptr))
        base = float(neg.min()) if neg.size else 0.0
        keys = (neg - base) + seg_of_edge * span
        self._keys_cache = (keys, base, span, finite_span)
        return self._keys_cache

    def candidate_counts_batch(self, vertices, times) -> np.ndarray:
        """|Γt(v)| for parallel arrays of (vertex, time) queries.

        Vectorised: one global ``searchsorted`` over the cached offset-key
        view. Query times outside the graph's range saturate correctly
        (later than everything → 0 candidates; earlier → full degree).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if self.num_edges == 0:
            return np.zeros(vertices.shape, dtype=np.int64)
        keys, base, span, finite_span = self._offset_keys()
        # Clamp the per-segment offset into a window that stays inside
        # the segment's exclusive numeric range while preserving the
        # saturating semantics at both ends.
        offset = np.clip(-times - base, -finite_span, 2.0 * finite_span)
        qval = offset + vertices * span
        pos = np.searchsorted(keys, qval, side="left")
        return pos - self.indptr[vertices]

    def candidate_counts_per_edge(self) -> np.ndarray:
        """For every edge (u, v, t) (in CSR order), |Γt(v)| at its head.

        This is the "searching candidate edge sets" preprocessing phase of
        paper Section 4.2: when a walker traverses edge (u, v, t) it will
        next sample from Γt(v), so the engine precomputes the candidate-set
        size for every edge.
        """
        if self.num_edges == 0:
            return np.zeros(0, dtype=np.int64)
        return self.candidate_counts_batch(self.nbr, self.etime)

    # -- static adjacency (node2vec support) ---------------------------------

    def _build_static_adjacency(self) -> None:
        """Sorted undirected neighbor CSR for O(log d) membership tests."""
        n, m = self.num_vertices, self.num_edges
        if m == 0:
            self._static_indptr = np.zeros(n + 1, dtype=np.int64)
            self._static_nbr = np.zeros(0, dtype=np.int64)
            return
        src = np.repeat(np.arange(n), np.diff(self.indptr))
        a = np.concatenate([src, self.nbr])
        b = np.concatenate([self.nbr, src])
        # Deduplicate (a, b) pairs.
        key = a * np.int64(self.num_vertices) + b
        key = np.unique(key)
        a = key // self.num_vertices
        b = key % self.num_vertices
        counts = np.bincount(a, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._static_indptr = indptr
        self._static_nbr = b  # sorted within each segment by construction
        self._static_indptr.setflags(write=False)
        self._static_nbr.setflags(write=False)

    def has_static_edge(self, u: int, v: int) -> bool:
        """True if u and v are adjacent ignoring time and direction.

        Temporal node2vec's β(u,v) (Equation 4) needs the *static* distance
        between the previous vertex and a candidate; this is its d==1 test.
        """
        if self._static_indptr is None:
            self._build_static_adjacency()
        lo, hi = self._static_indptr[u], self._static_indptr[u + 1]
        seg = self._static_nbr[lo:hi]
        k = np.searchsorted(seg, v)
        return bool(k < seg.size and seg[k] == v)

    def static_degree(self, v: int) -> int:
        if self._static_indptr is None:
            self._build_static_adjacency()
        return int(self._static_indptr[v + 1] - self._static_indptr[v])

    # -- misc ----------------------------------------------------------------

    def to_stream(self) -> EdgeStream:
        """Recover a time-ascending edge stream (rebuilt if not retained)."""
        if self._stream is not None:
            return self._stream
        src = np.repeat(np.arange(self.num_vertices), np.diff(self.indptr))
        return EdgeStream(src, self.nbr, self.etime, weight=self.eweight)

    def nbytes(self) -> int:
        """Bytes held by the CSR arrays (excludes lazy static adjacency)."""
        n = int(self.indptr.nbytes + self.nbr.nbytes + self.etime.nbytes)
        if self.eweight is not None:
            n += int(self.eweight.nbytes)
        return n

    def __repr__(self) -> str:
        return (
            f"TemporalGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"mean_deg={self.mean_degree():.2f}, max_deg={self.max_degree()})"
        )
