"""Graph transforms: derived temporal graphs.

Standard derived views a walk library needs around the core CSR:

* :func:`reverse` — flip edge directions (walks over who-was-reached-by;
  also the substrate for backward temporal reachability);
* :func:`induced_subgraph` — keep only edges among a vertex subset
  (community-scoped walks), preserving the vertex id space;
* :func:`normalize_times` — affine-map timestamps into [0, horizon]
  (keeps exponential weights well-scaled across datasets);
* :func:`largest_temporal_component` — vertices reachable from the best
  single source by temporal paths (walk experiments often want a
  connected arena);
* :func:`merge` — union of two temporal graphs.

All transforms return new :class:`TemporalGraph` objects; inputs are
never mutated (the CSR arrays are frozen anyway).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph


def _edges_of(graph: TemporalGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    src = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
    return src, graph.nbr, graph.etime


def reverse(graph: TemporalGraph) -> TemporalGraph:
    """Reverse every edge; timestamps are preserved.

    A temporal path u→…→v in the original corresponds to a *reverse*
    temporal path with decreasing times in the reversed graph; forward
    walks on the reversed graph answer "who could have led here".
    """
    src, dst, t = _edges_of(graph)
    return TemporalGraph.from_stream(
        EdgeStream(dst, src, t), num_vertices=graph.num_vertices
    )


def induced_subgraph(graph: TemporalGraph, vertices: Sequence[int]) -> TemporalGraph:
    """Keep only edges whose endpoints are both in ``vertices``.

    Vertex ids are preserved (the result has the same ``num_vertices``),
    so walk results remain directly comparable with the full graph.
    """
    keep = np.zeros(graph.num_vertices, dtype=bool)
    keep[np.asarray(list(vertices), dtype=np.int64)] = True
    src, dst, t = _edges_of(graph)
    mask = keep[src] & keep[dst]
    return TemporalGraph.from_stream(
        EdgeStream(src[mask], dst[mask], t[mask]), num_vertices=graph.num_vertices
    )


def normalize_times(
    graph: TemporalGraph, horizon: float = 1000.0
) -> TemporalGraph:
    """Affine-map timestamps onto [0, horizon].

    Transition probabilities of *linear-rank* and *uniform* weights are
    invariant under this map; exponential weights keep their shape when
    the application's decay ``scale`` is expressed in the same units
    (which is the point: one scale setting works across datasets).
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    src, dst, t = _edges_of(graph)
    if t.size == 0:
        return TemporalGraph.from_stream(EdgeStream.empty(),
                                         num_vertices=graph.num_vertices)
    tmin, tmax = float(t.min()), float(t.max())
    span = tmax - tmin
    scaled = (t - tmin) * (horizon / span) if span > 0 else np.zeros_like(t)
    return TemporalGraph.from_stream(
        EdgeStream(src, dst, scaled), num_vertices=graph.num_vertices
    )


def largest_temporal_component(
    graph: TemporalGraph, candidate_sources: Optional[Sequence[int]] = None
) -> Tuple[TemporalGraph, int, np.ndarray]:
    """Induced subgraph on the largest single-source temporal reach.

    Tries each candidate source (default: the 32 highest-out-degree
    vertices) and keeps the one whose temporal reachability set is
    largest. Returns ``(subgraph, best_source, reachable_mask)``.
    """
    from repro.analytics.reachability import temporal_reachability

    if graph.num_edges == 0:
        return graph, 0, np.zeros(graph.num_vertices, dtype=bool)
    if candidate_sources is None:
        order = np.argsort(graph.degrees())[::-1]
        candidate_sources = order[: min(32, order.size)]
    best_source, best_mask = -1, None
    for source in candidate_sources:
        mask = temporal_reachability(graph, int(source))
        if best_mask is None or mask.sum() > best_mask.sum():
            best_source, best_mask = int(source), mask
    sub = induced_subgraph(graph, np.flatnonzero(best_mask))
    return sub, best_source, best_mask


def merge(a: TemporalGraph, b: TemporalGraph) -> TemporalGraph:
    """Union of two temporal graphs (multi-edges are kept)."""
    n = max(a.num_vertices, b.num_vertices)
    sa, da, ta = _edges_of(a)
    sb, db, tb = _edges_of(b)
    return TemporalGraph.from_stream(
        EdgeStream(
            np.concatenate([sa, sb]),
            np.concatenate([da, db]),
            np.concatenate([ta, tb]),
        ),
        num_vertices=n,
    )
