"""Synthetic temporal graph generators.

The paper evaluates on four KONECT temporal graphs (growth, edit,
delicious, twitter — Table 3) that are far too large for a pure-Python
engine and not redistributable here. Per the reproduction's substitution
rule (see DESIGN.md §2), these generators produce scaled-down graphs whose
*shape* matches what TEA's results depend on:

* power-law out-degree distributions (the datasets are "representative
  power-law graphs"),
* configurable mean degree and heavy maximum-degree tail,
* timestamps forming an edge stream over a configurable horizon.

All generators return an :class:`~repro.graph.edge_stream.EdgeStream`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.edge_stream import EdgeStream
from repro.rng import RngLike, make_rng


def toy_commute_graph() -> EdgeStream:
    """The running example of the paper (Figure 1).

    A 10-vertex commuting network; the numeric edge label is the departure
    time. Used throughout the paper to illustrate candidate edge sets,
    PAT/HPAT construction, and the auxiliary index. Handy in tests because
    vertex 7's candidate sets are worked out explicitly in the paper.
    """
    edges = [
        # Vertex 7's out-edges: neighbor i reached at time i+1, so the
        # linear temporal weights are exactly the {1..7} of Figure 5 and
        # the candidate sets quoted in the text hold:
        #   arrive from 8 (t=0)  -> candidates {0..6}
        #   arrive from 0 (t=3)  -> candidates {3,4,5,6}
        #   arrive from 9 (t=4)  -> candidates {4,5,6}
        (7, 0, 1),
        (7, 1, 2),
        (7, 2, 3),
        (7, 3, 4),
        (7, 4, 5),
        (7, 5, 6),
        (7, 6, 7),
        # In-edges of 7 used by the paper's walk-throughs.
        (8, 7, 0),
        (0, 7, 3),
        (9, 7, 4),
        # Periphery making the commute network connected.
        (0, 1, 0),
        (1, 2, 1),
        (2, 3, 2),
        (3, 9, 3),
        (9, 0, 2),
        (8, 9, 1),
        (4, 5, 6),
        (5, 6, 7),
    ]
    return EdgeStream.from_edges(edges)


def temporal_erdos_renyi(
    num_vertices: int,
    num_edges: int,
    time_horizon: float = 1000.0,
    seed: RngLike = None,
) -> EdgeStream:
    """Uniform random temporal graph: each edge picks (u, v, t) uniformly.

    The baseline "no skew" workload. Self-loops are allowed (they are legal
    temporal edges); duplicate (u, v) pairs at different times are a feature
    of temporal graphs (repeated interactions).
    """
    rng = make_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    t = rng.uniform(0.0, time_horizon, size=num_edges)
    return EdgeStream(src, dst, t)


def temporal_powerlaw(
    num_vertices: int,
    num_edges: int,
    alpha: float = 1.0,
    dst_alpha: float = 0.8,
    time_horizon: float = 1000.0,
    seed: RngLike = None,
    integer_times: bool = False,
) -> EdgeStream:
    """Power-law temporal graph via preferential attachment on both ends.

    Sources are drawn from a Zipf-like distribution with exponent
    ``alpha`` (larger alpha → heavier skew → larger maximum degree
    relative to the mean); destinations from an independent Zipf with
    exponent ``dst_alpha`` over the *same* popularity ranking, so walks
    flow hub-to-hub like they do on real social/interaction graphs (a
    random KONECT walker overwhelmingly lands on high-degree vertices —
    the very regime where TEA's speedups grow, paper §5.2/§5.3).
    Timestamps are uniform over ``[0, time_horizon]``.

    Parameters
    ----------
    alpha:
        Zipf exponent for the source-vertex popularity ranking.
    dst_alpha:
        Zipf exponent for destination selection (0 → uniform).
    integer_times:
        Use integer timestamps (like KONECT exports) instead of floats.
    """
    rng = make_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    # Shuffle so popular vertices are spread over the id space; the same
    # ranking drives both endpoint distributions (hubs are hubs).
    perm = rng.permutation(num_vertices)
    src = perm[rng.choice(num_vertices, size=num_edges, p=weights)]
    if dst_alpha > 0:
        dw = ranks ** (-dst_alpha)
        dw /= dw.sum()
        dst = perm[rng.choice(num_vertices, size=num_edges, p=dw)]
    else:
        dst = rng.integers(0, num_vertices, size=num_edges)
    if integer_times:
        t = rng.integers(0, int(time_horizon) + 1, size=num_edges).astype(np.float64)
    else:
        t = rng.uniform(0.0, time_horizon, size=num_edges)
    return EdgeStream(src, dst, t)


def temporal_star(
    degree: int,
    time_horizon: Optional[float] = None,
    seed: RngLike = None,
    hub: int = 0,
) -> EdgeStream:
    """A single hub with ``degree`` out-edges at distinct times.

    The micro-benchmark workload of paper Figure 13d (incremental HPAT
    updating as a function of vertex degree): one vertex whose index
    dominates construction cost.
    """
    rng = make_rng(seed)
    horizon = float(time_horizon if time_horizon is not None else degree)
    dst = np.arange(1, degree + 1) + hub
    t = np.sort(rng.uniform(0.0, horizon, size=degree))
    src = np.full(degree, hub)
    return EdgeStream(src, dst, t)


def temporal_bipartite(
    num_left: int,
    num_right: int,
    num_edges: int,
    alpha: float = 0.8,
    time_horizon: float = 1000.0,
    seed: RngLike = None,
) -> EdgeStream:
    """Bipartite interaction stream (user → item), e-commerce shaped.

    Models the paper's motivating e-commerce network (Section 1): users
    interact with items over time, user activity is power-law distributed.
    Left vertices are ids ``[0, num_left)``; right vertices are offset by
    ``num_left``.
    """
    rng = make_rng(seed)
    ranks = np.arange(1, num_left + 1, dtype=np.float64)
    w = ranks ** (-alpha)
    w /= w.sum()
    perm = rng.permutation(num_left)
    src = perm[rng.choice(num_left, size=num_edges, p=w)]
    dst = rng.integers(0, num_right, size=num_edges) + num_left
    t = rng.uniform(0.0, time_horizon, size=num_edges)
    # Interactions go both ways so walks can alternate user/item.
    src2 = np.concatenate([src, dst])
    dst2 = np.concatenate([dst, src])
    t2 = np.concatenate([t, t + 1e-6])
    return EdgeStream(src2, dst2, t2)


def temporal_bursty(
    num_vertices: int,
    num_edges: int,
    num_bursts: int = 20,
    burst_width: float = 2.0,
    time_horizon: float = 1000.0,
    alpha: float = 1.0,
    seed: RngLike = None,
) -> EdgeStream:
    """Power-law temporal graph with burst-clustered timestamps.

    Real interaction data is bursty — KONECT timestamps cluster around
    events rather than spreading uniformly. Each edge joins one of
    ``num_bursts`` bursts (burst centers uniform over the horizon) with
    Gaussian jitter of ``burst_width``. Bursty structure concentrates
    candidate mass at a few time levels — many near-ties and long flat
    stretches — which stresses tie-handling and *flattens* the
    within-candidate exponential-weight skew (whole bursts share
    near-maximal weight), the opposite regime from uniform timestamps.
    Useful for exploring how time structure moves the baselines while
    TEA's hybrid cost stays put.
    """
    rng = make_rng(seed)
    base = temporal_powerlaw(
        num_vertices, num_edges, alpha=alpha,
        time_horizon=time_horizon, seed=rng,
    )
    centers = rng.uniform(0.0, time_horizon, size=num_bursts)
    assignment = rng.integers(0, num_bursts, size=num_edges)
    t = centers[assignment] + rng.normal(0.0, burst_width, size=num_edges)
    t = np.clip(t, 0.0, time_horizon)
    return EdgeStream(base.src, base.dst, t)
