"""Temporal graph statistics and analytic sampling-cost predictions.

Two jobs:

1. **Describe a graph** the way Table 3 does (degree mean/max, skew,
   time span) plus the temporal quantities that drive walk behaviour
   (candidate-set size distribution over arrivals).
2. **Predict sampling costs analytically** (paper Sections 3.1, 4.3):
   for a candidate prefix of size s, a full scan costs s edges,
   rejection costs E[trials] = s·w_max/Σw, ITS costs ~log2(s) probes and
   TEA ~log2(popcount(s)) + 1. Averaging those over the graph's actual
   arrival distribution gives a *closed-form Figure 2* that the measured
   benchmark can be checked against — the reproduction's self-test that
   measured costs come from the modeled mechanism and not an
   implementation accident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.aux_index import _popcount
from repro.core.weights import WeightModel
from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class GraphStats:
    """Structural and temporal summary of one graph."""

    num_vertices: int
    num_edges: int
    mean_degree: float
    max_degree: int
    degree_p99: float
    degree_skew: float          # max / mean, Table 3's implicit ratio
    time_min: float
    time_max: float
    mean_candidate_size: float  # |Γt(v)| averaged over edge arrivals
    max_candidate_size: int
    dead_end_fraction: float    # arrivals with empty candidate sets

    def snapshot(self) -> Dict[str, float]:
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "mean_degree": round(self.mean_degree, 3),
            "max_degree": self.max_degree,
            "degree_p99": round(self.degree_p99, 1),
            "degree_skew": round(self.degree_skew, 1),
            "time_min": self.time_min,
            "time_max": self.time_max,
            "mean_candidate_size": round(self.mean_candidate_size, 2),
            "max_candidate_size": self.max_candidate_size,
            "dead_end_fraction": round(self.dead_end_fraction, 4),
        }


def graph_stats(graph: TemporalGraph) -> GraphStats:
    """Compute the summary (one pass over degrees + one candidate search)."""
    degrees = graph.degrees()
    if graph.num_edges:
        candidate_sizes = graph.candidate_counts_per_edge()
        tmin, tmax = float(graph.etime.min()), float(graph.etime.max())
        mean_cand = float(candidate_sizes.mean())
        max_cand = int(candidate_sizes.max())
        dead = float((candidate_sizes == 0).mean())
    else:
        tmin = tmax = float("nan")
        mean_cand, max_cand, dead = 0.0, 0, 0.0
    mean_degree = graph.mean_degree()
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        mean_degree=mean_degree,
        max_degree=int(degrees.max()) if degrees.size else 0,
        degree_p99=float(np.percentile(degrees, 99)) if degrees.size else 0.0,
        degree_skew=(degrees.max() / mean_degree) if graph.num_edges else 0.0,
        time_min=tmin,
        time_max=tmax,
        mean_candidate_size=mean_cand,
        max_candidate_size=max_cand,
        dead_end_fraction=dead,
    )


@dataclass(frozen=True)
class PredictedCosts:
    """Analytic edges-evaluated-per-step for each sampling strategy,
    averaged over the graph's non-empty candidate arrivals."""

    full_scan: float       # GraphWalker: E[s]
    rejection: float       # KnightKing: E[s · w_max / Σw]
    its: float             # E[log2 s] + 1
    tea_hybrid: float      # E[log2(popcount(s))] + 2 (trunk ITS + alias)

    def snapshot(self) -> Dict[str, float]:
        return {
            "full_scan": round(self.full_scan, 2),
            "rejection": round(self.rejection, 2),
            "its": round(self.its, 2),
            "tea_hybrid": round(self.tea_hybrid, 2),
        }


def predict_sampling_costs(
    graph: TemporalGraph,
    weight_model: WeightModel,
    max_samples: Optional[int] = 200_000,
    seed: int = 0,
) -> PredictedCosts:
    """Closed-form Figure 2: average per-step cost of each strategy.

    The candidate-set distribution is taken over *edge arrivals* — when
    a walker traverses edge (u, v, t) it next samples from Γt(v) — which
    is the stationary first-order approximation of walk behaviour.
    ``max_samples`` subsamples arrivals on huge graphs.
    """
    if graph.num_edges == 0:
        return PredictedCosts(0.0, 0.0, 0.0, 0.0)
    weights = weight_model.compute(graph)
    candidate_sizes = graph.candidate_counts_per_edge()
    heads = graph.nbr
    mask = candidate_sizes > 0
    sizes = candidate_sizes[mask]
    head_vs = heads[mask]
    if max_samples is not None and sizes.size > max_samples:
        rng = np.random.default_rng(seed)
        pick = rng.choice(sizes.size, size=max_samples, replace=False)
        sizes = sizes[pick]
        head_vs = head_vs[pick]

    # Per-arrival prefix sums and maxima via per-vertex precomputation.
    # E[trials] for rejection = s * max(w[:s]) / sum(w[:s]).
    n = graph.num_vertices
    rej = np.empty(sizes.size)
    scan = sizes.astype(np.float64)
    for i, (v, s) in enumerate(zip(head_vs, sizes)):
        lo = graph.indptr[v]
        w = weights[lo : lo + s]
        total = w.sum()
        rej[i] = s * w.max() / total if total > 0 else float(s)
    its_cost = np.log2(np.maximum(sizes, 2)) + 1
    tea_cost = np.log2(np.maximum(_popcount(sizes.astype(np.int64)), 2)) + 2
    return PredictedCosts(
        full_scan=float(scan.mean()),
        rejection=float(rej.mean()),
        its=float(its_cost.mean()),
        tea_hybrid=float(tea_cost.mean()),
    )
