r"""Scaled analogues of the paper's evaluation datasets (Table 3).

The paper evaluates on four KONECT temporal graphs:

=========  ==========  ============  ===========  ==========
dataset    \|V\|        \|E\|          mean degree  max degree
=========  ==========  ============  ===========  ==========
growth     1,870k      39,953k       42.7         226,577
edit       21,504k     266,769k      21.1         3,270,682
delicious  33,777k     301,183k      66.8         4,358,622
twitter    41,652k     1,468,365k    74.7         3,691,240
=========  ==========  ============  ===========  ==========

A pure-Python engine cannot hold billions of edges, so this module ships
*analogues*: synthetic power-law streams that preserve each dataset's mean
degree and relative degree skew at roughly 1/1000 edge scale (see
DESIGN.md §2 for why the paper's relative results depend on shape, not raw
size). Each spec carries a ``scale`` knob so users with more patience can
grow them. Registered specs:

* ``growth``    — smallest, moderate skew.
* ``edit``      — low mean degree, heavy tail.
* ``delicious`` — high mean degree.
* ``twitter``   — largest, highest mean degree (the paper's stress case).
* ``tiny``      — unit-test sized.

Timestamps are real-valued over a horizon chosen so the exponential
temporal weights produce the skewed distributions the paper's
rejection-sampling analysis relies on while keeping expected trial
counts finite (KONECT's seconds resolution is quasi-continuous at this
activity density, hence floats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.edge_stream import EdgeStream
from repro.graph.generators import temporal_powerlaw
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for a synthetic analogue of one Table 3 dataset."""

    name: str
    num_vertices: int
    num_edges: int
    alpha: float
    time_horizon: float
    paper_vertices: int
    paper_edges: int
    paper_mean_degree: float
    paper_max_degree: int

    def generate(self, seed: RngLike = 0, scale: float = 1.0) -> EdgeStream:
        """Materialise the edge stream (deterministic for a given seed)."""
        n = max(2, int(self.num_vertices * scale))
        m = max(1, int(self.num_edges * scale))
        return temporal_powerlaw(
            num_vertices=n,
            num_edges=m,
            alpha=self.alpha,
            time_horizon=self.time_horizon,
            seed=seed,
            # Real-valued timestamps mirror KONECT's seconds resolution,
            # which is quasi-continuous relative to graph activity.
            integer_times=False,
        )


# Mean degrees mirror Table 3 (42.7 / 21.1 / 66.8 / 74.7); alpha tunes the
# max-degree tail; horizons keep exponential-weight skew in the paper's
# observed band once apps apply their time scaling.
DATASETS: Dict[str, DatasetSpec] = {
    "tiny": DatasetSpec("tiny", 64, 640, 0.8, 64.0, 64, 640, 10.0, 64),
    "growth": DatasetSpec(
        "growth", 940, 40_000, 0.9, 500.0,
        paper_vertices=1_870_000, paper_edges=39_953_000,
        paper_mean_degree=42.714, paper_max_degree=226_577,
    ),
    "edit": DatasetSpec(
        "edit", 4_300, 90_000, 1.1, 500.0,
        paper_vertices=21_504_000, paper_edges=266_769_000,
        paper_mean_degree=21.069, paper_max_degree=3_270_682,
    ),
    "delicious": DatasetSpec(
        "delicious", 1_800, 120_000, 1.05, 500.0,
        paper_vertices=33_777_000, paper_edges=301_183_000,
        paper_mean_degree=66.752, paper_max_degree=4_358_622,
    ),
    "twitter": DatasetSpec(
        "twitter", 2_700, 200_000, 1.1, 500.0,
        paper_vertices=41_652_000, paper_edges=1_468_365_000,
        paper_mean_degree=74.678, paper_max_degree=3_691_240,
    ),
}

EVALUATION_DATASETS = ("growth", "edit", "delicious", "twitter")


def load_dataset(name: str, seed: RngLike = 0, scale: float = 1.0) -> TemporalGraph:
    """Generate a named dataset analogue and freeze it into a graph."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return TemporalGraph.from_stream(spec.generate(seed=seed, scale=scale))
