"""Edge streams: the canonical temporal-graph input format.

A temporal graph ``G = (V, E, R)`` attaches a timestamp to every edge
(paper Section 2.1). Real systems receive it as an *edge stream* — the
sequence of edges in the order they were created. :class:`EdgeStream` is a
thin, validated wrapper over three parallel numpy arrays ``(src, dst,
time)``; it is the type every loader, generator, and
:class:`~repro.graph.temporal_graph.TemporalGraph` constructor speaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphFormatError


@dataclass(frozen=True)
class TemporalEdge:
    """One temporal edge ``(u, v, t)``: u→v created at time t."""

    src: int
    dst: int
    time: float

    def as_tuple(self) -> Tuple[int, int, float]:
        return (self.src, self.dst, self.time)


class EdgeStream:
    """An immutable sequence of temporal edges.

    Parameters
    ----------
    src, dst:
        Integer vertex ids (non-negative).
    time:
        Edge timestamps. Any real values are allowed; engines only compare
        them, never interpret units.
    weight:
        Optional per-edge user weights (positive). KONECT-style weighted
        interaction data; the effective sampling weight becomes
        ``w_e · f(t_e)`` (user weight × temporal bias) throughout the
        engines. ``None`` means unweighted (all 1).
    sort:
        If true (default), edges are stored sorted by ascending time — the
        stream order real systems see. Ties keep input order (stable sort).
    """

    __slots__ = ("src", "dst", "time", "weight")

    def __init__(self, src, dst, time, weight=None, sort: bool = True):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        time = np.asarray(time, dtype=np.float64)
        if not (src.shape == dst.shape == time.shape) or src.ndim != 1:
            raise GraphFormatError(
                f"src/dst/time must be equal-length 1-D arrays, got shapes "
                f"{src.shape}, {dst.shape}, {time.shape}"
            )
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphFormatError("vertex ids must be non-negative")
        if time.size and not np.all(np.isfinite(time)):
            raise GraphFormatError("edge timestamps must be finite")
        if weight is not None:
            weight = np.asarray(weight, dtype=np.float64)
            if weight.shape != src.shape:
                raise GraphFormatError("weight must match src/dst/time length")
            if weight.size and (not np.all(np.isfinite(weight)) or weight.min() <= 0):
                raise GraphFormatError("edge weights must be positive and finite")
        if sort and src.size and not _is_sorted(time):
            order = np.argsort(time, kind="stable")
            src, dst, time = src[order], dst[order], time[order]
            if weight is not None:
                weight = weight[order]
        self.src = src
        self.dst = dst
        self.time = time
        self.weight = weight
        for a in (self.src, self.dst, self.time):
            a.setflags(write=False)
        if self.weight is not None:
            self.weight.setflags(write=False)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int, float]], sort: bool = True) -> "EdgeStream":
        """Build a stream from ``(u, v, t)`` triples or ``(u, v, t, w)`` quads."""
        rows = list(edges)
        if not rows:
            return cls([], [], [], sort=False)
        if len(rows[0]) == 4:
            src, dst, time, weight = zip(*rows)
            return cls(src, dst, time, weight=weight, sort=sort)
        src, dst, time = zip(*rows)
        return cls(src, dst, time, sort=sort)

    @classmethod
    def from_arrays(cls, src, dst, time, weight=None,
                    require_sorted: bool = False) -> "EdgeStream":
        """Zero-copy columnar constructor for bulk ingest paths.

        Arrays already in the canonical dtypes (int64/int64/float64,
        1-D, C-contiguous) are adopted without copying — the fast path
        vectorised ingest and WAL replay rely on; anything else is
        converted with the same validation the row constructor does.

        Parameters
        ----------
        require_sorted:
            If true, a non-monotonic ``time`` column raises
            :class:`~repro.exceptions.GraphFormatError` instead of
            being silently re-sorted — streaming appends must arrive
            in stream order, and a caller handing us shuffled columns
            is a bug worth surfacing, not repairing.
        """
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        time = np.ascontiguousarray(time, dtype=np.float64)
        if require_sorted and not _is_sorted(time):
            raise GraphFormatError(
                "from_arrays(require_sorted=True): time column is not "
                "ascending"
            )
        return cls(src, dst, time, weight=weight, sort=not require_sorted)

    @classmethod
    def empty(cls) -> "EdgeStream":
        return cls([], [], [], sort=False)

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return int(self.src.size)

    def __iter__(self) -> Iterator[TemporalEdge]:
        for u, v, t in zip(self.src, self.dst, self.time):
            yield TemporalEdge(int(u), int(v), float(t))

    def __getitem__(self, i) -> TemporalEdge:
        if isinstance(i, slice):
            return EdgeStream(
                self.src[i], self.dst[i], self.time[i],
                weight=None if self.weight is None else self.weight[i],
                sort=False,
            )
        return TemporalEdge(int(self.src[i]), int(self.dst[i]), float(self.time[i]))

    def __eq__(self, other) -> bool:
        if not isinstance(other, EdgeStream):
            return NotImplemented
        weights_equal = (
            (self.weight is None and other.weight is None)
            or (
                self.weight is not None
                and other.weight is not None
                and np.array_equal(self.weight, other.weight)
            )
        )
        return (
            weights_equal
            and np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
            and np.array_equal(self.time, other.time)
        )

    def __repr__(self) -> str:
        return f"EdgeStream(|E|={len(self)}, vertices≤{self.num_vertices()})"

    # -- queries -----------------------------------------------------------

    def num_vertices(self) -> int:
        """Smallest n such that all vertex ids are < n."""
        if not len(self):
            return 0
        return int(max(self.src.max(), self.dst.max())) + 1

    def is_time_sorted(self) -> bool:
        return _is_sorted(self.time)

    def time_range(self) -> Tuple[float, float]:
        if not len(self):
            raise GraphFormatError("empty stream has no time range")
        return float(self.time[0]), float(self.time[-1])

    def interval(self, start_time: float, end_time: float) -> "EdgeStream":
        """Return the sub-stream with ``start_time <= t <= end_time``.

        This is the paper's ``Edges_interval`` API (Table 2, Algorithm 1):
        it extracts the temporal subgraph a query wants to walk on. The
        stream must be (and is, by construction) time-sorted, so this is a
        binary-search slice.
        """
        lo = int(np.searchsorted(self.time, start_time, side="left"))
        hi = int(np.searchsorted(self.time, end_time, side="right"))
        return self[lo:hi]

    def effective_weights(self) -> np.ndarray:
        """Per-edge user weights, defaulting to ones when unweighted."""
        if self.weight is not None:
            return self.weight
        return np.ones(len(self), dtype=np.float64)

    def concat(self, other: "EdgeStream") -> "EdgeStream":
        """Concatenate two streams (re-sorting by time if needed)."""
        weight = None
        if self.weight is not None or other.weight is not None:
            weight = np.concatenate(
                [self.effective_weights(), other.effective_weights()]
            )
        return EdgeStream(
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
            np.concatenate([self.time, other.time]),
            weight=weight,
        )

    def batches(self, batch_size: int) -> Iterator["EdgeStream"]:
        """Yield consecutive time-ordered batches (streaming-update unit)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for lo in range(0, len(self), batch_size):
            yield self[lo : lo + batch_size]


def _is_sorted(a: np.ndarray) -> bool:
    return bool(a.size < 2 or np.all(a[:-1] <= a[1:]))
