"""Temporal graph substrate.

The paper's input format is an *edge stream*: a sequence of ``(u, v, t)``
triples ordered by creation time (Section 2.1). :class:`EdgeStream` models
that format; :class:`TemporalGraph` is the in-memory CSR structure every
engine samples from, with each vertex's out-edges sorted by *decreasing*
time so that the candidate edge set Γt(u) is always a prefix of the
adjacency list (the key structural fact PAT/HPAT exploit).
"""

from repro.graph.edge_stream import EdgeStream, TemporalEdge
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.generators import (
    temporal_erdos_renyi,
    temporal_powerlaw,
    temporal_star,
    toy_commute_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph import io

__all__ = [
    "EdgeStream",
    "TemporalEdge",
    "TemporalGraph",
    "temporal_erdos_renyi",
    "temporal_powerlaw",
    "temporal_star",
    "toy_commute_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "io",
]
