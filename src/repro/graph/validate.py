"""Structural validation helpers.

Used by tests and by :mod:`repro.cli` to sanity-check loaded graphs, and
by property-based tests as the oracle for the CSR layout invariants every
sampler assumes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.temporal_graph import TemporalGraph


def check_graph(graph: TemporalGraph) -> List[str]:
    """Return a list of invariant violations (empty == valid).

    Checks the three invariants the sampling layer depends on:

    1. ``indptr`` is monotone and spans exactly ``num_edges``;
    2. every vertex segment's times are non-increasing (time-descending
       adjacency — candidate sets must be prefixes);
    3. all neighbor ids are in range.
    """
    problems: List[str] = []
    if graph.indptr[0] != 0:
        problems.append("indptr[0] != 0")
    if graph.indptr[-1] != graph.num_edges:
        problems.append("indptr[-1] != num_edges")
    if np.any(np.diff(graph.indptr) < 0):
        problems.append("indptr not monotone")
    if graph.num_edges:
        if graph.nbr.min() < 0 or graph.nbr.max() >= graph.num_vertices:
            problems.append("neighbor id out of range")
        for v in range(graph.num_vertices):
            lo, hi = graph.indptr[v], graph.indptr[v + 1]
            seg = graph.etime[lo:hi]
            if seg.size > 1 and np.any(seg[:-1] < seg[1:]):
                problems.append(f"vertex {v}: adjacency not time-descending")
                break
    return problems


def is_temporal_path(graph: TemporalGraph, path) -> bool:
    """True iff ``path`` is a valid temporal path in ``graph``.

    ``path`` is a sequence of ``(vertex, time)`` pairs as produced by the
    walk engines, where the first entry has time ``None`` (the start vertex
    has no arrival time). Checks the paper's time constraint t_{i-1} < t_i
    and that every consecutive hop is an actual edge at that timestamp.
    """
    prev_t = None
    for i in range(1, len(path)):
        u, _ = path[i - 1]
        v, t = path[i]
        if prev_t is not None and not (t > prev_t):
            return False
        prev_t = t
        nbrs, times = graph.neighbors(u)
        if not np.any((nbrs == v) & (times == t)):
            return False
    return True
