"""Bench-history store: append-only JSONL records + regression gating.

Benchmarks are only useful over time: a single ``bench_results/*.json``
snapshot says how fast this commit is, not whether it is *slower than
last week*. This package gives every benchmark a durable timeline:

* :func:`make_record` / :func:`append_record` — normalise one run into
  a schema-versioned record (git sha, UTC timestamp, machine
  fingerprint, flat numeric metrics) and append it to
  ``bench_results/history/<bench>.jsonl``.
* :func:`compare` — gate on regressions: the latest record against a
  baseline (previous record by default), per-metric relative deltas
  with direction-aware semantics (``*_s``/``*seconds``/latency are
  lower-better; ``speedup``/``*_per_sec``/throughput are
  higher-better). Exceeding the threshold in the bad direction is a
  regression; the CLI maps that to exit code 1.
* :func:`format_history` — the ``repro bench history`` trend table.

Records from different machines are still appended to one file — the
fingerprint travels with each record so ``compare`` can warn when the
baseline was produced on different hardware instead of silently
cross-comparing hosts.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.clock import wall as _wall

#: Version stamp on every history record; bump on layout changes.
HISTORY_SCHEMA = "tea-repro/bench-history/v1"

#: Default relative-change gate for ``compare`` (10%).
DEFAULT_THRESHOLD = 0.10

#: Default location benchmarks append into, relative to the repo root.
DEFAULT_HISTORY_DIR = Path("bench_results") / "history"

# Substrings that classify a metric's good direction. Checked in order;
# higher-better wins ties ("speedup_s" would be pathological anyway).
_HIGHER_BETTER = ("speedup", "per_sec", "throughput", "rate", "hit_ratio", "ops")
_LOWER_BETTER = ("seconds", "_s", "time", "latency", "wall", "overhead", "bytes",
                 "faults", "miss")


def metric_direction(name: str) -> str:
    """``"higher"`` / ``"lower"`` (better) for a metric name; default lower.

    Benchmarks overwhelmingly report durations, so unknown names are
    treated as lower-better — a false "regression" on an exotic metric
    is louder and safer than a silently ignored slowdown.
    """
    low = name.lower()
    for token in _HIGHER_BETTER:
        if token in low:
            return "higher"
    for token in _LOWER_BETTER:
        if low.endswith(token) or token in low:
            return "lower"
    return "lower"


def git_sha(cwd: Optional[Path] = None) -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def machine_fingerprint() -> Dict[str, object]:
    """A stable description of the host, stored with every record."""
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 0,
    }


def make_record(
    bench: str,
    metrics: Dict[str, float],
    meta: Optional[dict] = None,
    sha: Optional[str] = None,
) -> dict:
    """Normalise one benchmark run into a history record.

    ``metrics`` must be a flat name→number mapping; non-numeric values
    are rejected here rather than poisoning later comparisons.
    """
    clean: Dict[str, float] = {}
    for name, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"metric {name!r} is not numeric: {value!r}")
        clean[name] = float(value)
    record = {
        "schema": HISTORY_SCHEMA,
        "bench": bench,
        "ts": _wall(),
        "sha": sha if sha is not None else git_sha(),
        "machine": machine_fingerprint(),
        "metrics": clean,
    }
    if meta:
        record["meta"] = dict(meta)
    return record


def history_path(bench: str, history_dir=DEFAULT_HISTORY_DIR) -> Path:
    return Path(history_dir) / f"{bench}.jsonl"


def append_record(record: dict, history_dir=DEFAULT_HISTORY_DIR) -> Path:
    """Append one record to its bench's JSONL file; returns the path."""
    path = history_path(record["bench"], history_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(bench: str, history_dir=DEFAULT_HISTORY_DIR) -> List[dict]:
    """All records for ``bench``, oldest first; [] when none recorded.

    Unparseable or wrong-schema lines are skipped (the store is
    append-only and survives partial writes from killed runs).
    """
    path = history_path(bench, history_dir)
    if not path.exists():
        return []
    records: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict) and doc.get("schema") == HISTORY_SCHEMA:
                records.append(doc)
    records.sort(key=lambda r: r.get("ts", 0.0))
    return records


# ---------------------------------------------------------------------------
# Comparison / regression gating
# ---------------------------------------------------------------------------

def compare_records(
    baseline: dict,
    candidate: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[dict], List[str]]:
    """Per-metric deltas between two records.

    Returns ``(rows, warnings)``; each row is ``{metric, baseline,
    candidate, change, direction, verdict}`` where ``change`` is the
    signed relative delta and ``verdict`` one of ``regression`` /
    ``improvement`` / ``ok``. Metrics present on only one side produce a
    warning, not a failure — benchmarks grow columns over time.
    """
    rows: List[dict] = []
    warnings: List[str] = []
    base_metrics = baseline.get("metrics", {})
    cand_metrics = candidate.get("metrics", {})
    if baseline.get("machine") != candidate.get("machine"):
        warnings.append(
            "baseline and candidate were recorded on different machines; "
            "relative deltas may reflect hardware, not code"
        )
    for name in sorted(set(base_metrics) | set(cand_metrics)):
        if name not in base_metrics or name not in cand_metrics:
            warnings.append(f"metric {name!r} present in only one record; skipped")
            continue
        base, cand = base_metrics[name], cand_metrics[name]
        direction = metric_direction(name)
        if base == 0:
            change = 0.0 if cand == 0 else float("inf")
        else:
            change = (cand - base) / abs(base)
        worse = change > threshold if direction == "lower" else change < -threshold
        better = change < -threshold if direction == "lower" else change > threshold
        verdict = "regression" if worse else ("improvement" if better else "ok")
        rows.append({
            "metric": name,
            "baseline": base,
            "candidate": cand,
            "change": change,
            "direction": direction,
            "verdict": verdict,
        })
    return rows, warnings


def compare(
    bench: str,
    history_dir=DEFAULT_HISTORY_DIR,
    baseline_index: Optional[int] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict:
    """Gate the latest record against a baseline from the same history.

    ``baseline_index`` selects the baseline record (negative indices
    count from the end; default ``-2``, the previous run). Returns a
    result document with ``ok`` (False on any regression), the row
    table, and warnings; raises ``ValueError`` with a clear message
    when there are not enough records to compare.
    """
    records = load_history(bench, history_dir)
    if len(records) < 2:
        raise ValueError(
            f"bench {bench!r} has {len(records)} history record(s) in "
            f"{history_path(bench, history_dir)}; need at least 2 to compare"
        )
    candidate = records[-1]
    idx = -2 if baseline_index is None else baseline_index
    try:
        baseline = records[idx]
    except IndexError:
        raise ValueError(
            f"baseline index {idx} out of range for {len(records)} records"
        )
    if baseline is candidate:
        raise ValueError("baseline and candidate are the same record")
    rows, warnings = compare_records(baseline, candidate, threshold)
    regressions = [r for r in rows if r["verdict"] == "regression"]
    return {
        "bench": bench,
        "ok": not regressions,
        "threshold": threshold,
        "baseline_sha": baseline.get("sha"),
        "candidate_sha": candidate.get("sha"),
        "rows": rows,
        "regressions": [r["metric"] for r in regressions],
        "warnings": warnings,
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def format_compare(result: dict) -> str:
    """Human rendering of a :func:`compare` result."""
    lines = [
        f"bench {result['bench']}: baseline {str(result['baseline_sha'])[:10]} "
        f"vs candidate {str(result['candidate_sha'])[:10]} "
        f"(threshold {result['threshold'] * 100:.0f}%)",
        f"{'metric':<32} {'baseline':>12} {'candidate':>12} {'change':>9}  verdict",
    ]
    for row in result["rows"]:
        change = row["change"]
        change_s = "inf" if change == float("inf") else f"{change * 100:+.1f}%"
        lines.append(
            f"{row['metric']:<32} {row['baseline']:>12.6g} "
            f"{row['candidate']:>12.6g} {change_s:>9}  {row['verdict']}"
        )
    for warning in result["warnings"]:
        lines.append(f"warning: {warning}")
    lines.append(
        "PASS: no regressions" if result["ok"]
        else "FAIL: regression in " + ", ".join(result["regressions"])
    )
    return "\n".join(lines)


def format_history(
    records: Sequence[dict],
    metrics: Optional[Sequence[str]] = None,
    limit: int = 10,
) -> str:
    """Trend table over the last ``limit`` records, one row per run."""
    if not records:
        return "(no history)"
    tail = list(records)[-limit:]
    if metrics is None:
        names = sorted({m for r in tail for m in r.get("metrics", {})})
    else:
        names = list(metrics)
    header = f"{'when (utc)':<20} {'sha':<10}" + "".join(
        f" {n[-18:]:>18}" for n in names
    )
    lines = [header]
    for rec in tail:
        when = datetime.datetime.utcfromtimestamp(
            rec.get("ts", 0.0)
        ).strftime("%Y-%m-%d %H:%M:%S")
        row = f"{when:<20} {str(rec.get('sha', '?'))[:10]:<10}"
        for name in names:
            value = rec.get("metrics", {}).get(name)
            row += f" {value:>18.6g}" if value is not None else f" {'-':>18}"
        lines.append(row)
    return "\n".join(lines)
