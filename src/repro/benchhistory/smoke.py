"""Bench-history smoke: record → inject regression → gate must trip.

``python -m repro.benchhistory.smoke`` is the Makefile's
``bench-history-smoke`` gate. Against a throwaway history directory it:

1. records a baseline synthetic run (``walk_s=1.0, speedup=2.0``) and a
   candidate with a 20% slowdown, then asserts ``repro bench compare``
   (driven in-process through the real CLI ``main``) exits **1** and
   names the regressed metric;
2. records a clean re-run at baseline speed and asserts the same
   compare now exits **0** (latest-vs-previous is an improvement);
3. sanity-checks the trend table (``repro bench history``) renders all
   three records and that direction heuristics classify ``walk_s`` as
   lower-better and ``speedup`` as higher-better.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
from typing import Optional, Sequence

from repro import benchhistory


def _cli(argv) -> int:
    """Run the real CLI entry in-process, swallowing its stdout."""
    from repro.cli import main as cli_main

    with contextlib.redirect_stdout(io.StringIO()):
        return cli_main(argv)


def _record(bench: str, history_dir: str, metrics: dict) -> None:
    code = _cli([
        "bench", "record", "--bench", bench,
        "--history-dir", history_dir,
        "--metrics", json.dumps(metrics),
    ])
    assert code == 0, f"bench record failed with exit code {code}"


def history_smoke(verbose: bool = True) -> dict:
    assert benchhistory.metric_direction("walk_s") == "lower"
    assert benchhistory.metric_direction("speedup") == "higher"

    with tempfile.TemporaryDirectory(prefix="tea-benchhist-") as tmp:
        bench = "smoke_synthetic"
        _record(bench, tmp, {"walk_s": 1.0, "speedup": 2.0})
        _record(bench, tmp, {"walk_s": 1.2, "speedup": 2.0})  # 20% slower

        code = _cli(["bench", "compare", "--bench", bench,
                     "--history-dir", tmp, "--threshold", "0.10"])
        assert code == 1, (
            f"compare must exit 1 on a 20% walk_s regression, got {code}"
        )
        result = benchhistory.compare(bench, tmp, threshold=0.10)
        assert result["regressions"] == ["walk_s"], (
            f"expected walk_s flagged, got {result['regressions']}"
        )

        # A clean re-run at baseline speed: latest vs previous is now an
        # improvement, so the gate opens again.
        _record(bench, tmp, {"walk_s": 1.0, "speedup": 2.0})
        code = _cli(["bench", "compare", "--bench", bench,
                     "--history-dir", tmp, "--threshold", "0.10"])
        assert code == 0, f"compare must exit 0 on a clean re-run, got {code}"

        # Explicit --baseline pinning: newest run vs the original
        # baseline (index 0) is also clean.
        code = _cli(["bench", "compare", "--bench", bench,
                     "--history-dir", tmp, "--baseline", "0"])
        assert code == 0, f"pinned-baseline compare must exit 0, got {code}"

        records = benchhistory.load_history(bench, tmp)
        assert len(records) == 3
        trend = benchhistory.format_history(records)
        assert trend.count("\n") == 3, f"trend table malformed:\n{trend}"

        code = _cli(["bench", "history", "--bench", bench,
                     "--history-dir", tmp])
        assert code == 0, f"bench history failed with exit code {code}"

    if verbose:
        print("bench-history smoke")
        print("  regression gate: 20% walk_s slowdown -> exit 1")
        print("  clean re-run -> exit 0")
        print("  trend table renders 3 records")
    return {"records": 3, "regression_metric": "walk_s"}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="bench-history smoke: regression gate must trip"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    history_smoke(verbose=not args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
