"""TEA: A General-Purpose Temporal Graph Random Walk Engine — reproduction.

A from-scratch Python implementation of the EuroSys '23 paper (Huan et
al.), including the hybrid ITS+alias sampling core (PAT / HPAT /
auxiliary index), the temporal-centric programming model, streaming
support, out-of-core execution, and faithful reimplementations of the
baselines the paper evaluates against (GraphWalker, KnightKing, CTDNE).

Quickstart::

    from repro import load_dataset, TeaEngine, Workload, temporal_node2vec

    graph = load_dataset("growth", seed=0)
    engine = TeaEngine(graph, temporal_node2vec(p=0.5, q=2.0))
    result = engine.run(Workload(max_length=80, max_walks=100), seed=1)
    print(result.summary())
"""

from repro.graph import (
    EdgeStream,
    TemporalEdge,
    TemporalGraph,
    load_dataset,
    temporal_erdos_renyi,
    temporal_powerlaw,
    toy_commute_graph,
)
from repro.core import (
    AuxiliaryIndex,
    HierarchicalPAT,
    IncrementalHPAT,
    OutOfCorePAT,
    PersistentAliasTable,
    WeightModel,
)
from repro.engines import (
    BatchTeaOutOfCoreEngine,
    CtdneEngine,
    Engine,
    EngineResult,
    GraphWalkerEngine,
    KnightKingEngine,
    TeaEngine,
    TeaOutOfCoreEngine,
    Workload,
)
from repro.walks import (
    WalkSpec,
    exponential_walk,
    linear_walk,
    temporal_node2vec,
    unbiased_walk,
)
from repro.streaming import StreamingTeaEngine

__version__ = "1.0.0"

__all__ = [
    "EdgeStream",
    "TemporalEdge",
    "TemporalGraph",
    "load_dataset",
    "temporal_erdos_renyi",
    "temporal_powerlaw",
    "toy_commute_graph",
    "AuxiliaryIndex",
    "HierarchicalPAT",
    "IncrementalHPAT",
    "OutOfCorePAT",
    "PersistentAliasTable",
    "WeightModel",
    "CtdneEngine",
    "Engine",
    "EngineResult",
    "GraphWalkerEngine",
    "KnightKingEngine",
    "TeaEngine",
    "TeaOutOfCoreEngine",
    "BatchTeaOutOfCoreEngine",
    "Workload",
    "WalkSpec",
    "exponential_walk",
    "linear_walk",
    "temporal_node2vec",
    "unbiased_walk",
    "StreamingTeaEngine",
    "__version__",
]
