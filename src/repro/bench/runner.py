"""Experiment runner: engines × specs × datasets → measured rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.engines.base import Engine, EngineResult, Workload
from repro.exceptions import SimulatedOOM
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike
from repro.walks.spec import WalkSpec

EngineFactory = Callable[[TemporalGraph, WalkSpec], Engine]


@dataclass
class ExperimentRow:
    """One measured cell of a paper table/figure."""

    dataset: str
    engine: str
    app: str
    total_seconds: float = float("nan")
    prepare_seconds: float = float("nan")
    walk_seconds: float = float("nan")
    edges_per_step: float = float("nan")
    steps: int = 0
    memory_bytes: int = 0
    io_blocks: int = 0
    oom: bool = False

    @classmethod
    def from_result(cls, dataset: str, result: EngineResult) -> "ExperimentRow":
        return cls(
            dataset=dataset,
            engine=result.engine,
            app=result.spec.split(",")[0],
            total_seconds=result.total_seconds,
            prepare_seconds=result.prepare_seconds,
            walk_seconds=result.walk_seconds,
            edges_per_step=result.counters.edges_per_step,
            steps=result.total_steps,
            memory_bytes=result.memory.total,
            io_blocks=result.counters.io_blocks,
        )

    @classmethod
    def oom_row(cls, dataset: str, engine: str, app: str) -> "ExperimentRow":
        return cls(dataset=dataset, engine=engine, app=app, oom=True)


def run_engines(
    graph: TemporalGraph,
    spec: WalkSpec,
    engines: Dict[str, EngineFactory],
    workload: Workload,
    seed: RngLike = 0,
    dataset: str = "?",
    telemetry_dir=None,
) -> List[ExperimentRow]:
    """Run every engine factory on the same graph/spec/workload.

    A factory raising :class:`SimulatedOOM` during preparation yields an
    OOM row (the Figure 12 convention) instead of aborting the sweep.

    ``telemetry_dir``, when given, receives one schema-versioned JSON
    run report per engine (``<dataset>_<label>.json`` — the machine
    companion to the printed table, conventionally written next to the
    ``bench_results`` text artifacts).
    """
    rows: List[ExperimentRow] = []
    for label, factory in engines.items():
        try:
            engine = factory(graph, spec)
            result = engine.run(workload, seed=seed, record_paths=False)
        except SimulatedOOM:
            rows.append(ExperimentRow.oom_row(dataset, label, spec.name))
            continue
        row = ExperimentRow.from_result(dataset, result)
        row.engine = label  # prefer the sweep's label over the engine name
        rows.append(row)
        if telemetry_dir is not None:
            import os
            import re

            from repro.telemetry import write_run_report

            os.makedirs(telemetry_dir, exist_ok=True)
            slug = re.sub(r"[^A-Za-z0-9_.-]", "-", f"{dataset}_{label}")
            path = os.path.join(telemetry_dir, f"{slug}.json")
            write_run_report(path, result.run_report(meta={"dataset": dataset}))
    return rows


def speedups(
    rows: Sequence[ExperimentRow], baseline: str, metric: str = "total_seconds"
) -> Dict[str, float]:
    """Per-engine speedup of ``baseline`` over each engine on ``metric``.

    Matches the paper's convention: speedup of TEA over engine X is
    X.time / TEA.time, so ``speedups(rows, baseline='tea')['graphwalker']``
    is the Table 4 "(N×)" annotation.
    """
    by_engine = {r.engine: r for r in rows}
    if baseline not in by_engine:
        raise KeyError(f"baseline {baseline!r} not among {sorted(by_engine)}")
    base_value = getattr(by_engine[baseline], metric)
    out: Dict[str, float] = {}
    for name, row in by_engine.items():
        if row.oom:
            out[name] = float("nan")
        else:
            value = getattr(row, metric)
            out[name] = value / base_value if base_value else float("inf")
    return out
