"""Standard walk workloads for the reproduction experiments.

The paper's setup (Section 5.1): R = 1 walk per vertex, maximum length
L = 80. At our dataset scale a full R·|V| sweep in pure Python is
possible but slow for the scan-heavy baselines, so experiment workloads
cap the number of walks (sampled start vertices); the per-step cost
model is walk-count-invariant, and EXPERIMENTS.md compares normalized
quantities (time/step, edges/step).
"""

from __future__ import annotations

from typing import Optional

from repro.engines.base import Workload

PAPER_R = 1
PAPER_L = 80


def paper_workload(max_walks: Optional[int] = None, length: int = PAPER_L) -> Workload:
    """R=1, L=80 per the paper; ``max_walks`` caps the start set."""
    return Workload(walks_per_vertex=PAPER_R, max_length=length, max_walks=max_walks)


def quick_workload(max_walks: int = 64, length: int = 20) -> Workload:
    """Small workload for unit tests and smoke benchmarks."""
    return Workload(walks_per_vertex=1, max_length=length, max_walks=max_walks)
