"""Plain-text table/series rendering for experiment output.

Benchmarks print these tables so ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper's rows; EXPERIMENTS.md pastes them next to the
published numbers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.bench.runner import ExperimentRow
from repro.telemetry import format_bytes


def _fmt(value: float, digits: int = 3) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "OOM"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def format_rows(
    rows: Sequence[ExperimentRow],
    columns: Sequence[str] = (
        "dataset",
        "engine",
        "app",
        "total_seconds",
        "edges_per_step",
        "memory_bytes",
    ),
    title: str = "",
) -> str:
    """Fixed-width table of the selected row fields."""
    headers = list(columns)
    table: List[List[str]] = [headers]
    for row in rows:
        rendered = []
        for col in columns:
            if row.oom and col not in ("dataset", "engine", "app"):
                rendered.append("OOM")
                continue
            value = getattr(row, col)
            if col == "memory_bytes":
                rendered.append(format_bytes(value))
            elif isinstance(value, float):
                rendered.append(_fmt(value))
            else:
                rendered.append(str(value))
        table.append(rendered)
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, rendered in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(rendered)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[str, float]],
    x_label: str = "x",
    title: str = "",
    digits: int = 3,
) -> str:
    """A figure-style table: one column per named series, one row per x.

    ``series`` maps series name → {x: y}; x values are unioned and sorted.
    """
    xs: List = sorted({x for ys in series.values() for x in ys}, key=str)
    headers = [x_label] + list(series)
    table = [headers]
    for x in xs:
        row = [str(x)]
        for name in series:
            y = series[name].get(x)
            row.append("-" if y is None else _fmt(float(y), digits))
        table.append(row)
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
