"""Performance-regression baselines.

A lightweight harness for tracking this library's own performance over
time: record a named set of measurements to JSON
(:func:`save_baseline`), reload it later, and compare a fresh run
against it with a tolerance (:func:`compare`). Used by the repo's
maintainers before merging changes to the sampling hot paths; the
cost-model metrics (edges/step) must match *exactly* across versions —
they are deterministic — while wall-times get a slack factor.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

PathLike = Union[str, os.PathLike]

BASELINE_VERSION = 1


@dataclass
class Regression:
    """One metric that moved beyond tolerance."""

    name: str
    baseline: float
    measured: float
    ratio: float
    kind: str  # "exact" or "timing"

    def __str__(self) -> str:
        return (
            f"{self.name}: baseline {self.baseline:g} -> measured "
            f"{self.measured:g} ({self.ratio:.2f}x, {self.kind})"
        )


def save_baseline(
    path: PathLike,
    exact: Dict[str, float],
    timings: Dict[str, float],
    note: str = "",
) -> None:
    """Write a baseline file.

    ``exact`` metrics are deterministic (cost-model numbers: edges/step,
    steps, memory bytes) and compared strictly; ``timings`` are
    wall-clock seconds and compared with slack.
    """
    payload = {
        "version": BASELINE_VERSION,
        "note": note,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "exact": {k: float(v) for k, v in exact.items()},
        "timings": {k: float(v) for k, v in timings.items()},
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def load_baseline(path: PathLike) -> dict:
    with open(path) as f:
        payload = json.load(f)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {payload.get('version')}, "
            f"expected {BASELINE_VERSION}"
        )
    return payload


def compare(
    baseline: dict,
    exact: Dict[str, float],
    timings: Dict[str, float],
    exact_rtol: float = 1e-9,
    timing_slack: float = 1.5,
) -> List[Regression]:
    """Return the metrics that regressed (empty list = clean).

    * exact metrics must match within ``exact_rtol`` (both directions —
      an unexplained *improvement* in a deterministic metric is also a
      behaviour change worth flagging);
    * timings may be up to ``timing_slack``× the baseline (only
      slowdowns are flagged; machines vary).
    """
    problems: List[Regression] = []
    for name, base_value in baseline.get("exact", {}).items():
        if name not in exact:
            problems.append(Regression(name, base_value, float("nan"),
                                       float("nan"), "exact-missing"))
            continue
        measured = float(exact[name])
        if base_value == 0:
            ok = measured == 0
            ratio = float("inf") if measured else 1.0
        else:
            ratio = measured / base_value
            ok = abs(ratio - 1.0) <= exact_rtol
        if not ok:
            problems.append(Regression(name, base_value, measured, ratio, "exact"))
    for name, base_value in baseline.get("timings", {}).items():
        if name not in timings:
            continue  # timing sets may shrink without being a regression
        measured = float(timings[name])
        if base_value > 0 and measured / base_value > timing_slack:
            problems.append(
                Regression(name, base_value, measured, measured / base_value,
                           "timing")
            )
    return problems


def standard_metrics(seed: int = 0) -> Tuple[Dict[str, float], Dict[str, float]]:
    """The canonical metric set: TEA on the growth analogue.

    Returns ``(exact, timings)`` suitable for :func:`save_baseline` /
    :func:`compare`. Deterministic given the seed.
    """
    import time

    from repro.engines import TeaEngine, Workload
    from repro.graph.datasets import load_dataset
    from repro.walks.apps import exponential_walk

    graph = load_dataset("growth", seed=0)
    engine = TeaEngine(graph, exponential_walk(scale=6.0))
    t0 = time.perf_counter()
    engine.prepare()
    prep_s = time.perf_counter() - t0
    result = engine.run(Workload(walks_per_vertex=2, max_length=80),
                        seed=seed, record_paths=False)
    exact = {
        "steps": float(result.total_steps),
        "edges_per_step": result.counters.edges_per_step,
        "memory_bytes": float(result.memory.total),
    }
    timings = {"prepare_s": prep_s, "walk_s": result.walk_seconds}
    return exact, timings
