"""Benchmark harness: workloads, runners, and table/series formatting.

Each experiment in the paper's evaluation (Figures 2, 9–14; Table 4) has
a pytest-benchmark target under ``benchmarks/`` built from these pieces;
:mod:`repro.bench.runner` produces the measured rows, and
:mod:`repro.bench.report` prints them in the paper's shape so
EXPERIMENTS.md can compare side by side.
"""

from repro.bench.workloads import paper_workload, quick_workload
from repro.bench.runner import ExperimentRow, run_engines, speedups
from repro.bench.report import format_rows, format_series

__all__ = [
    "paper_workload",
    "quick_workload",
    "ExperimentRow",
    "run_engines",
    "speedups",
    "format_rows",
    "format_series",
]
