"""The paper's published numbers, as data.

Single source of truth for every figure/table value quoted in
EXPERIMENTS.md and printed by the benchmarks next to measured results.
Keeping them in code (a) lets benches annotate their output with the
published counterpart, and (b) lets tests assert the documentation
quotes the paper correctly.

All values are transcribed from the EuroSys '23 paper (Tables 3–4,
Figures 2, 9–14, and the §5.2 text).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Table 3 — datasets
# ---------------------------------------------------------------------------

TABLE3: Dict[str, Dict[str, float]] = {
    "growth": {"V": 1_870_000, "E": 39_953_000, "mean_degree": 42.714,
               "max_degree": 226_577},
    "edit": {"V": 21_504_000, "E": 266_769_000, "mean_degree": 21.069,
             "max_degree": 3_270_682},
    "delicious": {"V": 33_777_000, "E": 301_183_000, "mean_degree": 66.752,
                  "max_degree": 4_358_622},
    "twitter": {"V": 41_652_000, "E": 1_468_365_000, "mean_degree": 74.678,
                "max_degree": 3_691_240},
}

# ---------------------------------------------------------------------------
# Figure 2 — average sampling cost (edges / step), exponential walk
# ---------------------------------------------------------------------------

FIG2_EDGES_PER_STEP = {
    "tea": 5.5,
    "knightking": 11_071.0,
    "graphwalker": 19_046.0,
}

# ---------------------------------------------------------------------------
# Table 4 — total runtime in seconds: (graphwalker, knightking-8node, tea)
# ---------------------------------------------------------------------------

TABLE4_SECONDS: Dict[Tuple[str, str], Tuple[float, float, float]] = {
    ("growth", "linear"): (14.97, 2.46, 0.56),
    ("edit", "linear"): (161.12, 25.8, 5.21),
    ("delicious", "linear"): (248.36, 40.60, 7.98),
    ("twitter", "linear"): (479.84, 73.26, 12.16),
    ("growth", "exponential"): (39.71, 4.82, 2.93),
    ("edit", "exponential"): (27_961.48, 2_583.94, 32.51),
    ("delicious", "exponential"): (46_479.26, 5_044.26, 38.84),
    ("twitter", "exponential"): (224_421.26, 37_968.30, 71.47),
    ("growth", "node2vec"): (52.18, 7.03, 3.52),
    ("edit", "node2vec"): (71_907.56, 10_388.17, 46.81),
    ("delicious", "node2vec"): (119_724.11, 29_627.98, 59.82),
    ("twitter", "node2vec"): (572_274.20, 88_677.35, 92.93),
}


def table4_speedups(dataset: str, app: str) -> Tuple[float, float]:
    """Published (GraphWalker, KnightKing-8node) speedups of TEA."""
    gw, kk, tea = TABLE4_SECONDS[(dataset, app)]
    return gw / tea, kk / tea


# ---------------------------------------------------------------------------
# Figure 9 — memory (GB); §5.2 text values
# ---------------------------------------------------------------------------

FIG9_MEMORY_GB = {
    ("twitter", "tea"): 78.06,
    ("twitter", "graphwalker"): 36.48,
    ("twitter", "knightking-1node"): 45.0,
    ("growth", "tea"): 2.0,
}
FIG9_INDEX_SHARE = (0.825, 0.912)  # HPAT index share of TEA memory

# ---------------------------------------------------------------------------
# Figures 10–14 and §5.2 — headline factors
# ---------------------------------------------------------------------------

FIG10_MAX_SPEEDUP = {"knightking-1node": 5_627.0, "ctdne": 8_816.0}

FIG11_HPAT_SPEEDUP = (5.4, 1_788.0)        # over GraphWalker baseline
FIG11_INDEX_SPEEDUP = (2.75, 3.45)         # auxiliary index on top of HPAT

FIG12 = {
    "alias_vs_hpat_speed": 1.38,           # on growth, the only fit
    "alias_vs_hpat_memory": 51.7,
    "hpat_vs_pat_speed": (1.43, 2.97),
    "pat_vs_its_speed": (1.22, 1.89),
    "hpat_vs_pat_memory": 1.95,
    "pat_vs_its_memory": 1.26,
}

FIG13_THREAD_SCALING = 12.8                # 1 → 16 threads
FIG13_HPAT_SHARE = 0.80                    # of preprocessing time
FIG13_AUX_SHARE = 0.05

FIG13D_SPEEDUP = {
    (1_000_000, 100): 8_975.0,
    (1_000_000, 10_000): 79.3,
    ("equal", 100): 1.82,
    ("equal", 10_000): 1.65,
}

FIG14_RUNTIME_SPEEDUP = (115.0, 1_172.0)   # min (growth), max (twitter)
FIG14_IO_SPEEDUP = (130.3, 1_107.8)

PARAM_R2_OVER_R1 = (1.91, 2.14)
PARAM_L80_OVER_L10 = (4.7, 5.9)


def describe(dataset: str, app: str) -> str:
    """One-line published summary for a Table 4 cell."""
    gw, kk = table4_speedups(dataset, app)
    return (
        f"paper {dataset}/{app}: TEA {TABLE4_SECONDS[(dataset, app)][2]:g}s, "
        f"{gw:.1f}x over GraphWalker, {kk:.1f}x over 8-node KnightKing"
    )
