"""BINGO-style factorized time-decay bias for streaming updates.

The ``exponential_decay`` weight (``exp((t_min(u) - t_i)/scale)``,
:mod:`repro.core.weights`) is a pure function of the edge's own
timestamp, so it factors: write ``log2 w_i = f_i`` and split it into a
radix-bucket id ``b_i = floor(f_i / OCTAVES)`` and a bounded mantissa
``relw_i = 2^(f_i - b_i·OCTAVES) ∈ [1, 2^OCTAVES)``. All edges sharing
a bucket are within a fixed weight ratio, and — because ``f`` is
monotone in time — each bucket covers a **time-contiguous run** of the
stream. The decay factor ``2^(b·OCTAVES)`` is applied as a per-bucket
multiplicative correction at draw time (exact: a power-of-two ldexp),
never baked into stored tables.

That is the BINGO trade (PAPERS.md) adapted to TEA's block forest: the
carry-merge forest of :mod:`repro.core.incremental` re-indexes every
edge O(log d) times to keep per-block alias tables weight-coherent,
because raw ``exp`` weights span the stream's full dynamic range. Here
a batch append only extends the newest bucket (amortised O(batch) via
capacity doubling) or opens new ones — O(buckets touched) work, no
trunk rebuilds, and no under/overflow however long the stream runs:

* **append**: bucket ids are non-increasing in time, so a batch maps
  to a few id-runs; each run appends to the front bucket or creates a
  new front bucket. Prefix sums over the mantissas extend
  incrementally.
* **draw**: ITS over the covered buckets' corrected suffix totals
  (scaled relative to the heaviest covered bucket, so the comparison
  is performed in-range), then exact ITS over the winning bucket's
  mantissa prefix sums. Distribution-identical to a from-scratch HPAT
  over the same candidate prefix (property-tested, chi-squared).

Sampling cost is O(log buckets + log bucket-size) probes — the same
shape as the block forest — while updates drop from O(batch + carries)
to O(batch).
"""

from __future__ import annotations

from math import ldexp
from typing import List, Optional, Tuple

import numpy as np

from repro.core.weights import WeightModel
from repro.exceptions import EmptyCandidateSetError, NotSupportedError
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import draw_in_range, its_search

#: log2-width of one radix bucket: edges in a bucket are within a
#: 2^8 = 256x weight ratio, and a stream spanning T time units touches
#: ~T / (8·scale·ln2) buckets total.
BUCKET_OCTAVES = 8

_LN2 = 0.6931471805599453


def decay_split(times: np.ndarray, t_ref: float, scale: float
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Factor ``exp((t_ref - t)/scale)`` into ``(bucket_id, mantissa)``.

    ``weight = ldexp(mantissa, bucket_id · BUCKET_OCTAVES)`` exactly,
    with ``mantissa ∈ [1, 2^BUCKET_OCTAVES)`` — no intermediate ever
    under- or overflows, which is the point: the raw weight of an edge
    ``10^4`` scale-units past ``t_ref`` is ``exp(-10^4)`` ≈ 0 in
    float64, but its bucket id and mantissa stay exact.
    """
    f = (t_ref - np.asarray(times, dtype=np.float64)) / (scale * _LN2)
    bid = np.floor(f / BUCKET_OCTAVES).astype(np.int64)
    relw = np.exp2(f - bid.astype(np.float64) * BUCKET_OCTAVES)
    return bid, relw


class _RadixBucket:
    """One log-scale radix bucket: a time-contiguous edge run.

    Arrays are capacity-doubled and store edges **oldest-first** (the
    stream's arrival order), so appends write at the end; ``cum`` keeps
    the mantissa prefix sums (``cum[j] = Σ relw[:j]``), extended
    incrementally — the newest ``take`` edges are the suffix
    ``[n - take, n)`` with mantissa mass ``cum[n] - cum[n - take]``.
    """

    __slots__ = ("bid", "n", "dst", "times", "relw", "cum")

    def __init__(self, bid: int):
        self.bid = int(bid)
        self.n = 0
        self.dst = np.empty(0, dtype=np.int64)
        self.times = np.empty(0, dtype=np.float64)
        self.relw = np.empty(0, dtype=np.float64)
        self.cum = np.zeros(1, dtype=np.float64)

    @property
    def exponent(self) -> int:
        """The bucket's power-of-two correction factor, as an exponent."""
        return self.bid * BUCKET_OCTAVES

    def append(self, dst: np.ndarray, times: np.ndarray,
               relw: np.ndarray) -> None:
        m = int(dst.size)
        need = self.n + m
        if need > self.dst.size:
            cap = max(need, 2 * self.dst.size, 8)
            for name in ("dst", "times", "relw"):
                old = getattr(self, name)
                buf = np.empty(cap, dtype=old.dtype)
                buf[: self.n] = old[: self.n]
                setattr(self, name, buf)
            cum = np.empty(cap + 1, dtype=np.float64)
            cum[: self.n + 1] = self.cum[: self.n + 1]
            self.cum = cum
        self.dst[self.n:need] = dst
        self.times[self.n:need] = times
        self.relw[self.n:need] = relw
        np.cumsum(relw, out=self.cum[self.n + 1: need + 1])
        self.cum[self.n + 1: need + 1] += self.cum[self.n]
        self.n = need

    def newer_than(self, t: float) -> int:
        """Edges of this bucket with time strictly greater than ``t``."""
        return self.n - int(
            np.searchsorted(self.times[: self.n], t, side="right")
        )

    def suffix_mass(self, take: int) -> float:
        """Mantissa mass of the newest ``take`` edges."""
        return float(self.cum[self.n] - self.cum[self.n - take])

    def sample_suffix(
        self, take: int, rng, counters: Optional[CostCounters]
    ) -> int:
        """Exact ITS over the newest ``take`` edges ∝ mantissa."""
        lo = self.n - take
        base = float(self.cum[lo])
        r = base + draw_in_range(rng, 0.0, self.suffix_mass(take))
        return its_search(self.cum[: self.n + 1], r, lo, self.n, counters)

    def nbytes(self) -> int:
        return int(self.dst.nbytes + self.times.nbytes + self.relw.nbytes
                   + self.cum.nbytes)

    def pin(self) -> "_RadixBucket":
        """A frozen alias of this bucket at its current fill.

        Shares the backing arrays (live appends only write at indices
        ≥ the live ``n``, and capacity growth reallocates rather than
        moving the filled prefix) but owns its ``n``, so the clone is
        immune to both future appends *and* ``restore()`` rewinding the
        live bucket's fill.
        """
        b = _RadixBucket.__new__(_RadixBucket)
        b.bid = self.bid
        b.n = self.n
        b.dst = self.dst
        b.times = self.times
        b.relw = self.relw
        b.cum = self.cum
        return b


class DecayRadixForest:
    """Streaming index for one vertex under factorized exponential decay.

    API-compatible with
    :class:`repro.core.incremental.VertexIncrementalHPAT` (append,
    candidate queries, prefix sampling, snapshot/restore), selected by
    :class:`repro.core.incremental.IncrementalHPAT` whenever the weight
    model is ``exponential_decay``. ``merged_edges`` is always 0 —
    nothing is ever re-indexed — and ``buckets_touched`` /
    ``reindexed_edges`` expose the O(buckets)-per-append cost oracle the
    kernel-fusion bench asserts against the carry forest.
    """

    __slots__ = ("weight_model", "buckets", "num_edges", "_t_ref",
                 "_t_newest", "merged_edges", "buckets_touched",
                 "reindexed_edges")

    def __init__(self, weight_model: WeightModel):
        if weight_model.kind != "exponential_decay":
            raise NotSupportedError(
                "DecayRadixForest factorizes exponential_decay weights only"
            )
        self.weight_model = weight_model
        self.buckets: List[_RadixBucket] = []  # newest first (bid ascending)
        self.num_edges = 0
        self._t_ref: Optional[float] = None
        self._t_newest: Optional[float] = None
        self.merged_edges = 0  # API parity with the carry forest: never merges
        self.buckets_touched = 0  # cost oracle: buckets written per append
        self.reindexed_edges = 0  # cost oracle: edges indexed (each once)

    def append_batch(self, dst, times) -> None:
        """Append edges with times ≥ everything already present."""
        dst = np.asarray(dst, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if dst.size == 0:
            return
        if times.size > 1 and np.any(times[:-1] > times[1:]):
            raise NotSupportedError("batch times must be ascending")
        if self._t_newest is not None and times[0] < self._t_newest:
            raise NotSupportedError(
                f"streaming updates must not precede existing edges "
                f"(got {times[0]} < {self._t_newest})"
            )
        if self._t_ref is None:
            self._t_ref = float(times[0])
        self._t_newest = float(times[-1])
        bid, relw = decay_split(times, self._t_ref, self.weight_model.scale)
        # Bucket ids are non-increasing along the (ascending-time) batch:
        # split it into id-runs, oldest run first, so each run lands on
        # the then-front bucket or opens a new front bucket.
        bounds = np.flatnonzero(np.diff(bid)) + 1
        edges = np.concatenate([[0], bounds, [bid.size]])
        for lo, hi in zip(edges[:-1], edges[1:]):
            b = int(bid[lo])
            if self.buckets and self.buckets[0].bid == b:
                bucket = self.buckets[0]
            else:
                bucket = _RadixBucket(b)
                self.buckets.insert(0, bucket)
            bucket.append(dst[lo:hi], times[lo:hi], relw[lo:hi])
            self.buckets_touched += 1
        self.reindexed_edges += int(dst.size)
        self.num_edges += int(dst.size)

    # -- queries ---------------------------------------------------------------

    def candidate_count(self, t: Optional[float]) -> int:
        if t is None:
            return self.num_edges
        count = 0
        for b in self.buckets:  # newest first
            c = b.newer_than(t)
            count += c
            if c < b.n:
                break
        return count

    def sample(
        self,
        candidate_size: int,
        rng,
        counters: Optional[CostCounters] = None,
    ) -> Tuple[int, float]:
        """Sample among the newest ``candidate_size`` edges ∝ decay weight.

        ITS over per-bucket corrected suffix masses — each bucket's
        mantissa mass times its power-of-two decay correction, rescaled
        so the heaviest covered bucket sits at 2^0 (buckets more than
        ~2^-1074 lighter underflow to zero probability, exactly as
        their raw weights would) — then an exact mantissa ITS inside
        the winning bucket.
        """
        s = int(candidate_size)
        if s <= 0 or s > self.num_edges:
            raise EmptyCandidateSetError(
                f"candidate size {s} invalid for {self.num_edges} edges"
            )
        covered: List[Tuple[_RadixBucket, int]] = []
        masses: List[float] = []
        exponents: List[int] = []
        remaining = s
        for b in self.buckets:
            take = min(remaining, b.n)
            covered.append((b, take))
            masses.append(b.suffix_mass(take))
            exponents.append(b.exponent)
            remaining -= take
            if remaining == 0:
                break
        k_star = max(exponents)
        cum: List[float] = [0.0]
        for mass, e in zip(masses, exponents):
            cum.append(cum[-1] + ldexp(mass, e - k_star))
        total = cum[-1]
        if not (total > 0):
            raise EmptyCandidateSetError("zero-weight candidate set")
        r = draw_in_range(rng, 0.0, total)
        lo_b, hi_b = 0, len(covered)
        while hi_b - lo_b > 1:
            mid = (lo_b + hi_b) // 2
            if counters is not None:
                counters.record_probe()
            if cum[mid] < r:
                lo_b = mid
            else:
                hi_b = mid
        bucket, take = covered[lo_b]
        j = bucket.sample_suffix(take, rng, counters)
        return int(bucket.dst[j]), float(bucket.times[j])

    def edges_desc(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges newest-first: ``(dst, times, weights)`` — test oracle.

        Weights are reconstructed global decay weights; buckets far
        below the reference underflow to 0.0 exactly as the raw
        ``exp`` computation would.
        """
        if not self.buckets:
            z = np.zeros(0)
            return z.astype(np.int64), z, z
        dsts, ts, ws = [], [], []
        for b in self.buckets:
            dsts.append(b.dst[: b.n][::-1])
            ts.append(b.times[: b.n][::-1])
            with np.errstate(under="ignore"):
                ws.append(np.ldexp(b.relw[: b.n][::-1], b.exponent))
        return np.concatenate(dsts), np.concatenate(ts), np.concatenate(ws)

    def num_blocks(self) -> int:
        return len(self.buckets)

    def nbytes(self) -> int:
        return sum(b.nbytes() for b in self.buckets)

    # -- atomicity ---------------------------------------------------------

    def snapshot(self) -> tuple:
        """O(num_buckets) capture for transactional appends.

        Buckets mutate in place, but only *beyond* their current fill
        ``n`` (append-only arrays; capacity growth copies the filled
        prefix), so the pre-batch state is exactly (bucket list, fill
        levels): restoring truncates each surviving bucket back and
        drops buckets the failed batch created.
        """
        return (
            list(self.buckets), [b.n for b in self.buckets],
            self.num_edges, self._t_ref, self._t_newest,
            self.buckets_touched, self.reindexed_edges,
        )

    def restore(self, state: tuple) -> None:
        (self.buckets, fills, self.num_edges, self._t_ref, self._t_newest,
         self.buckets_touched, self.reindexed_edges) = state
        for b, n in zip(self.buckets, fills):
            b.n = n

    def view(self) -> "DecayRadixForest":
        """A frozen copy-on-write capture for epoch-snapshot reads.

        Unlike :meth:`snapshot`/:meth:`restore` — which rewind the
        *live* buckets' fill in place — a view pins each bucket via
        :meth:`_RadixBucket.pin`, so concurrent appends and rollbacks
        on the live forest can never move what the view observes.
        """
        frozen = DecayRadixForest.__new__(DecayRadixForest)
        frozen.weight_model = self.weight_model
        frozen.buckets = [b.pin() for b in self.buckets]
        frozen.num_edges = self.num_edges
        frozen._t_ref = self._t_ref
        frozen._t_newest = self._t_newest
        frozen.merged_edges = self.merged_edges
        frozen.buckets_touched = self.buckets_touched
        frozen.reindexed_edges = self.reindexed_edges
        return frozen
