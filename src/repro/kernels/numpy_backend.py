"""Fused numpy reference backend for the sampling kernel.

Semantics-identical (bit-identical, in fact — asserted by tests and
``make kernel-smoke``) to the pre-fusion frontier kernel, with the ITS
lockstep reorganised around how skewed workloads actually resolve:

* the pre-fusion kernel scanned **global bit positions** high→low,
  paying three full-population mask ops plus a ``flatnonzero`` per bit
  (~17 bits on fig2-scale degrees) even after almost every lane had
  found its trunk;
* this backend instead probes, per round, **each active lane's own next
  set bit** over a compressed active set. A lane is gathered exactly
  once per trunk boundary it actually inspects, idle lanes cost
  nothing, and the active set shrinks by the per-round hit rate — on
  the paper's skewed workloads most draws resolve in the first
  (heaviest) trunk, so total work is ~O(lanes), not O(lanes · bits).

The probe order per lane — its set bits, highest first, with the same
``c[cbase + offset + block] >= r`` acceptance — is exactly the order
the global bit-scan visited, so ``level``/``offset`` match the legacy
kernel bit for bit; selection is a pure function of ``r`` and the
prefix-sum array, and all uniforms are drawn by the shared driver.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelBackend, KernelScratch


def its_select(
    c: np.ndarray,
    cbase: np.ndarray,
    ss: np.ndarray,
    r: np.ndarray,
    level: np.ndarray,
    offset: np.ndarray,
    scratch: KernelScratch,
) -> None:
    """ITS over the binary decomposition, next-set-bit probe rounds."""
    # Round 1 runs over the full population with no index vector: every
    # lane probes its highest set bit, and first-round winners keep
    # offset == 0 (the driver pre-zeroes it), so only ``level`` is
    # written. Survivors are compressed once into the loop state.
    _, e0 = np.frexp(ss)
    e0 = e0.astype(np.int64) - 1
    top0 = np.int64(1) << e0
    take0 = c[cbase + top0] >= r
    level[take0] = e0[take0]
    idx = np.flatnonzero(~take0)
    rem = ss[idx] - top0[idx]
    pos = cbase[idx] + top0[idx]
    rr = r[idx]
    while idx.size:
        # Highest set bit of each lane's remaining decomposition: exact
        # via frexp for any candidate size below 2^53.
        _, e = np.frexp(rem)
        e = e.astype(np.int64)
        top = np.int64(1) << (e - 1)
        bnd = c[pos + top]
        take = bnd >= rr
        done = idx[take]
        level[done] = e[take] - 1
        offset[done] = pos[take] - cbase[done]
        # Survivors skip past this trunk and probe their next set bit.
        keep = ~take
        idx = idx[keep]
        top = top[keep]
        rem = rem[keep] - top
        pos = pos[keep] + top
        rr = rr[keep]
        # The last set bit's boundary is the candidate total >= r, so
        # every lane terminates via ``take`` — rem never reaches zero.


def alias_select(
    prob: np.ndarray,
    alias: np.ndarray,
    lvl_ptr: np.ndarray,
    lvl_base: np.ndarray,
    vs: np.ndarray,
    level: np.ndarray,
    offset: np.ndarray,
    u_cell: np.ndarray,
    u_take: np.ndarray,
    out: np.ndarray,
) -> None:
    """Vectorised alias draw inside each lane's selected trunk."""
    width = np.int64(1) << level
    idx = lvl_ptr[lvl_base[vs] + level - 1]  # fresh gather: mutable
    np.add(idx, offset, out=idx)
    cell = (u_cell * width).astype(np.int64)
    np.minimum(cell, width - 1, out=cell)
    np.add(idx, cell, out=idx)
    # Alias redirect only where the cell's coin flip misses: the alias
    # table is gathered for the (compressed) rejected lanes alone.
    miss = np.flatnonzero(u_take >= prob[idx])
    cell[miss] = alias[idx[miss]]
    np.add(offset, cell, out=out)


BACKEND = KernelBackend(
    name="numpy", its_select=its_select, alias_select=alias_select
)
