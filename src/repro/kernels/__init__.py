"""Pluggable sampling-kernel backends (ROADMAP item 4).

The frontier hot loop is factored into structure-of-arrays passes
behind the narrow ABI of :mod:`repro.kernels.base`; this package is
the registry that picks which implementation runs them:

``numpy``
    The fused reference backend — per-lane next-set-bit ITS probing
    over a compressed active set, scratch-array reuse, one uniform
    block per lane set. Always available; bit-identical to the
    pre-fusion kernel.
``numba``
    Per-lane njit loops (warp-per-walker shape). Auto-detected: when
    numba is importable ``auto`` resolves to it, otherwise requests
    fall back cleanly to ``numpy`` (recorded in
    :func:`backend_fallback_note`). Bit-identical to ``numpy``.
``legacy``
    The pre-fusion kernel, verbatim — parity oracle and bench
    baseline. Not offered by the CLI.

Backend choice never changes walk output: all backends consume the
same per-lane uniform streams and compute the same pure selection
functions, so swapping them is purely a throughput decision.

The BINGO-style factorized time-decay bias for streaming updates lives
in :mod:`repro.kernels.decay`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.kernels.base import KernelBackend, KernelScratch, sample_batch

#: CLI-facing choices (``legacy`` is intentionally absent: it exists
#: for parity tests and benchmarks, not for users).
BACKEND_CHOICES = ("auto", "numpy", "numba")

_CACHE = {}
_FALLBACK_NOTE: Optional[str] = None


def _load(name: str) -> Optional[KernelBackend]:
    if name in _CACHE:
        return _CACHE[name]
    backend: Optional[KernelBackend]
    if name == "numpy":
        from repro.kernels.numpy_backend import BACKEND as backend
    elif name == "legacy":
        from repro.kernels.legacy import BACKEND as backend
    elif name == "numba":
        try:
            from repro.kernels.numba_backend import BACKEND as backend
        except ImportError:
            backend = None
    else:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(choices: auto, numpy, numba, legacy)"
        )
    _CACHE[name] = backend
    return backend


def numba_available() -> bool:
    """True when the njit backend can actually be built."""
    return _load("numba") is not None


def available_backends() -> Tuple[str, ...]:
    """Concrete (non-``auto``) backends importable in this process."""
    names = ["numpy", "legacy"]
    if numba_available():
        names.insert(1, "numba")
    return tuple(names)


def resolve_backend(name: str = "auto") -> KernelBackend:
    """Resolve a backend request to a concrete :class:`KernelBackend`.

    ``auto`` prefers numba when importable, else numpy. An explicit
    ``numba`` request on a host without numba **falls back** to numpy
    rather than failing — the degradation is recorded for
    :func:`backend_fallback_note` so telemetry and smoke checks can
    observe it. Backend objects are stateless and shared.
    """
    global _FALLBACK_NOTE
    if isinstance(name, KernelBackend):
        return name
    name = (name or "auto").lower()
    if name == "auto":
        backend = _load("numba")
        return backend if backend is not None else _load("numpy")
    backend = _load(name)
    if backend is None:  # numba requested but absent
        _FALLBACK_NOTE = (
            "kernel backend 'numba' unavailable (numba not importable); "
            "fell back to 'numpy'"
        )
        return _load("numpy")
    return backend


def backend_fallback_note() -> Optional[str]:
    """The most recent graceful-fallback message, or None."""
    return _FALLBACK_NOTE


__all__ = [
    "BACKEND_CHOICES",
    "KernelBackend",
    "KernelScratch",
    "available_backends",
    "backend_fallback_note",
    "numba_available",
    "resolve_backend",
    "sample_batch",
]
