"""Kernel smoke: backend bit-parity and factorized-bias gates.

``python -m repro.kernels.smoke`` is the Makefile's ``kernel-smoke``
gate (the kernel-fusion ISSUE's acceptance criteria, executable):

* **Backend parity** — the fused numpy backend must be bit-identical to
  the preserved pre-fusion (``legacy``) kernel under both
  counter-based :class:`~repro.rng.LaneRng` streams and the shared
  :class:`~repro.rng.GeneratorLanes` source, across scratch reuse.
* **Numba parity / graceful fallback** — when numba is importable the
  njit backend must match numpy bit-for-bit on the same draws; when it
  is absent, an explicit ``numba`` request must resolve to numpy and
  leave a fallback note for telemetry.
* **Walk-level parity** — a full :class:`BatchTeaEngine` node2vec run
  must produce identical walks under every available backend.
* **Factorized decay equivalence** — the radix forest's reconstructed
  weights must match the carry forest's after identical streamed
  batches, with zero merge work (the O(1)-buckets update claim).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.kernels import (
    available_backends,
    backend_fallback_note,
    numba_available,
    resolve_backend,
    sample_batch,
    KernelScratch,
)
from repro.rng import GeneratorLanes, LaneRng


def _smoke_index():
    """A skewed exponential-weight HPAT plus (vs, ss) query arrays."""
    from repro.core import builder
    from repro.core.weights import WeightModel
    from repro.graph.generators import temporal_powerlaw
    from repro.graph.temporal_graph import TemporalGraph

    graph = TemporalGraph.from_stream(
        temporal_powerlaw(num_vertices=120, num_edges=3000, alpha=1.0,
                          time_horizon=150.0, seed=11)
    )
    pre = builder.preprocess(graph, WeightModel("exponential", scale=2.0))
    deg = np.diff(pre.index.indptr)
    rng = np.random.default_rng(0)
    lively = np.flatnonzero(deg > 0)
    vs = lively[rng.integers(0, lively.size, size=800)].astype(np.int64)
    ss = 1 + (rng.random(800) * deg[vs]).astype(np.int64)
    return pre.index, vs, ss


def backend_parity_smoke(verbose: bool) -> dict:
    """Every available backend bit-identical to legacy on shared draws."""
    index, vs, ss = _smoke_index()
    legacy = resolve_backend("legacy")
    lanes = np.arange(vs.size, dtype=np.int64)
    names = [n for n in available_backends() if n != "legacy"]
    checked = 0
    for name in names:
        backend = resolve_backend(name)
        scratch = KernelScratch()
        for label, mk in (
            ("LaneRng", lambda: LaneRng(
                np.arange(vs.size, dtype=np.uint64) + 99)),
            ("GeneratorLanes", lambda: GeneratorLanes(
                np.random.default_rng(17))),
        ):
            ref = sample_batch(legacy, index, vs, ss, None,
                               draw=mk(), lanes=lanes)
            got = sample_batch(backend, index, vs, ss, None,
                               draw=mk(), lanes=lanes, scratch=scratch)
            assert np.array_equal(ref, got), (
                f"backend {name!r} diverged from legacy under {label}"
            )
            checked += 1
    if verbose:
        print(f"kernel parity: {names} == legacy over {checked} draws "
              f"({vs.size} lanes each)")
    return {"backends": names, "checks": checked}


def fallback_smoke(verbose: bool) -> dict:
    """Explicit numba request degrades to numpy cleanly when absent."""
    resolved = resolve_backend("numba")
    if numba_available():
        assert resolved.name == "numba", (
            "numba importable but request resolved to " + resolved.name
        )
        note = None
    else:
        assert resolved.name == "numpy", (
            "absent numba must fall back to numpy, got " + resolved.name
        )
        note = backend_fallback_note()
        assert note and "numba" in note, (
            "graceful fallback must leave a telemetry note"
        )
    assert resolve_backend("auto").name == (
        "numba" if numba_available() else "numpy"
    )
    if verbose:
        print(f"kernel fallback: numba_available={numba_available()} "
              f"auto->{resolve_backend('auto').name} note={note!r}")
    return {"numba_available": numba_available(), "note": note}


def walk_parity_smoke(verbose: bool) -> dict:
    """Whole node2vec runs identical across backends (hop-for-hop)."""
    from repro.engines.base import Workload
    from repro.engines.batch import BatchTeaEngine
    from repro.graph.datasets import load_dataset
    from repro.walks.apps import APPLICATIONS

    graph = load_dataset("tiny", seed=7)
    spec = APPLICATIONS["node2vec"]
    workload = Workload(walks_per_vertex=2, max_length=30)
    baseline = None
    names = list(available_backends())
    for name in names:
        engine = BatchTeaEngine(graph, spec, kernel_backend=name)
        result = engine.run(workload, seed=5, record_paths=True)
        walks = [tuple(p.vertices) for p in result.paths]
        if baseline is None:
            baseline = walks
        else:
            assert walks == baseline, (
                f"backend {name!r} changed walk output"
            )
    if verbose:
        print(f"walk parity: {len(baseline)} node2vec walks identical "
              f"across {names}")
    return {"walks": len(baseline), "backends": names}


def factorized_decay_smoke(verbose: bool) -> dict:
    """Radix forest == carry forest on a streamed decay workload."""
    from repro.core.incremental import VertexIncrementalHPAT
    from repro.core.weights import WeightModel
    from repro.kernels.decay import DecayRadixForest

    wm = WeightModel("exponential_decay", scale=5.0)
    rng = np.random.default_rng(23)
    times = np.sort(rng.uniform(0.0, 120.0, size=800))
    dst = rng.integers(0, 64, size=800).astype(np.int64)
    carry = VertexIncrementalHPAT(wm)
    radix = DecayRadixForest(wm)
    cuts = np.linspace(0, 800, 17).astype(int)
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        carry.append_batch(dst[lo:hi], times[lo:hi])
        radix.append_batch(dst[lo:hi], times[lo:hi])
    d1, t1, w1 = carry.edges_desc()
    d2, t2, w2 = radix.edges_desc()
    assert np.array_equal(d1, d2) and np.array_equal(t1, t2)
    np.testing.assert_allclose(w1, w2, rtol=1e-12)
    assert radix.merged_edges == 0 and radix.reindexed_edges == 800
    assert carry.merged_edges > 0, (
        "smoke workload too small to exercise the carry path"
    )
    # candidate counts agree at every probe time
    for t in np.linspace(times[0] - 1, times[-1] + 1, 13):
        assert carry.candidate_count(float(t)) == radix.candidate_count(float(t))
    if verbose:
        print(f"factorized decay: weights equal (rtol 1e-12); carry "
              f"re-indexed {carry.merged_edges} edges, radix 0 "
              f"(buckets touched: {radix.buckets_touched})")
    return {"carry_merged": carry.merged_edges,
            "radix_buckets_touched": radix.buckets_touched}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    verbose = not args.quiet
    backend_parity_smoke(verbose)
    fallback_smoke(verbose)
    walk_parity_smoke(verbose)
    factorized_decay_smoke(verbose)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
