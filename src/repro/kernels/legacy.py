"""The pre-fusion frontier kernel, preserved verbatim as a backend.

This is the exact code the fused backends replaced: per-call
temporaries, a full-population scan per bit of the ITS lockstep, the
``_popcount`` import inside the hot path, and separate uniform calls
per alias stage. It exists for two reasons:

* **parity oracle** — ``make kernel-smoke`` and the kernel tests assert
  the fused numpy (and, when installed, numba) backends are
  bit-identical to this reference under both
  :class:`~repro.rng.LaneRng` and :class:`~repro.rng.GeneratorLanes`
  draw sources;
* **bench baseline** — ``benchmarks/test_kernel_fusion.py`` measures
  the fused backend's walk-throughput gain against this kernel (the
  ISSUE's ≥1.5x acceptance bar), so the comparison survives in-tree
  instead of living only in a PR description.

It is selectable (``kernel_backend="legacy"``) but deliberately not
offered by the CLI.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelBackend


def _sample_legacy(index, vs, ss, draw, lanes, counters):
    """The original ``hpat_sample_batch`` body, unchanged."""
    n = vs.size
    cbase = index.indptr[vs] + vs
    totals = index.c[cbase + ss]
    r = totals - draw.uniform(lanes) * totals  # draws in (0, total]

    # ITS over trunks, bit-scan lockstep: find the block of the binary
    # decomposition whose cumulative boundary covers r.
    remaining = ss.astype(np.int64).copy()
    offset = np.zeros(n, dtype=np.int64)
    level = np.zeros(n, dtype=np.int64)
    chosen = np.zeros(n, dtype=bool)
    max_bits = int(ss.max()).bit_length()
    for k in range(max_bits - 1, -1, -1):
        block = 1 << k
        rows = np.flatnonzero((~chosen) & ((remaining & block) != 0))
        if not rows.size:
            continue
        boundary = index.c[cbase[rows] + offset[rows] + block]
        take = boundary >= r[rows]
        take_rows = rows[take]
        level[take_rows] = k
        chosen[take_rows] = True
        offset[rows[~take]] += block
        remaining[rows] -= block

    if counters is not None:
        from repro.core.aux_index import _popcount

        blocks = _popcount(ss.astype(np.int64))
        probes = np.ceil(np.log2(np.maximum(blocks, 2))).astype(np.int64) + 1
        counters.binary_search_probes += int(probes.sum())
        counters.edges_evaluated += int(probes.sum())

    # Alias draw inside each selected trunk (level 0 is the identity).
    out = offset.copy()
    deep = level > 0
    if deep.any():
        dvs = vs[deep]
        k = level[deep]
        width = np.int64(1) << k
        start = index.lvl_ptr[index.lvl_base[dvs] + k - 1] + offset[deep]
        deep_lanes = lanes[deep]
        cell = (draw.uniform(deep_lanes) * width).astype(np.int64)
        cell = np.minimum(cell, width - 1)
        take_cell = draw.uniform(deep_lanes) < index.prob[start + cell]
        local = np.where(take_cell, cell, index.alias[start + cell])
        out[deep] = offset[deep] + local
        if counters is not None:
            counters.alias_draws += int(deep.sum())
            counters.edges_evaluated += int(deep.sum())
    return out


BACKEND = KernelBackend(
    name="legacy", its_select=None, alias_select=None,
    sample_override=_sample_legacy,
)
