"""Backend ABI for the fused SoA sampling kernel.

The frontier hot loop (ROADMAP item 4) is three structure-of-arrays
passes over the walker population:

1. **gather** — per-lane candidate totals from the prefix-sum array and
   one uniform block per lane set;
2. **ITS + alias draw** — trunk selection by lockstep binary
   decomposition, then one alias draw inside each selected trunk;
3. **scatter** — local edge indices back into the frontier arrays.

A *backend* supplies the two compute passes behind a narrow ABI — pure
array-in/array-out functions over the flat HPAT arrays — while this
module owns everything stateful: uniform draws (so counter-based
:class:`~repro.rng.LaneRng` streams stay bit-identical across
backends), scratch-array reuse, and cost accounting. That split is what
makes an njit (or, later, GPU warp-per-walker) backend a drop-in: the
passes see only contiguous int64/float64 arrays.

``its_select(c, cbase, ss, r, level, offset, scratch)``
    For each lane ``i`` find the trunk of the binary decomposition of
    ``ss[i]`` whose cumulative boundary covers the draw ``r[i]``:
    writes the trunk's level to ``level[i]`` and its edge offset to
    ``offset[i]`` (in place; both pre-zeroed). Pure — consumes no
    randomness — so any two backends given equal ``r`` must agree
    exactly. ``scratch`` is a :class:`KernelScratch`; backends that
    need no staging buffers ignore it.

``alias_select(prob, alias, lvl_ptr, lvl_base, vs, level, offset,
u_cell, u_take, out)``
    For each *deep* lane (``level > 0``, arrays pre-compressed) draw a
    cell of the level-``level`` alias table with ``u_cell``, accept or
    redirect with ``u_take``, and write the selected local edge index
    (trunk offset + in-trunk pick) into ``out`` (in place). The two
    uniforms arrive pre-drawn — one ``uniform_block`` per deep lane
    set — so the backend never touches an RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.aux_index import _popcount
from repro.rng import GeneratorLanes
from repro.sampling.counters import CostCounters


class KernelScratch:
    """Named scratch buffers, grown once, reused across iterations.

    One instance lives for the duration of a frontier run (one per
    chunk in the parallel executor — never shared across threads) and
    hands out views sized to the current lane set, so the per-iteration
    temporaries of the sampling kernel cost zero allocations after the
    first iteration at peak frontier size.
    """

    __slots__ = ("_bufs",)

    def __init__(self):
        self._bufs: Dict[str, np.ndarray] = {}

    def array(self, name: str, n: int, dtype) -> np.ndarray:
        """An uninitialised view of length ``n`` under ``name``."""
        buf = self._bufs.get(name)
        if buf is None or buf.size < n:
            buf = np.empty(max(int(n), 16), dtype=dtype)
            self._bufs[name] = buf
        return buf[:n]

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._bufs.values())


@dataclass(frozen=True)
class KernelBackend:
    """One implementation of the two compute passes (see module doc)."""

    name: str
    its_select: Callable
    alias_select: Callable
    #: Optional whole-kernel override (the ``legacy`` reference backend
    #: keeps the exact pre-fusion code path this way). When set, the
    #: driver delegates wholesale instead of orchestrating passes.
    sample_override: Optional[Callable] = None


def sample_batch(
    backend: KernelBackend,
    index,
    vs: np.ndarray,
    ss: np.ndarray,
    rng: Optional[np.random.Generator],
    counters: Optional[CostCounters] = None,
    *,
    draw=None,
    lanes: Optional[np.ndarray] = None,
    scratch: Optional[KernelScratch] = None,
) -> np.ndarray:
    """One fused HPAT draw per (vertex, candidate-size) pair.

    The shared driver around a backend's passes: gathers totals, draws
    one uniform block per lane set, runs ``its_select`` /
    ``alias_select``, and accounts costs. Returns per-lane edge indices
    local to each vertex's adjacency; the result is a scratch view —
    valid until the next call on the same ``scratch``.
    """
    n = vs.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    # Backends (the njit passes in particular) see int64 only.
    vs = np.ascontiguousarray(vs, dtype=np.int64)
    ss = np.ascontiguousarray(ss, dtype=np.int64)
    if draw is None:
        draw = GeneratorLanes(rng)
    if lanes is None:
        lanes = np.arange(n, dtype=np.int64)
    if scratch is None:
        scratch = KernelScratch()
    if backend.sample_override is not None:
        return backend.sample_override(index, vs, ss, draw, lanes, counters)

    # -- gather: candidate totals and one uniform per lane ------------------
    cbase = scratch.array("cbase", n, np.int64)
    np.take(index.indptr, vs, out=cbase)
    cbase += vs
    gidx = scratch.array("gidx", n, np.int64)
    np.add(cbase, ss, out=gidx)
    totals = scratch.array("totals", n, np.float64)
    np.take(index.c, gidx, out=totals)
    r = draw.uniform(lanes)
    np.multiply(r, totals, out=r)
    np.subtract(totals, r, out=r)  # draws in (0, total]

    # -- ITS over trunks ----------------------------------------------------
    level = scratch.array("level", n, np.int64)
    offset = scratch.array("offset", n, np.int64)
    level[:] = 0
    offset[:] = 0
    backend.its_select(index.c, cbase, ss, r, level, offset, scratch)

    if counters is not None:
        blocks = _popcount(ss.astype(np.int64))
        probes = np.ceil(np.log2(np.maximum(blocks, 2))).astype(np.int64) + 1
        counters.binary_search_probes += int(probes.sum())
        counters.edges_evaluated += int(probes.sum())

    # -- alias draw inside each selected trunk (level 0 = identity) ---------
    out = scratch.array("out", n, np.int64)
    np.copyto(out, offset)
    deep = np.flatnonzero(level)
    if deep.size:
        u = draw.uniform_block(lanes[deep], 2)
        out_deep = scratch.array("out_deep", deep.size, np.int64)
        backend.alias_select(
            index.prob, index.alias, index.lvl_ptr, index.lvl_base,
            vs[deep], level[deep], offset[deep], u[0], u[1], out_deep,
        )
        out[deep] = out_deep
        if counters is not None:
            counters.alias_draws += int(deep.size)
            counters.edges_evaluated += int(deep.size)
    return out
