"""Optional numba njit backend: per-lane loops, warp-per-walker shape.

Importing this module raises :class:`ImportError` when numba is not
installed; the registry (:mod:`repro.kernels`) catches that and falls
back to the fused numpy backend, so the dependency stays optional.

The passes are the scalar per-lane form of the same algorithm the
numpy backend runs in lockstep — each lane walks its own binary
decomposition in registers, the layout a GPU warp-per-walker sampler
uses. Both consume the *same* pre-drawn uniforms (the driver owns the
RNG), and trunk selection is a pure integer/float comparison chain, so
the njit output is bit-identical to numpy — asserted whenever numba is
present by ``make kernel-smoke`` and the kernel parity tests.

``cache=False``: compilation is lazy and per-process; on-disk caching
would add a writable-directory requirement for no measurable gain on
long-running walk workloads.
"""

from __future__ import annotations

import numpy as np

from numba import njit  # noqa: F401  (ImportError here = backend absent)

from repro.kernels.base import KernelBackend, KernelScratch


@njit(cache=False)
def _its_select_nb(c, cbase, ss, r, level, offset):
    for i in range(ss.size):
        rem = ss[i]
        off = np.int64(0)
        base = cbase[i]
        ri = r[i]
        bits = 0
        tmp = rem
        while tmp > 0:
            bits += 1
            tmp >>= 1
        for k in range(bits - 1, -1, -1):
            block = np.int64(1) << k
            if rem & block:
                if c[base + off + block] >= ri:
                    level[i] = k
                    break
                off += block
                rem -= block
        offset[i] = off


@njit(cache=False)
def _alias_select_nb(prob, alias, lvl_ptr, lvl_base, vs, level, offset,
                     u_cell, u_take, out):
    for i in range(vs.size):
        k = level[i]
        width = np.int64(1) << k
        start = lvl_ptr[lvl_base[vs[i]] + k - 1] + offset[i]
        cell = np.int64(u_cell[i] * width)
        if cell > width - 1:
            cell = width - 1
        if u_take[i] < prob[start + cell]:
            local = cell
        else:
            local = alias[start + cell]
        out[i] = offset[i] + local


def its_select(c, cbase, ss, r, level, offset, scratch: KernelScratch):
    _its_select_nb(c, cbase, ss, r, level, offset)


def alias_select(prob, alias, lvl_ptr, lvl_base, vs, level, offset,
                 u_cell, u_take, out):
    _alias_select_nb(prob, alias, lvl_ptr, lvl_base, vs, level, offset,
                     u_cell, u_take, out)


BACKEND = KernelBackend(
    name="numba", its_select=its_select, alias_select=alias_select
)
