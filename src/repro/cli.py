"""Command-line interface: ``tea-repro`` / ``python -m repro``.

Subcommands
-----------
``info``      — dataset registry and graph statistics.
``generate``  — materialise a synthetic dataset analogue to an edge list.
``walk``      — run a walk workload on a chosen engine and print paths
                or a summary.
``compare``   — run several engines on one dataset/application and print
                the speedup table (a handheld Table 4 cell).
``serve``     — long-lived walk-serving daemon with request batching
                (see ``docs/serving.md``); ``--streaming-app`` /
                ``--wal-dir`` attach a live-ingest lane.
``ingest``    — durably ingest an edge stream into a WAL-backed
                streaming store (see ``docs/streaming.md``).
``recover``   — replay a WAL-backed store, report what survived, and
                optionally compact it into a checkpoint.
``scrub``     — verify every checksum of a persisted out-of-core trunk
                store *or* a streaming WAL directory (auto-detected)
                and locate corruption.

Every :class:`~repro.exceptions.TeaError` raised by a subcommand exits
cleanly (message on stderr, exit code 2) instead of dumping a
traceback — operational failures are expected outcomes, not crashes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.report import format_rows
from repro.bench.runner import run_engines
from repro.engines import (
    BatchTeaEngine,
    BatchTeaOutOfCoreEngine,
    CtdneEngine,
    GraphWalkerEngine,
    KnightKingEngine,
    ParallelBatchTeaEngine,
    TeaEngine,
    TeaOutOfCoreEngine,
    Workload,
)
from repro.engines.tea_outofcore import (
    DEFAULT_OOC_CACHE_BYTES,
    DEFAULT_OOC_TRUNK_SIZE,
)
from repro.benchhistory import DEFAULT_HISTORY_DIR, DEFAULT_THRESHOLD
from repro.exceptions import TeaError
from repro.graph import io as graph_io
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.temporal_graph import TemporalGraph
from repro.walks.apps import APPLICATIONS

ENGINES = {
    "tea": lambda g, s: TeaEngine(g, s),
    "tea-batch": lambda g, s: BatchTeaEngine(g, s),
    "tea-pat": lambda g, s: TeaEngine(g, s, structure="pat"),
    "tea-its": lambda g, s: TeaEngine(g, s, structure="its"),
    "tea-ooc": lambda g, s: TeaOutOfCoreEngine(
        g, s, cache_bytes=DEFAULT_OOC_CACHE_BYTES
    ),
    "tea-ooc-batch": lambda g, s: BatchTeaOutOfCoreEngine(g, s),
    "graphwalker": lambda g, s: GraphWalkerEngine(g, s),
    "graphwalker-ooc": lambda g, s: GraphWalkerEngine(g, s, out_of_core=True),
    "knightking": lambda g, s: KnightKingEngine(g, s, nodes=8),
    "knightking-1node": lambda g, s: KnightKingEngine(g, s, nodes=1),
    "ctdne": lambda g, s: CtdneEngine(g, s),
    "tea-parallel": lambda g, s: ParallelBatchTeaEngine(g, s),
}


def _load_graph(args) -> TemporalGraph:
    if args.input:
        return TemporalGraph.from_stream(graph_io.load_auto(args.input))
    return load_dataset(args.dataset, seed=args.seed, scale=args.scale)


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="growth", choices=sorted(DATASETS))
    parser.add_argument("--input", help="edge-list file instead of a named dataset")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)


def cmd_info(args) -> int:
    if args.dataset or args.input:
        graph = _load_graph(args)
        print(graph)
        degrees = graph.degrees()
        if degrees.size:
            print(f"degree: mean={graph.mean_degree():.2f} max={graph.max_degree()}")
        return 0
    return 0


def cmd_generate(args) -> int:
    spec = DATASETS[args.dataset]
    stream = spec.generate(seed=args.seed, scale=args.scale)
    if args.output.endswith(".tegb"):
        graph_io.save_binary(stream, args.output)
    else:
        graph_io.save_edge_list(stream, args.output)
    print(f"wrote {len(stream)} edges to {args.output}")
    return 0


def cmd_walk(args) -> int:
    from repro.resilience import RetryPolicy, load_fault_injector

    graph = _load_graph(args)
    spec = APPLICATIONS[args.app]
    # Resilience wiring: the injector is shared by every instrumented
    # site of the chosen engine; the retry policy seeds its jitter from
    # the run seed so backoff sequences reproduce too.
    injector = load_fault_injector(args.fault_plan)
    retry_policy = RetryPolicy(max_retries=args.retries, seed=args.seed)
    # --workers selects the chunk-parallel executor; it composes with
    # --chunk-size / --parallel-backend and overrides --engine (the
    # parallel engine runs the tea-batch kernel, so semantics match).
    if args.engine == "tea-parallel" or args.workers:
        engine = ParallelBatchTeaEngine(
            graph, spec, workers=args.workers,
            chunk_size=args.chunk_size, backend=args.parallel_backend,
            retries=args.retries, chunk_timeout=args.chunk_timeout,
            fault_injector=injector,
            warm_pool=args.warm_pool,
            chunk_target_ms=args.chunk_target_ms,
            interleave=args.interleave,
            kernel_backend=args.kernel_backend,
        )
    elif args.engine == "tea-ooc":
        engine = TeaOutOfCoreEngine(
            graph, spec, trunk_size=args.ooc_trunk_size,
            cache_bytes=args.cache_bytes,
            retry_policy=retry_policy,
            verify_checksums=args.verify_checksums,
            fault_injector=injector,
        )
    elif args.engine == "tea-ooc-batch":
        engine = BatchTeaOutOfCoreEngine(
            graph, spec, trunk_size=args.ooc_trunk_size,
            cache_bytes=args.cache_bytes,
            prefetch=args.prefetch == "on",
            retry_policy=retry_policy,
            verify_checksums=args.verify_checksums,
            fault_injector=injector,
            kernel_backend=args.kernel_backend,
        )
    elif args.engine == "tea-batch":
        engine = BatchTeaEngine(graph, spec,
                                kernel_backend=args.kernel_backend)
    else:
        engine = ENGINES[args.engine](graph, spec)
    workload = Workload(
        walks_per_vertex=args.walks_per_vertex,
        max_length=args.length,
        max_walks=args.max_walks,
    )
    from repro.telemetry import (
        EventLog,
        MetricsRegistry,
        PhaseProfiler,
        Tracer,
        format_stats_table,
        to_prometheus,
        write_run_report,
    )
    from repro.telemetry import events as telemetry_events
    from repro.telemetry.clock import now as _now

    registry = MetricsRegistry()
    tracer = Tracer(enabled=True, walk_sample_every=args.trace_sample)
    # One event log per run, installed process-wide so every
    # instrumented layer (and forked pool workers) stamps the same
    # run_id. Installed even without --events-out: the run report's
    # meta carries the run_id either way.
    event_log = EventLog()
    previous_log = telemetry_events.install(event_log)
    profiling = bool(args.profile or args.profile_out)
    profiler = PhaseProfiler() if profiling else None
    if profiler is not None:
        engine.profiler = profiler
    try:
        wall_start = _now()
        result = engine.run(
            workload, seed=args.seed, registry=registry, tracer=tracer
        )
        wall_seconds = _now() - wall_start
    finally:
        telemetry_events.install(previous_log)
        # One CLI invocation = one engine lifetime: release warm pools
        # and the shared-memory image before reporting.
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    report = result.run_report(meta={
        "dataset": args.dataset or args.input,
        "run_id": event_log.run_id,
    })
    if args.stats:
        print(format_stats_table(report))
    else:
        for key, value in result.summary().items():
            print(f"{key}: {value}")
    if profiler is not None:
        print(profiler.format_table(wall_seconds=wall_seconds))
    try:
        if args.trace_out:
            write_run_report(args.trace_out, report)
            print(f"run report -> {args.trace_out}")
        if args.prom_out:
            with open(args.prom_out, "w") as fh:
                fh.write(to_prometheus(registry))
            print(f"prometheus exposition -> {args.prom_out}")
        if args.profile_out:
            with open(args.profile_out, "w") as fh:
                fh.write(profiler.collapsed_stacks())
            print(f"collapsed stacks -> {args.profile_out}")
        if args.events_out:
            count = event_log.write(args.events_out)
            print(f"event log ({count} events, run {event_log.run_id}) "
                  f"-> {args.events_out}")
    except OSError as exc:
        print(f"cannot write telemetry output: {exc}", file=sys.stderr)
        return 1
    if args.show_paths:
        for path in result.paths[: args.show_paths]:
            hops = " -> ".join(
                f"{v}" if t is None else f"{v}@{t:g}" for v, t in path.hops
            )
            print(hops)
    return 0


#: Streaming-capable applications (weight-only; node2vec's Dynamic
#: parameter needs the static adjacency oracle and is rejected by the
#: streaming engine).
STREAM_APPS = ("linear", "exponential", "unbiased", "decay")


def _stream_spec(app: str, scale: Optional[float] = None):
    """Build the weight-only :class:`WalkSpec` for streaming commands."""
    from repro.core.weights import WeightModel
    from repro.walks.apps import (
        DEFAULT_EXP_SCALE,
        exponential_walk,
        linear_walk,
        unbiased_walk,
    )
    from repro.walks.spec import WalkSpec

    if app == "linear":
        return linear_walk()
    if app == "unbiased":
        return unbiased_walk()
    if app == "exponential":
        return exponential_walk(
            scale=scale if scale is not None else DEFAULT_EXP_SCALE
        )
    return WalkSpec(
        name="decay",
        weight_model=WeightModel(
            "exponential_decay",
            scale=scale if scale is not None else DEFAULT_EXP_SCALE,
        ),
    )


def _load_stream(args):
    if args.input:
        return graph_io.load_auto(args.input)
    return DATASETS[args.dataset].generate(seed=args.seed, scale=args.scale)


def cmd_ingest(args) -> int:
    """Durably ingest an edge stream into a WAL-backed streaming store."""
    from repro.streaming import StreamingTeaEngine
    from repro.telemetry.clock import now as _now

    stream = _load_stream(args)
    spec = _stream_spec(args.app, args.exp_scale)
    with StreamingTeaEngine(
        spec, wal_dir=args.wal_dir, group_commit=args.group_commit
    ) as engine:
        if engine.recovered_batches:
            print(f"recovered {engine.recovered_batches} batch(es) "
                  f"({engine.recovered_edges} edges) -> epoch {engine.epoch}")
        t0 = _now()
        if args.batch_size:
            batches = engine.ingest(stream, batch_size=args.batch_size)
        else:
            engine.add_multiple_edges(stream.src, stream.dst, stream.time)
            batches = 1
        engine.wal.sync()
        elapsed = _now() - t0
        rate = len(stream) / max(elapsed, 1e-9)
        print(f"ingested {len(stream)} edges in {batches} batch(es) "
              f"({rate:,.0f} edges/s) -> epoch {engine.epoch}, "
              f"{engine.num_edges} edges total")
        if args.checkpoint:
            manifest = engine.checkpoint()
            print(f"checkpoint: epoch {manifest['epoch']}, "
                  f"{manifest['num_edges']} edges, WAL trimmed to "
                  f"segment {manifest['wal']['segment']}")
    return 0


def cmd_recover(args) -> int:
    """Replay a durable streaming store and report what survived."""
    from pathlib import Path

    from repro.streaming import StreamingTeaEngine

    if not Path(args.wal_dir).is_dir():
        print(f"not a directory: {args.wal_dir}", file=sys.stderr)
        return 2
    spec = _stream_spec(args.app, args.exp_scale)
    with StreamingTeaEngine(spec, wal_dir=args.wal_dir) as engine:
        print(f"{args.wal_dir}: recovered {engine.recovered_batches} "
              f"batch(es), {engine.recovered_edges} edges -> "
              f"epoch {engine.epoch}, {engine.num_edges} edges")
        torn = engine.wal.truncated_tail_bytes
        if torn:
            print(f"torn tail: {torn} byte(s) truncated from the last segment")
        if args.walks:
            starts = engine.active_vertices()[: args.walks]
            paths = engine.run_walks(starts, max_length=args.length,
                                     seed=args.seed)
            hops = sum(p.num_edges for p in paths)
            print(f"verification walks: {len(paths)} walks, {hops} hops")
        if args.checkpoint:
            manifest = engine.checkpoint()
            print(f"checkpoint: epoch {manifest['epoch']}, "
                  f"{manifest['num_edges']} edges, WAL trimmed to "
                  f"segment {manifest['wal']['segment']}")
    return 0


def cmd_stats(args) -> int:
    if args.report:
        from repro.telemetry import format_stats_table, load_run_report

        try:
            report = load_run_report(args.report)
        except OSError as exc:
            print(f"cannot read run report: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(format_stats_table(report))
        return 0
    graph = _load_graph(args)
    from repro.core.weights import WeightModel
    from repro.graph.stats import graph_stats, predict_sampling_costs

    for key, value in graph_stats(graph).snapshot().items():
        print(f"{key}: {value}")
    if args.predict_costs:
        pred = predict_sampling_costs(
            graph, WeightModel("exponential", scale=args.exp_scale)
        )
        print("\nanalytic sampling cost (edges/step, paper Figure 2 model):")
        for key, value in pred.snapshot().items():
            print(f"  {key}: {value}")
    return 0


def cmd_pagerank(args) -> int:
    graph = _load_graph(args)
    from repro.analytics import temporal_pagerank

    sources = args.sources if args.sources else None
    scores = temporal_pagerank(
        graph, sources=sources, alpha=args.alpha,
        num_walks=args.num_walks, seed=args.seed,
    )
    import numpy as np

    top = np.argsort(scores)[::-1][: args.top]
    print(f"temporal {'personalized ' if sources else ''}PageRank (top {args.top}):")
    for v in top:
        print(f"  vertex {v}: {scores[v]:.5f}")
    return 0


def cmd_corpus(args) -> int:
    graph = _load_graph(args)
    spec = APPLICATIONS[args.app]
    engine = ENGINES[args.engine](graph, spec)
    from repro.walks.sink import WalkSink

    workload = Workload(
        walks_per_vertex=args.walks_per_vertex,
        max_length=args.length,
        max_walks=args.max_walks,
    )
    with WalkSink(args.output, flush_threshold=args.flush_threshold) as sink:
        result = engine.run(workload, seed=args.seed, record_paths=False, sink=sink)
    print(
        f"wrote {sink.walks_written} walks ({result.total_steps} hops) "
        f"to {args.output} in {sink.flushes} flushes"
    )
    return 0


def cmd_validate_corpus(args) -> int:
    graph = _load_graph(args)
    from repro.walks.sink import validate_corpus

    count, problems = validate_corpus(graph, args.corpus)
    print(f"{args.corpus}: {count} walks, {len(problems)} problems")
    for index, reason in problems[:20]:
        print(f"  walk {index}: {reason}")
    return 0 if not problems else 1


def cmd_link_predict(args) -> int:
    from repro.embeddings import temporal_link_prediction
    from repro.graph.datasets import DATASETS

    if args.input:
        stream = graph_io.load_auto(args.input)
    else:
        stream = DATASETS[args.dataset].generate(seed=args.seed, scale=args.scale)
    print(f"{'walk spec':14s} {'AUC':>6s}")
    for name in args.apps:
        result = temporal_link_prediction(
            stream, APPLICATIONS[name], dim=args.dim,
            walks_per_vertex=args.walks_per_vertex, epochs=args.epochs,
            seed=args.seed,
        )
        print(f"{name:14s} {result.auc:6.3f}")
    return 0


BENCH_TARGETS = {
    "fig2": "test_fig2_sampling_cost.py",
    "table4": "test_table4_runtime.py",
    "fig9": "test_fig9_memory.py",
    "fig10": "test_fig10_other_engines.py",
    "fig11": "test_fig11_breakdown.py",
    "fig12": "test_fig12_sampling_methods.py",
    "fig13": "test_fig13_construction.py",
    "fig13d": "test_fig13d_incremental.py",
    "fig14": "test_fig14_outofcore.py",
    "ooc-cache": "test_ooc_cache.py",
    "params": "test_param_sensitivity.py",
    "distributed": "test_distributed_scaling.py",
    "batch": "test_batch_executor.py",
    "trunksize": "test_trunk_size_ablation.py",
    "gnn": "test_gnn_sampling.py",
    "scaling": "test_walk_scaling.py",
    "ingest": "test_ingest_throughput.py",
}


def _bench_record(args) -> int:
    """``bench record``: append one normalized record to the history."""
    import json

    from repro import benchhistory

    if not args.bench:
        print("bench record requires --bench NAME", file=sys.stderr)
        return 2
    if not args.metrics:
        print("bench record requires --metrics JSON", file=sys.stderr)
        return 2
    try:
        metrics = json.loads(args.metrics)
    except ValueError as exc:
        print(f"--metrics is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(metrics, dict):
        print("--metrics must be a JSON object of name -> number",
              file=sys.stderr)
        return 2
    try:
        record = benchhistory.make_record(args.bench, metrics)
    except TypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = benchhistory.append_record(record, args.history_dir)
    print(f"recorded {len(metrics)} metric(s) for {args.bench} -> {path}")
    return 0


def _bench_history(args) -> int:
    """``bench history``: print the trend table for one benchmark."""
    from repro import benchhistory

    if not args.bench:
        print("bench history requires --bench NAME", file=sys.stderr)
        return 2
    records = benchhistory.load_history(args.bench, args.history_dir)
    if not records:
        print(f"no history for {args.bench!r} in {args.history_dir}")
        return 1
    print(benchhistory.format_history(records, limit=args.limit))
    return 0


def _bench_compare(args) -> int:
    """``bench compare``: regression-gate latest vs baseline (exit 1)."""
    from repro import benchhistory

    if not args.bench:
        print("bench compare requires --bench NAME", file=sys.stderr)
        return 2
    try:
        result = benchhistory.compare(
            args.bench, args.history_dir,
            baseline_index=args.baseline, threshold=args.threshold,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(benchhistory.format_compare(result))
    return 0 if result["ok"] else 1


def cmd_bench(args) -> int:
    """Run one named paper experiment, or a bench-history verb."""
    import subprocess
    from pathlib import Path

    if args.experiment == "record":
        return _bench_record(args)
    if args.experiment == "history":
        return _bench_history(args)
    if args.experiment == "compare":
        return _bench_compare(args)

    bench_dir = Path(__file__).resolve().parent.parent.parent / "benchmarks"
    target = bench_dir / BENCH_TARGETS[args.experiment]
    if not target.exists():
        print(f"benchmark file not found: {target} (run from a source checkout)")
        return 2
    cmd = [sys.executable, "-m", "pytest", str(target), "--benchmark-only", "-s"]
    print("+ " + " ".join(cmd))
    return subprocess.call(cmd)


def _scrub_wal_dir(directory: str) -> int:
    """WAL-directory arm of ``repro scrub`` (same 0/1/2 exit contract)."""
    from repro.streaming.wal import scrub_wal

    try:
        report = scrub_wal(directory)
    except OSError as exc:
        print(f"cannot open WAL directory: {exc}", file=sys.stderr)
        return 2
    print(f"{report['directory']}: {report['frames_checked']} WAL frame(s) "
          f"in {report['segments']} segment(s) checked")
    manifest = report.get("manifest")
    if manifest is not None:
        state = "ok" if manifest["ok"] else "CORRUPT"
        print(f"  checkpoint manifest: epoch {manifest['epoch']}, "
              f"{manifest['num_edges']} edges — {state}")
    torn = report.get("torn_tail")
    if torn is not None:
        print(f"  torn tail in {torn['file']} at byte {torn['offset_bytes']}: "
              f"{torn['reason']} — repaired on next open, not corruption")
    for rec in report["corrupt"]:
        print(f"  {rec['file']} (byte offset {rec['offset_bytes']}): "
              f"{rec['reason']}")
    if report["clean"]:
        print("clean: all frame and checkpoint checksums match")
        return 0
    print(f"CORRUPT: {len(report['corrupt'])} problem(s) found")
    return 1


def cmd_scrub(args) -> int:
    """Verify a persisted trunk store's (or WAL directory's) checksums."""
    from pathlib import Path

    from repro.core.outofcore import scrub_store

    target = Path(args.directory)
    if (target / "MANIFEST.json").exists() or any(target.glob("wal-*.log")):
        return _scrub_wal_dir(args.directory)
    try:
        report = scrub_store(args.directory)
    except OSError as exc:
        print(f"cannot open trunk store: {exc}", file=sys.stderr)
        return 2
    print(f"{report['directory']}: {report['pages_checked']} pages checked")
    for rec in report["corrupt"]:
        if rec.get("page") is None:
            print(f"  {rec['file']}: {rec['reason']}")
        else:
            print(
                f"  {rec['file']} page {rec['page']} "
                f"(byte offset {rec['offset_bytes']}): "
                f"expected {rec['expected']:#010x}, got {rec['actual']:#010x}"
            )
    if report["clean"]:
        print("clean: all checksums match")
        return 0
    print(f"CORRUPT: {len(report['corrupt'])} problem(s) found")
    return 1


def cmd_compare(args) -> int:
    graph = _load_graph(args)
    spec = APPLICATIONS[args.app]
    engines = {name: ENGINES[name] for name in args.engines}
    workload = Workload(max_length=args.length, max_walks=args.max_walks)
    rows = run_engines(graph, spec, engines, workload, seed=args.seed,
                       dataset=args.dataset, telemetry_dir=args.telemetry_dir)
    print(format_rows(rows, title=f"{args.dataset} / {args.app} ({workload.describe()})"))
    if args.telemetry_dir:
        print(f"per-engine run reports -> {args.telemetry_dir}/")
    return 0


def cmd_serve(args) -> int:
    from repro.resilience import load_fault_injector
    from repro.serve import WalkService
    from repro.telemetry import EventLog
    from repro.telemetry import events as telemetry_events

    graph = _load_graph(args)
    engine_kwargs = {}
    if args.serve_engine == "tea-parallel":
        engine_kwargs = {
            "workers": args.workers,
            "chunk_size": args.chunk_size,
            "backend": args.parallel_backend,
            "retries": args.retries,
            "chunk_timeout": args.chunk_timeout,
            "fault_injector": load_fault_injector(args.fault_plan),
            "chunk_target_ms": args.chunk_target_ms,
            "kernel_backend": args.kernel_backend,
        }
    elif args.serve_engine == "tea-batch":
        engine_kwargs = {"kernel_backend": args.kernel_backend}
    streaming = None
    if args.streaming_app or args.wal_dir:
        from repro.streaming import StreamingTeaEngine

        streaming = StreamingTeaEngine(
            _stream_spec(args.streaming_app or "exponential",
                         args.streaming_scale),
            wal_dir=args.wal_dir,
            group_commit=args.group_commit,
            retain_epochs=args.retain_epochs,
        )
    event_log = EventLog()
    previous_log = telemetry_events.install(event_log)
    service = WalkService(
        graph,
        engine=args.serve_engine,
        engine_kwargs=engine_kwargs,
        max_engines=args.max_engines,
        max_bytes=args.max_bytes,
        queue_depth=args.queue_depth,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        batching=not args.no_batching,
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        streaming=streaming,
    )
    try:
        service.start()
        print(f"serving on http://{service.host}:{service.port} "
              f"(engine={args.serve_engine}, "
              f"batching={'off' if args.no_batching else 'on'})")
        print("endpoints: POST /walk /recommend /gnn/sample · "
              "GET /healthz /metrics /stats — Ctrl-C to stop")
        if streaming is not None:
            durable = "durable" if streaming.durable else "in-memory"
            print(f"streaming: POST /stream/ingest /stream/walk "
                  f"/stream/recommend · GET /stream/epoch "
                  f"(epoch {streaming.epoch}, {durable})")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\nshutting down ...")
    finally:
        clean = service.close(timeout=10.0)
        telemetry_events.install(previous_log)
        if args.events_out:
            count = event_log.write(args.events_out)
            print(f"event log ({count} events) -> {args.events_out}")
    print(f"shutdown {'clean' if clean else 'TIMED OUT'}")
    return 0 if clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tea-repro",
        description="TEA temporal graph random walk engine (EuroSys '23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="dataset registry / graph statistics")
    _add_graph_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("generate", help="write a synthetic dataset to disk")
    _add_graph_args(p)
    p.add_argument("output")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("walk", help="run a walk workload")
    _add_graph_args(p)
    p.add_argument("--app", default="node2vec", choices=sorted(APPLICATIONS))
    p.add_argument("--engine", default="tea", choices=sorted(ENGINES))
    p.add_argument("--length", type=int, default=80)
    p.add_argument("--walks-per-vertex", type=int, default=1)
    p.add_argument("--max-walks", type=int, default=None)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="run chunk-parallel with N workers "
                        "(implies --engine tea-parallel)")
    p.add_argument("--chunk-size", type=int, default=None, metavar="M",
                   help="start vertices per work-queue chunk (default: "
                        "adaptive, sized to --chunk-target-ms of work)")
    p.add_argument("--chunk-target-ms", type=float, default=None,
                   metavar="MS",
                   help="work per chunk the adaptive planner targets "
                        "(default 75; ignored with --chunk-size)")
    p.add_argument("--parallel-backend", default="auto",
                   choices=["auto", "process", "thread", "serial"],
                   help="worker pool type for tea-parallel")
    p.add_argument("--warm-pool", dest="warm_pool", action="store_true",
                   default=True,
                   help="keep worker pools alive across runs (default)")
    p.add_argument("--no-warm-pool", dest="warm_pool", action="store_false",
                   help="tear pools down after every run (cold-start "
                        "comparison mode)")
    p.add_argument("--kernel-backend", default="auto",
                   choices=["auto", "numpy", "numba"],
                   help="sampling-kernel implementation for the batch "
                        "engines (auto prefers numba when installed; an "
                        "explicit numba request without numba falls back "
                        "to numpy)")
    p.add_argument("--interleave", type=int, default=1, metavar="K",
                   help="walker cohorts per chunk advanced round-robin "
                        "inside each worker (1 disables; output is "
                        "bit-identical either way)")
    p.add_argument("--cache-bytes", type=int, default=DEFAULT_OOC_CACHE_BYTES,
                   metavar="B",
                   help="re-entry cache budget for the out-of-core engines "
                        "(0 disables caching)")
    p.add_argument("--ooc-trunk-size", type=int,
                   default=DEFAULT_OOC_TRUNK_SIZE, metavar="T",
                   help="trunk size for the out-of-core PAT spill")
    p.add_argument("--prefetch", default="on", choices=["on", "off"],
                   help="async trunk prefetch for tea-ooc-batch")
    p.add_argument("--retries", type=int, default=2, metavar="R",
                   help="retry budget: transient I/O retries per read and "
                        "re-executions per failed parallel chunk")
    p.add_argument("--chunk-timeout", type=float, default=None, metavar="S",
                   help="seconds before a parallel chunk is declared hung "
                        "and requeued (default: no watchdog)")
    p.add_argument("--verify-checksums", action="store_true",
                   help="verify per-page CRC32 checksums on every "
                        "out-of-core trunk read")
    p.add_argument("--fault-plan", metavar="PLAN",
                   help="chaos testing: JSON fault plan (inline or a file "
                        "path) injected into the engine's risky layers")
    p.add_argument("--show-paths", type=int, default=0)
    p.add_argument("--stats", action="store_true",
                   help="print the full telemetry table instead of the summary")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the schema-versioned JSON run report here")
    p.add_argument("--trace-sample", type=int, default=16, metavar="N",
                   help="trace 1 in N walks with per-step spans (0 disables)")
    p.add_argument("--prom-out", metavar="PATH",
                   help="write Prometheus text exposition here")
    p.add_argument("--profile", action="store_true",
                   help="phase-profile the run and print the cost table "
                        "(gather/draw/scatter, ooc read/decode/cache, ...)")
    p.add_argument("--profile-out", metavar="PATH",
                   help="write flamegraph-compatible collapsed stacks here "
                        "(implies --profile)")
    p.add_argument("--events-out", metavar="PATH",
                   help="write the structured JSONL event log here "
                        "(retries, degradations, evictions, ... with run_id)")
    p.set_defaults(fn=cmd_walk)

    p = sub.add_parser("serve", help="walk-serving daemon (see docs/serving.md)")
    _add_graph_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8214,
                   help="listen port (0 picks a free one)")
    p.add_argument("--engine", dest="serve_engine", default="tea-batch",
                   choices=["tea", "tea-batch", "tea-parallel"],
                   help="engine kind built per cached (window, weights) entry")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="tea-parallel: pool worker count")
    p.add_argument("--parallel-backend", default="auto",
                   choices=["auto", "process", "thread", "serial"])
    p.add_argument("--chunk-size", type=int, default=None, metavar="M")
    p.add_argument("--chunk-target-ms", type=float, default=None)
    p.add_argument("--kernel-backend", default="auto",
                   choices=["auto", "numpy", "numba"])
    p.add_argument("--retries", type=int, default=2, metavar="R",
                   help="tea-parallel: chunk retry budget")
    p.add_argument("--chunk-timeout", type=float, default=None, metavar="S")
    p.add_argument("--fault-plan", metavar="PLAN",
                   help="chaos testing: JSON fault plan injected under the server")
    p.add_argument("--max-engines", type=int, default=8,
                   help="prepared-engine LRU capacity")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="resident-index byte budget for the engine LRU")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission bound: parked requests before 429")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="linger window for coalescing concurrent requests")
    p.add_argument("--max-batch", type=int, default=64,
                   help="max requests coalesced into one frontier run")
    p.add_argument("--no-batching", action="store_true",
                   help="serve each request as its own frontier run")
    p.add_argument("--request-timeout", type=float, default=60.0)
    p.add_argument("--streaming-app", default=None, choices=STREAM_APPS,
                   help="attach a live-ingest lane (/stream/* endpoints) "
                        "running this weight-only application")
    p.add_argument("--streaming-scale", type=float, default=None,
                   help="weight-model scale for the streaming application")
    p.add_argument("--wal-dir", metavar="DIR",
                   help="durable streaming: write-ahead log + checkpoint "
                        "directory (implies --streaming-app exponential; "
                        "recovers existing state on startup)")
    p.add_argument("--group-commit", type=int, default=8, metavar="N",
                   help="WAL fsync barrier every N appended batches")
    p.add_argument("--retain-epochs", type=int, default=4, metavar="K",
                   help="recent epoch views pinnable by id via /stream/walk")
    p.add_argument("--events-out", metavar="PATH",
                   help="write the structured event log as JSONL on shutdown")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "ingest", help="durably ingest an edge stream (see docs/streaming.md)"
    )
    _add_graph_args(p)
    p.add_argument("wal_dir", help="WAL + checkpoint directory (created if "
                                   "missing; recovered first if not empty)")
    p.add_argument("--app", default="exponential", choices=STREAM_APPS)
    p.add_argument("--exp-scale", type=float, default=None,
                   help="weight-model scale (default: the app's default)")
    p.add_argument("--batch-size", type=int, default=0, metavar="B",
                   help="ingest in B-edge batches instead of one bulk "
                        "add_multiple_edges call")
    p.add_argument("--group-commit", type=int, default=8, metavar="N",
                   help="WAL fsync barrier every N appended batches")
    p.add_argument("--checkpoint", action="store_true",
                   help="write a checkpoint and trim the WAL afterwards")
    p.set_defaults(fn=cmd_ingest)

    p = sub.add_parser(
        "recover", help="replay a durable streaming store and report"
    )
    p.add_argument("wal_dir", help="WAL + checkpoint directory to recover")
    p.add_argument("--app", default="exponential", choices=STREAM_APPS)
    p.add_argument("--exp-scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--walks", type=int, default=0, metavar="N",
                   help="run N verification walks on the recovered store")
    p.add_argument("--length", type=int, default=20,
                   help="max length of the verification walks")
    p.add_argument("--checkpoint", action="store_true",
                   help="compact: write a checkpoint and trim the WAL")
    p.set_defaults(fn=cmd_recover)

    p = sub.add_parser("bench", help="run one paper experiment or query history")
    p.add_argument("experiment",
                   choices=sorted(BENCH_TARGETS) + ["record", "history", "compare"],
                   help="a paper experiment to run, or a history verb: "
                        "record (append --metrics JSON), history (trend "
                        "table), compare (regression gate, exit 1)")
    p.add_argument("--bench", metavar="NAME",
                   help="benchmark name for record/history/compare")
    p.add_argument("--metrics", metavar="JSON",
                   help="flat JSON object of metric -> number (record)")
    p.add_argument("--history-dir", default=str(DEFAULT_HISTORY_DIR),
                   metavar="DIR",
                   help="bench-history store (default bench_results/history)")
    p.add_argument("--baseline", type=int, default=None, metavar="I",
                   help="history record index to compare against "
                        "(default -2: the previous run; negatives count "
                        "from the end)")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   metavar="F",
                   help="relative regression gate for compare (default 0.10)")
    p.add_argument("--limit", type=int, default=10,
                   help="rows in the history trend table")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("corpus", help="generate a walk corpus to disk")
    _add_graph_args(p)
    p.add_argument("output", help="corpus path (.txt or .twalks)")
    p.add_argument("--app", default="exponential", choices=sorted(APPLICATIONS))
    p.add_argument("--engine", default="tea-batch", choices=sorted(ENGINES))
    p.add_argument("--length", type=int, default=80)
    p.add_argument("--walks-per-vertex", type=int, default=1)
    p.add_argument("--max-walks", type=int, default=None)
    p.add_argument("--flush-threshold", type=int, default=1024)
    p.set_defaults(fn=cmd_corpus)

    p = sub.add_parser("validate-corpus", help="check a corpus against a graph")
    _add_graph_args(p)
    p.add_argument("corpus")
    p.set_defaults(fn=cmd_validate_corpus)

    p = sub.add_parser("link-predict", help="temporal link-prediction AUC")
    _add_graph_args(p)
    p.add_argument("--apps", nargs="+", default=["unbiased", "exponential"],
                   choices=sorted(APPLICATIONS))
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--walks-per-vertex", type=int, default=4)
    p.add_argument("--epochs", type=int, default=3)
    p.set_defaults(fn=cmd_link_predict)

    p = sub.add_parser("stats", help="graph statistics + analytic cost model")
    _add_graph_args(p)
    p.add_argument("--predict-costs", action="store_true")
    p.add_argument("--exp-scale", type=float, default=6.0)
    p.add_argument("--report", metavar="PATH",
                   help="replay a saved JSON run report instead of graph stats")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("pagerank", help="temporal (personalized) PageRank")
    _add_graph_args(p)
    p.add_argument("--sources", type=int, nargs="*", default=None)
    p.add_argument("--alpha", type=float, default=0.15)
    p.add_argument("--num-walks", type=int, default=2000)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(fn=cmd_pagerank)

    p = sub.add_parser(
        "scrub", help="verify checksums of a trunk store or WAL directory"
    )
    p.add_argument("directory",
                   help="trunk store (c.bin etc.) or streaming WAL "
                        "directory (wal-*.log / MANIFEST.json) — detected "
                        "automatically")
    p.set_defaults(fn=cmd_scrub)

    p = sub.add_parser("compare", help="run several engines and tabulate")
    _add_graph_args(p)
    p.add_argument("--app", default="node2vec", choices=sorted(APPLICATIONS))
    p.add_argument(
        "--engines", nargs="+", default=["tea", "graphwalker", "knightking"],
        choices=sorted(ENGINES),
    )
    p.add_argument("--length", type=int, default=80)
    p.add_argument("--max-walks", type=int, default=200)
    p.add_argument("--telemetry-dir", metavar="DIR",
                   help="write one JSON run report per engine into DIR")
    p.set_defaults(fn=cmd_compare)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except TeaError as exc:
        # Operational failures (bad fault plan, corrupt store, exhausted
        # retry budget, ...) are expected outcomes of a CLI run: report
        # them cleanly instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
