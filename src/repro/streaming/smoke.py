"""Ingest smoke: durable streaming invariants, end to end, in seconds.

``python -m repro.streaming.smoke`` is the Makefile's ``ingest-smoke``
gate (the durable-ingest ISSUE's acceptance criteria, executable):

* **Bulk equivalence** — ``add_multiple_edges`` over whole columns must
  produce the same index state and bit-identical walks as the same
  edges applied through ``apply_batch``, and must be meaningfully
  faster than a per-edge apply loop (the full ≥5x bar lives in
  ``benchmarks/test_ingest_throughput.py``; the smoke asserts >2x so a
  regression can't hide between bench runs).
* **Durability roundtrip** — a WAL-backed engine closed and reopened
  recovers the identical epoch and walks bit-identical to the original,
  before and after a checkpoint trims the log.
* **Epoch isolation** — walks pinned to epoch N return byte-identical
  results while later epochs ingest, and the current view advances.
* **Scrub contract** — ``scrub_wal`` reports the log and checkpoint
  clean after all of the above.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np


def _smoke_spec():
    from repro.walks.apps import exponential_walk

    return exponential_walk(scale=20.0)


def _decay_spec():
    # Bit-identity across different batchings needs the factorized decay
    # forest (batch-boundary-canonical); growth-kind carry forests only
    # promise distribution equivalence across batchings.
    from repro.walks.spec import WalkSpec, WeightModel

    return WalkSpec(
        name="ingest-decay",
        weight_model=WeightModel("exponential_decay", scale=20.0),
    )


def _smoke_stream():
    from repro.graph.generators import temporal_powerlaw

    return temporal_powerlaw(
        num_vertices=60, num_edges=1200, seed=13, time_horizon=80.0
    )


def bulk_equivalence_smoke(verbose: bool) -> dict:
    """Bulk columns == batched stream, and clearly faster than per-edge."""
    from repro.streaming.batch import StreamingTeaEngine

    stream = _smoke_stream()
    spec = _decay_spec()

    bulk = StreamingTeaEngine(spec)
    t0 = time.perf_counter()
    out = bulk.add_multiple_edges(stream.src, stream.dst, stream.time)
    bulk_seconds = time.perf_counter() - t0
    assert out["edges"] == len(stream) and bulk.num_edges == len(stream)

    batched = StreamingTeaEngine(spec)
    batched.ingest(stream, batch_size=200)
    starts = bulk.active_vertices()[:12]
    bulk_walks = [w.hops for w in bulk.run_walks(starts, max_length=15, seed=2)]
    # The factorized decay forest is batch-boundary-canonical, so the
    # bulk index and the batched index must walk identically.
    batched_walks = [
        w.hops for w in batched.run_walks(starts, max_length=15, seed=2)
    ]
    assert bulk_walks == batched_walks, (
        "ingest smoke: bulk and batched ingest walked differently"
    )

    per_edge = StreamingTeaEngine(spec)
    t0 = time.perf_counter()
    for i in range(len(stream)):
        per_edge.apply_batch(stream[i : i + 1])
    edge_seconds = time.perf_counter() - t0
    speedup = edge_seconds / max(bulk_seconds, 1e-9)
    assert speedup > 2.0, (
        f"ingest smoke: bulk path only {speedup:.1f}x over per-edge apply "
        f"(bulk {bulk_seconds * 1e3:.1f} ms, per-edge {edge_seconds * 1e3:.1f} ms)"
    )
    return {"bulk_speedup": round(speedup, 1),
            "bulk_edges_per_sec": int(len(stream) / max(bulk_seconds, 1e-9))}


def durability_smoke(verbose: bool) -> dict:
    """Close/reopen recovers identical walks, through a checkpoint too."""
    from repro.streaming.batch import StreamingTeaEngine

    stream = _smoke_stream()
    spec = _smoke_spec()
    with tempfile.TemporaryDirectory(prefix="tea-ingest-") as tmp:
        wal_dir = Path(tmp) / "wal"
        with StreamingTeaEngine(spec, wal_dir=wal_dir, group_commit=8) as eng:
            eng.ingest(stream, batch_size=150)
            epoch = eng.epoch
            starts = eng.active_vertices()[:12]
            want = [w.hops for w in eng.run_walks(starts, max_length=15, seed=4)]
        with StreamingTeaEngine(spec, wal_dir=wal_dir) as recovered:
            assert recovered.epoch == epoch, (
                f"ingest smoke: recovered epoch {recovered.epoch} != {epoch}"
            )
            got = [w.hops for w in
                   recovered.run_walks(starts, max_length=15, seed=4)]
            assert got == want, "ingest smoke: recovery diverged"
            manifest = recovered.checkpoint()
        with StreamingTeaEngine(spec, wal_dir=wal_dir) as again:
            got = [w.hops for w in again.run_walks(starts, max_length=15, seed=4)]
            assert got == want, "ingest smoke: post-checkpoint recovery diverged"
        return {"recovered_epoch": int(epoch),
                "checkpoint_edges": int(manifest["num_edges"])}


def isolation_smoke(verbose: bool) -> dict:
    """Pinned-epoch walks are byte-stable under concurrent ingest."""
    from repro.streaming.batch import StreamingTeaEngine

    stream = _smoke_stream()
    spec = _smoke_spec()
    engine = StreamingTeaEngine(spec, retain_epochs=8)
    half = len(stream) // 2
    engine.apply_batch(stream[:half])
    pinned = engine.pin()
    starts = pinned.active_vertices()[:12]
    before = [w.hops for w in pinned.run_walks(starts, max_length=15, seed=6)]
    for batch in stream[half:].batches(100):
        engine.apply_batch(batch)
    after = [w.hops for w in pinned.run_walks(starts, max_length=15, seed=6)]
    assert before == after, (
        "ingest smoke: pinned epoch changed under concurrent ingest"
    )
    current = engine.pin()
    assert current.epoch > pinned.epoch and current.num_edges == len(stream)
    live = [w.hops for w in current.run_walks(starts, max_length=15, seed=6)]
    assert live != before, (
        "ingest smoke: current epoch did not observe the new edges"
    )
    return {"pinned_epoch": int(pinned.epoch),
            "current_epoch": int(current.epoch)}


def scrub_smoke(verbose: bool) -> dict:
    """scrub_wal reports a healthy store clean, with a manifest attached."""
    from repro.streaming.batch import StreamingTeaEngine
    from repro.streaming.wal import scrub_wal

    stream = _smoke_stream()
    spec = _smoke_spec()
    with tempfile.TemporaryDirectory(prefix="tea-scrub-") as tmp:
        with StreamingTeaEngine(spec, wal_dir=tmp) as eng:
            eng.ingest(stream, batch_size=300)
            eng.checkpoint()
            eng.apply_batch(stream[0:0])
        report = scrub_wal(tmp)
        assert report["clean"], f"ingest smoke: scrub found {report['corrupt']}"
        assert report.get("manifest", {}).get("ok"), (
            "ingest smoke: scrub did not validate the checkpoint manifest"
        )
        return {"scrub_frames": int(report["frames_checked"]),
                "scrub_segments": int(report["segments"])}


SMOKES = (
    ("bulk_equivalence", bulk_equivalence_smoke),
    ("durability", durability_smoke),
    ("isolation", isolation_smoke),
    ("scrub", scrub_smoke),
)


def ingest_smoke(verbose: bool = True) -> dict:
    """Run every ingest gate; raises ``AssertionError`` on violation."""
    summary: dict = {}
    for name, fn in SMOKES:
        summary.update(fn(verbose))
        if verbose:
            print(f"  {name}: ok")
    if verbose:
        print("ingest smoke")
        for key, value in summary.items():
            print(f"  {key}: {value}")
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="durable streaming ingest smoke gates"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    ingest_smoke(verbose=not args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
