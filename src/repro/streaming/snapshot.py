"""Epoch snapshots and checkpoint manifests for streaming ingest.

Two jobs live here, both about serving reads against a *stable*
version of the stream (the TVA blueprint in PAPERS.md):

**Epoch views.** Every applied batch advances the engine's epoch and
publishes an immutable :class:`EpochView` — a copy-on-write capture of
the incremental index. Vertices untouched since the previous epoch
share their frozen view object with it; touched vertices get a fresh
O(num_blocks) pin (immutable blocks / append-only radix buckets make
that a shallow capture — see ``VertexIncrementalHPAT.view`` and
``DecayRadixForest.view``). A walk that pins epoch N is bit-identical
whether ingest is idle or mid-batch for epoch N+1, because nothing the
view references ever mutates.

**Checkpoint manifests.** Replaying a WAL from the beginning costs
O(total batches ever ingested) in disk scanning; a checkpoint bounds
that by persisting the full durable edge history as compact columns
(``checkpoint-<epoch>.bin``: magic, edge/batch counts, src/dst/time
arrays, batch-size array) plus an atomically renamed ``MANIFEST.json``
recording the checkpoint's CRC32, its epoch, and the WAL position it
covers. The batch-size column matters for bit-identity: the carry
forest's block structure depends on the exact batch boundaries the
edges arrived in, so recovery replays the checkpoint *batch by batch*
— reproducing the identical index a never-crashed engine holds — then
replays only WAL records at or after the manifest position; segments
before it are trimmed. Manifest writes are crash-safe by construction:
checkpoint tmp → fsync → rename → manifest tmp → fsync → rename →
directory fsync, so a crash leaves either the old (manifest,
checkpoint) pair or the new one, never a torn hybrid. A CRC mismatch
on load therefore means real disk corruption (the WAL prefix it
covered has been trimmed), and recovery raises rather than guessing.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ChecksumError, EmptyCandidateSetError
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.telemetry import events
from repro.walks.walker import Walker, WalkPath

#: Schema stamp for the checkpoint manifest.
MANIFEST_SCHEMA = "tea-repro/streaming-checkpoint/v1"
MANIFEST_NAME = "MANIFEST.json"
CHECKPOINT_MAGIC = b"TEACKPT1"


# ---------------------------------------------------------------------------
# Epoch views
# ---------------------------------------------------------------------------


class EpochView:
    """An immutable, walkable capture of the streaming index at one epoch.

    Holds frozen per-vertex views (shared with neighbouring epochs for
    untouched vertices) and answers the same read API as the live
    engine: candidate counts, weighted prefix sampling, and whole
    temporal walks. Safe to use from any thread while ingest proceeds.
    """

    __slots__ = ("epoch", "num_edges", "_vertices")

    def __init__(self, epoch: int, num_edges: int, vertices: Dict[int, object]):
        self.epoch = int(epoch)
        self.num_edges = int(num_edges)
        self._vertices = vertices

    @classmethod
    def capture(cls, epoch: int, index, previous: Optional["EpochView"] = None,
                ) -> "EpochView":
        """Freeze ``index`` (an ``IncrementalHPAT``) as of now.

        Copy-on-write against ``previous``: only vertices in the
        index's dirty set since the last capture are re-pinned; the
        rest alias the previous epoch's frozen objects.
        """
        if previous is None:
            vertices = {v: vert.view() for v, vert in index.vertices.items()}
        else:
            vertices = dict(previous._vertices)
            for v in index.dirty_vertices():
                vert = index.vertices.get(v)
                if vert is None:
                    vertices.pop(v, None)
                else:
                    vertices[v] = vert.view()
        index.clear_dirty()
        return cls(epoch, index.num_edges, vertices)

    # -- reads -------------------------------------------------------------

    def active_vertices(self) -> List[int]:
        return sorted(self._vertices)

    def candidate_count(self, v: int, t: Optional[float]) -> int:
        vert = self._vertices.get(v)
        return vert.candidate_count(t) if vert is not None else 0

    def sample(self, v: int, candidate_size: int, rng,
               counters: Optional[CostCounters] = None) -> Tuple[int, float]:
        vert = self._vertices.get(v)
        if vert is None:
            raise EmptyCandidateSetError(f"vertex {v} has no out-edges")
        return vert.sample(candidate_size, rng, counters)

    def walk(self, start: int, max_length: int, seed: RngLike = None,
             counters: Optional[CostCounters] = None) -> WalkPath:
        """One temporal walk over exactly this epoch's edges."""
        rng = make_rng(seed)
        return walk_index(self, int(start), int(max_length), rng, counters)

    def run_walks(self, starts, max_length: int = 80, seed: RngLike = 0,
                  counters: Optional[CostCounters] = None) -> List[WalkPath]:
        """Walks from each start, sharing one RNG stream (engine parity)."""
        rng = make_rng(seed)
        return [
            walk_index(self, int(u), int(max_length), rng, counters)
            for u in np.asarray(starts)
        ]

    def nbytes(self) -> int:
        return sum(v.nbytes() for v in self._vertices.values())

    def __repr__(self) -> str:
        return (f"EpochView(epoch={self.epoch}, |E|={self.num_edges}, "
                f"|V|={len(self._vertices)})")


def walk_index(index, start: int, max_length: int, rng,
               counters: Optional[CostCounters] = None) -> WalkPath:
    """The streaming temporal-walk loop over any candidate/sample index.

    Shared by the live engine and frozen epoch views so the two can
    never drift: same candidate queries, same RNG call sequence.
    """
    walker = Walker(int(start))
    v = walker.start_vertex
    while walker.num_edges < max_length:
        s = index.candidate_count(v, walker.current_time)
        if s <= 0:
            break
        if counters is not None:
            counters.record_step()
        v2, t2 = index.sample(v, s, rng, counters)
        walker.advance(v2, t2)
        v = v2
    return walker.finish()


# ---------------------------------------------------------------------------
# Checkpoint manifests
# ---------------------------------------------------------------------------


def checkpoint_name(epoch: int) -> str:
    return f"checkpoint-{epoch:08d}.bin"


def _fsync_directory(directory: Path) -> None:
    """Make a rename durable (POSIX: fsync the containing directory)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-fsync
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_checkpoint(directory, src, dst, times, batch_sizes, epoch: int,
                     wal_position: Tuple[int, int],
                     fault_injector=None) -> dict:
    """Persist the full edge history + manifest; returns the manifest.

    The checkpoint body is columnar (``u64 n``, ``u64 k``, then int64
    src, int64 dst, float64 time, int64 batch sizes — the ``k`` batch
    lengths summing to ``n``, preserving the original batch
    boundaries); its CRC32 goes into the manifest, not the file, so a
    torn body and a stale manifest can never agree. Write order is the
    crash-safe one: checkpoint tmp → fsync → rename → manifest tmp →
    fsync → rename → directory fsync.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if fault_injector is not None:
        fault_injector.check("checkpoint_write")
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    times = np.ascontiguousarray(times, dtype=np.float64)
    batch_sizes = np.ascontiguousarray(batch_sizes, dtype=np.int64)
    if int(batch_sizes.sum()) != int(src.size):
        raise ValueError(
            f"batch_sizes sum to {int(batch_sizes.sum())}, expected "
            f"{int(src.size)} edges"
        )
    payload = b"".join((
        struct.pack("<QQ", src.size, batch_sizes.size),
        src.tobytes(), dst.tobytes(), times.tobytes(),
        batch_sizes.tobytes(),
    ))
    crc = zlib.crc32(payload)
    name = checkpoint_name(epoch)
    tmp = directory / (name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(CHECKPOINT_MAGIC)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, directory / name)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "epoch": int(epoch),
        "num_edges": int(src.size),
        "num_batches": int(batch_sizes.size),
        "checkpoint": name,
        "checkpoint_crc": int(crc),
        "checkpoint_bytes": len(CHECKPOINT_MAGIC) + len(payload),
        "wal": {"segment": int(wal_position[0]), "offset": int(wal_position[1])},
    }
    mtmp = directory / (MANIFEST_NAME + ".tmp")
    with open(mtmp, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(mtmp, directory / MANIFEST_NAME)
    _fsync_directory(directory)
    events.emit("checkpoint.write", epoch=int(epoch),
                num_edges=int(src.size),
                checkpoint_bytes=int(manifest["checkpoint_bytes"]))
    return manifest


def load_manifest(directory) -> Optional[dict]:
    """The current manifest, or ``None`` when no checkpoint exists."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text())
    except ValueError as exc:
        raise ChecksumError(f"checkpoint manifest is not valid JSON: {exc}",
                            path=path)
    required = {"schema", "epoch", "num_edges", "num_batches", "checkpoint",
                "checkpoint_crc", "checkpoint_bytes", "wal"}
    missing = required - set(manifest)
    if missing:
        raise ChecksumError(
            f"checkpoint manifest missing fields: {sorted(missing)}",
            path=path,
        )
    return manifest


def load_checkpoint(directory) -> Optional[
        Tuple[dict, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Load and CRC-verify the checkpoint; ``None`` when absent.

    Returns ``(manifest, src, dst, times, batch_sizes)``. Raises
    :class:`~repro.exceptions.ChecksumError` when the manifest and the
    checkpoint body disagree (bit rot, a stale manifest): the WAL
    prefix the checkpoint covered has been trimmed, so there is no
    safe fallback and recovery must surface the corruption.
    """
    directory = Path(directory)
    manifest = load_manifest(directory)
    if manifest is None:
        return None
    path = directory / manifest["checkpoint"]
    if not path.exists():
        raise ChecksumError(
            f"manifest references missing checkpoint {manifest['checkpoint']}",
            path=path,
        )
    data = path.read_bytes()
    if len(data) != manifest["checkpoint_bytes"]:
        raise ChecksumError(
            f"checkpoint {path.name}: {len(data)} bytes on disk, manifest "
            f"says {manifest['checkpoint_bytes']}",
            path=path,
        )
    if data[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise ChecksumError(f"checkpoint {path.name}: bad magic", path=path)
    payload = data[len(CHECKPOINT_MAGIC):]
    actual = zlib.crc32(payload)
    if actual != manifest["checkpoint_crc"]:
        raise ChecksumError(
            f"checkpoint {path.name}: CRC mismatch",
            path=path, expected=manifest["checkpoint_crc"], actual=actual,
        )
    n, k = struct.unpack_from("<QQ", payload, 0)
    expect = 16 + n * 24 + k * 8
    if len(payload) != expect:
        raise ChecksumError(
            f"checkpoint {path.name}: {n} edges / {k} batches need {expect} "
            f"payload bytes, found {len(payload)}",
            path=path,
        )
    off = 16
    src = np.frombuffer(payload, dtype=np.int64, count=n, offset=off)
    off += 8 * n
    dst = np.frombuffer(payload, dtype=np.int64, count=n, offset=off)
    off += 8 * n
    times = np.frombuffer(payload, dtype=np.float64, count=n, offset=off)
    off += 8 * n
    batch_sizes = np.frombuffer(payload, dtype=np.int64, count=k, offset=off)
    if int(batch_sizes.sum()) != int(n):
        raise ChecksumError(
            f"checkpoint {path.name}: batch sizes sum to "
            f"{int(batch_sizes.sum())}, expected {n}",
            path=path,
        )
    return manifest, src, dst, times, batch_sizes


def verify_checkpoint(directory) -> Optional[dict]:
    """Scrub helper: manifest + checkpoint integrity as a report dict.

    Returns ``None`` when the directory has no manifest; otherwise a
    dict with ``ok`` and a ``corrupt`` list shaped like the trunk-store
    scrub records.
    """
    directory = Path(directory)
    if not (directory / MANIFEST_NAME).exists():
        return None
    corrupt: List[dict] = []
    manifest = None
    try:
        loaded = load_checkpoint(directory)
        if loaded is not None:
            manifest = loaded[0]
    except ChecksumError as exc:
        corrupt.append({
            "file": Path(exc.path).name if exc.path else MANIFEST_NAME,
            "page": None, "offset_bytes": 0, "reason": str(exc),
        })
    return {
        "ok": not corrupt,
        "epoch": None if manifest is None else manifest["epoch"],
        "num_edges": None if manifest is None else manifest["num_edges"],
        "corrupt": corrupt,
    }
