"""Streaming graph support (paper Section 3.5) with durable ingest.

:class:`StreamingTeaEngine` is the front door; :mod:`repro.streaming.wal`
and :mod:`repro.streaming.snapshot` hold the write-ahead log and the
epoch-view / checkpoint machinery underneath it.
"""

from repro.streaming.batch import StreamingTeaEngine
from repro.streaming.snapshot import (
    EpochView,
    load_checkpoint,
    load_manifest,
    verify_checkpoint,
    write_checkpoint,
)
from repro.streaming.wal import WriteAheadLog, scrub_wal

__all__ = [
    "StreamingTeaEngine",
    "EpochView",
    "WriteAheadLog",
    "scrub_wal",
    "write_checkpoint",
    "load_checkpoint",
    "load_manifest",
    "verify_checkpoint",
]
