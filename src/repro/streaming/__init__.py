"""Streaming graph support (paper Section 3.5)."""

from repro.streaming.batch import StreamingTeaEngine

__all__ = ["StreamingTeaEngine"]
