"""Write-ahead log for streaming edge batches.

Durability for the streaming engine is a classic WAL: every accepted
edge batch is serialised as one CRC32-framed record appended to a
segment file, so a crashed process (``os._exit`` at any instruction)
can be recovered to exactly the durable prefix of its ingest history.
The design points:

* **Framing.** Each record is ``[u32 length][u32 crc][kind + payload]``
  (little-endian); ``crc`` covers the body (kind byte + payload) and
  ``length`` counts it. A record is *durable* iff every byte of it
  reached the log; a partial tail — torn by a crash mid-``write`` — is
  detected on replay by a short header, an out-of-range length, or a
  CRC mismatch, and truncated away (the torn batch was never
  acknowledged as durable, so dropping it is the correct outcome).
* **Segments.** Records append to ``wal-<seq>.log`` files, rotated once
  a segment exceeds ``segment_bytes``. Rotation bounds the cost of a
  checkpoint trim (whole old segments are unlinked) and keeps replay
  I/O sequential. Every segment starts with an 8-byte magic header.
* **Group commit.** Appends always ``flush()`` (so an ``os._exit``
  crash of *this process* loses nothing the OS already has), but
  ``fsync`` — the machine-crash barrier — is batched: one fsync per
  ``group_commit`` appends, amortising the dominant durability cost
  across a burst of batches. ``sync()`` forces the barrier.
* **Torn-tail truncation.** Only the *last* segment may end in a torn
  record; a bad frame in an earlier segment (valid segments follow it)
  is real corruption and raises :class:`~repro.exceptions.
  WalCorruptionError` instead of silently dropping committed data.

The fault-injection sites ``wal_append`` and ``wal_fsync`` fire before
the respective syscalls, so chaos plans can kill an append or a commit
deterministically (see ``make chaos-smoke``).
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import WalCorruptionError
from repro.telemetry import events

#: Magic bytes opening every segment file (8 bytes, versioned).
SEGMENT_MAGIC = b"TEAWAL01"

#: Record kinds. Edge batches are the only mutating record; the kind
#: byte leaves room for future record types without a format bump.
KIND_EDGE_BATCH = 1

#: ``[u32 length][u32 crc]`` — length counts the body (kind + payload).
_FRAME_HEADER = struct.Struct("<II")

#: Sanity cap on one record's body; a torn header that happens to parse
#: as a huge length must not trigger a giant allocation.
MAX_FRAME_BYTES = 1 << 28

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 4 << 20

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def segment_name(seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"


def list_segments(directory) -> List[Tuple[int, Path]]:
    """All ``(seq, path)`` WAL segments in ``directory``, seq-ascending."""
    directory = Path(directory)
    found = []
    if not directory.is_dir():
        return found
    for path in directory.iterdir():
        name = path.name
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX):
            try:
                seq = int(name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
            except ValueError:
                continue
            found.append((seq, path))
    return sorted(found)


def encode_edge_batch(src, dst, times) -> bytes:
    """Serialise one edge batch as a record body (kind + columns)."""
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    times = np.ascontiguousarray(times, dtype=np.float64)
    n = src.size
    return b"".join((
        bytes([KIND_EDGE_BATCH]),
        struct.pack("<Q", n),
        src.tobytes(),
        dst.tobytes(),
        times.tobytes(),
    ))


def decode_edge_batch(body: bytes):
    """Inverse of :func:`encode_edge_batch`; returns ``(src, dst, times)``."""
    if not body or body[0] != KIND_EDGE_BATCH:
        raise WalCorruptionError(
            f"unknown WAL record kind {body[0] if body else None!r}"
        )
    (n,) = struct.unpack_from("<Q", body, 1)
    expect = 1 + 8 + n * (8 + 8 + 8)
    if len(body) != expect:
        raise WalCorruptionError(
            f"edge-batch record claims {n} edges but has {len(body)} bytes "
            f"(expected {expect})"
        )
    off = 9
    src = np.frombuffer(body, dtype=np.int64, count=n, offset=off)
    off += 8 * n
    dst = np.frombuffer(body, dtype=np.int64, count=n, offset=off)
    off += 8 * n
    times = np.frombuffer(body, dtype=np.float64, count=n, offset=off)
    return src, dst, times


def _scan_segment(path: Path) -> Tuple[List[Tuple[int, bytes]], int, Optional[str]]:
    """Scan one segment: ``(frames, valid_end_offset, problem)``.

    ``frames`` is the list of ``(offset, body)`` for every intact
    record; ``valid_end_offset`` is the byte offset the log is valid up
    to (truncation point for a torn tail); ``problem`` describes why
    scanning stopped early (``None`` when the file is fully valid).
    """
    data = path.read_bytes()
    if len(data) < len(SEGMENT_MAGIC):
        return [], 0, "short segment header"
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        return [], 0, "bad segment magic"
    frames: List[Tuple[int, bytes]] = []
    off = len(SEGMENT_MAGIC)
    size = len(data)
    while off < size:
        if off + _FRAME_HEADER.size > size:
            return frames, off, "torn frame header"
        length, crc = _FRAME_HEADER.unpack_from(data, off)
        if length == 0 or length > MAX_FRAME_BYTES:
            return frames, off, f"invalid frame length {length}"
        body_end = off + _FRAME_HEADER.size + length
        if body_end > size:
            return frames, off, "torn frame body"
        body = data[off + _FRAME_HEADER.size : body_end]
        if zlib.crc32(body) != crc:
            return frames, off, "frame CRC mismatch"
        frames.append((off, body))
        off = body_end
    return frames, off, None


class WriteAheadLog:
    """Append-only, CRC-framed, segment-rotated edge-batch log.

    One writer at a time (the streaming engine's ingest path is
    single-mutator by design); readers replay closed state, never a
    live file. Opening an existing directory scans it, truncates a torn
    tail in the last segment, and positions the writer at the repaired
    end — the open itself is the recovery of the *log*; replaying its
    records into an index is the caller's job (see
    :meth:`StreamingTeaEngine.recover <repro.streaming.batch.
    StreamingTeaEngine>`).
    """

    def __init__(
        self,
        directory,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        group_commit: int = 1,
        fault_injector=None,
        start_segment: int = 0,
    ):
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        if group_commit <= 0:
            raise ValueError("group_commit must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.group_commit = int(group_commit)
        self.fault_injector = fault_injector
        self._fh = None
        self._seq = int(start_segment)
        self._offset = 0
        self._unsynced = 0
        #: Telemetry (read by the engine): totals since open.
        self.appended_records = 0
        self.appended_bytes = 0
        self.fsyncs = 0
        self.rotations = 0
        #: Bytes dropped from a torn tail at open (0 for a clean log).
        self.truncated_tail_bytes = 0
        self._open_tail()

    # -- lifecycle ---------------------------------------------------------

    def _open_tail(self) -> None:
        """Open for appending: repair + continue the last segment."""
        segments = list_segments(self.directory)
        if not segments:
            self._seq = max(self._seq, 0)
            self._start_segment(self._seq)
            return
        last_seq, last_path = segments[-1]
        _, valid_end, problem = _scan_segment(last_path)
        size = last_path.stat().st_size
        if problem is not None and valid_end < size:
            self.truncated_tail_bytes = size - valid_end
            events.emit(
                "wal.truncated_tail", segment=last_path.name,
                dropped_bytes=int(self.truncated_tail_bytes),
                reason=problem,
            )
            with open(last_path, "r+b") as fh:
                fh.truncate(valid_end)
                fh.flush()
                os.fsync(fh.fileno())
        if valid_end < len(SEGMENT_MAGIC):
            # The whole segment (even its magic) was torn: rewrite it.
            self._start_segment(last_seq)
            return
        self._seq = last_seq
        self._fh = open(last_path, "ab")
        self._offset = valid_end

    def _start_segment(self, seq: int) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self.rotations += 1
            events.emit("wal.rotate", segment=segment_name(seq))
        self._seq = seq
        path = self.directory / segment_name(seq)
        self._fh = open(path, "wb")
        self._fh.write(SEGMENT_MAGIC)
        self._fh.flush()
        self._offset = len(SEGMENT_MAGIC)

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    @property
    def position(self) -> Tuple[int, int]:
        """``(segment_seq, offset)`` of the end of the log."""
        return (self._seq, self._offset)

    def append_edges(self, src, dst, times, sync: Optional[bool] = None) -> dict:
        """Append one edge batch; returns its LSN dict.

        Always flushed to the OS (process-crash durable); fsynced when
        the group-commit counter fills or ``sync=True``. The returned
        dict carries ``segment``/``offset`` (where the record starts)
        and ``synced`` (whether the machine-crash barrier ran).
        """
        if self._fh is None:
            raise WalCorruptionError("write-ahead log is closed")
        if self.fault_injector is not None:
            self.fault_injector.check("wal_append")
        body = encode_edge_batch(src, dst, times)
        frame = _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body
        if self._offset + len(frame) > self.segment_bytes \
                and self._offset > len(SEGMENT_MAGIC):
            self._start_segment(self._seq + 1)
        lsn = {"segment": self._seq, "offset": self._offset}
        self._fh.write(frame)
        self._fh.flush()
        self._offset += len(frame)
        self.appended_records += 1
        self.appended_bytes += len(frame)
        self._unsynced += 1
        synced = False
        if sync or (sync is None and self._unsynced >= self.group_commit):
            self.sync()
            synced = True
        lsn["synced"] = synced
        return lsn

    def sync(self) -> None:
        """Force the fsync barrier (group commit's flush point)."""
        if self._fh is None or self._unsynced == 0:
            return
        if self.fault_injector is not None:
            self.fault_injector.check("wal_fsync")
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        committed, self._unsynced = self._unsynced, 0
        events.emit("wal.fsync", records=int(committed),
                    segment=int(self._seq))

    # -- replay ------------------------------------------------------------

    @staticmethod
    def replay(directory, start: Optional[Tuple[int, int]] = None,
               ) -> Iterator[Tuple[Tuple[int, int], np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(lsn, src, dst, times)`` for every durable record.

        ``start`` skips records before ``(segment, offset)`` — the
        checkpoint manifest's WAL position. A torn tail in the last
        segment is silently ignored (the writer truncates it on
        reopen); a bad frame anywhere else raises
        :class:`WalCorruptionError`.
        """
        segments = list_segments(directory)
        start_seg, start_off = start if start is not None else (-1, 0)
        for index, (seq, path) in enumerate(segments):
            if seq < start_seg:
                continue
            frames, valid_end, problem = _scan_segment(path)
            if problem is not None and index != len(segments) - 1:
                raise WalCorruptionError(
                    f"{path.name}: {problem} at offset {valid_end} but later "
                    f"segments exist — the log is corrupt, not torn"
                )
            for off, body in frames:
                if seq == start_seg and off < start_off:
                    continue
                src, dst, times = decode_edge_batch(body)
                yield (seq, off), src, dst, times

    def trim_before(self, segment: int) -> int:
        """Unlink whole segments with seq < ``segment`` (checkpoint trim)."""
        removed = 0
        for seq, path in list_segments(self.directory):
            if seq < segment and seq != self._seq:
                path.unlink()
                removed += 1
        if removed:
            events.emit("wal.trim", removed_segments=int(removed),
                        keep_from=int(segment))
        return removed


def scrub_wal(directory) -> dict:
    """Integrity-scan a WAL directory (the ``repro scrub`` WAL core).

    Checks every frame of every segment (CRC + length), distinguishing
    a repairable torn tail (last segment only — reported, not counted
    as corruption) from mid-log corruption, and verifies the checkpoint
    manifest when present (see :func:`repro.streaming.snapshot.
    verify_checkpoint`). Returns a report dict shaped like
    :func:`repro.core.outofcore.scrub_store`'s: ``clean`` /
    ``corrupt`` / counts.
    """
    from repro.streaming.snapshot import verify_checkpoint

    directory = Path(directory)
    report = {
        "directory": str(directory),
        "segments": 0,
        "frames_checked": 0,
        "torn_tail": None,
        "corrupt": [],
        "clean": True,
    }
    segments = list_segments(directory)
    report["segments"] = len(segments)
    for index, (seq, path) in enumerate(segments):
        frames, valid_end, problem = _scan_segment(path)
        for off, body in frames:
            report["frames_checked"] += 1
            try:
                decode_edge_batch(body)
            except WalCorruptionError as exc:
                report["corrupt"].append({
                    "file": path.name, "page": None, "offset_bytes": int(off),
                    "reason": f"undecodable record: {exc}",
                })
        if problem is not None:
            size = path.stat().st_size
            record = {
                "file": path.name, "page": None,
                "offset_bytes": int(valid_end),
                "reason": f"{problem} ({size - valid_end} trailing bytes)",
            }
            if index == len(segments) - 1:
                # Torn tail: repairable, the writer truncates on reopen.
                report["torn_tail"] = record
            else:
                report["corrupt"].append(record)
    manifest_report = verify_checkpoint(directory)
    if manifest_report is not None:
        report["manifest"] = manifest_report
        report["corrupt"].extend(manifest_report["corrupt"])
    report["clean"] = not report["corrupt"]
    return report
