"""Batched streaming execution: walk while the graph grows.

The paper's streaming setting (Section 3.5): updates arrive as
time-ordered batches of *new* edges; PAT/HPAT are extended incrementally
(carry-merge of trunk hierarchies, Figure 7) instead of rebuilt.
:class:`StreamingTeaEngine` owns an
:class:`~repro.core.incremental.IncrementalHPAT` and interleaves
``apply_batch`` calls with temporal walks over everything ingested so
far. Walks here run directly on the block forest, so no global rebuild
ever happens between batches.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.incremental import IncrementalHPAT
from repro.exceptions import NotSupportedError
from repro.graph.edge_stream import EdgeStream
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.telemetry import LATENCY_BUCKETS, MetricsRegistry, events
from repro.walks.spec import WalkSpec
from repro.walks.walker import Walker, WalkPath


class StreamingTeaEngine:
    """Incremental-HPAT walk engine for edge streams.

    Applications with a Dynamic parameter (node2vec's β) are not
    supported in streaming mode — β needs the static adjacency oracle,
    which would itself need incremental maintenance; the paper's
    streaming evaluation (Figure 13d) uses the weight-only applications.
    """

    def __init__(self, spec: WalkSpec, registry: Optional[MetricsRegistry] = None,
                 fault_injector=None):
        if spec.has_dynamic_parameter:
            raise NotSupportedError(
                "streaming mode supports weight-only applications "
                "(no Dynamic_parameter)"
            )
        self.spec = spec
        self.index = IncrementalHPAT(spec.weight_model,
                                     fault_injector=fault_injector)
        self.counters = CostCounters()
        # Ingestion telemetry accumulates here; walk-side counters join
        # it on telemetry_snapshot() so repeated snapshots never
        # double-count.
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- ingestion ---------------------------------------------------------

    def apply_batch(self, batch: EdgeStream) -> None:
        """Ingest one time-ordered batch of new edges.

        Atomic (see :meth:`IncrementalHPAT.apply_batch`): on a mid-batch
        failure the index is left exactly as before the call; the
        rollback is counted in ``resilience.rollbacks`` and the error
        re-raised for the caller to retry or drop the batch.
        """
        t0 = time.perf_counter()
        try:
            self.index.apply_batch(batch)
        except BaseException as exc:
            self.registry.counter(
                "resilience.rollbacks",
                "streaming batches rolled back by mid-apply failures",
            ).inc()
            events.emit("streaming.rollback", edges=len(batch),
                        error=type(exc).__name__)
            raise
        elapsed = time.perf_counter() - t0
        self.registry.counter("streaming.batches", "update batches applied").inc()
        self.registry.counter("streaming.edges", "edges ingested").inc(len(batch))
        self.registry.histogram(
            "streaming.batch_edges", "edges per update batch"
        ).observe(len(batch))
        self.registry.histogram(
            "streaming.apply_seconds", "incremental carry-merge time per batch",
            **LATENCY_BUCKETS,
        ).observe(elapsed)

    def ingest(self, stream: EdgeStream, batch_size: int) -> int:
        """Ingest a whole stream in fixed-size batches; returns batch count."""
        count = 0
        for batch in stream.batches(batch_size):
            self.apply_batch(batch)
            count += 1
        return count

    @property
    def num_edges(self) -> int:
        return self.index.num_edges

    def active_vertices(self) -> List[int]:
        """Vertices that currently have out-edges."""
        return sorted(self.index.vertices)

    # -- walking -----------------------------------------------------------

    def walk(
        self,
        start: int,
        max_length: int,
        seed: RngLike = None,
    ) -> WalkPath:
        """One temporal walk over everything ingested so far."""
        rng = make_rng(seed)
        walker = Walker(int(start))
        v = walker.start_vertex
        while walker.num_edges < max_length:
            s = self.index.candidate_count(v, walker.current_time)
            if s <= 0:
                break
            self.counters.record_step()
            v2, t2 = self.index.sample(v, s, rng, self.counters)
            walker.advance(v2, t2)
            v = v2
        return walker.finish()

    def run_walks(
        self,
        starts,
        max_length: int = 80,
        seed: RngLike = 0,
    ) -> List[WalkPath]:
        """Walks from each start vertex, sharing one RNG stream."""
        rng = make_rng(seed)
        return [self.walk(int(u), max_length, rng) for u in np.asarray(starts)]

    def nbytes(self) -> int:
        return self.index.nbytes()

    def telemetry_snapshot(self) -> MetricsRegistry:
        """Fresh registry: ingestion metrics + current walk counters.

        The engine's own registry only accumulates ingestion events;
        the sampling counters are folded into the *copy*, so calling
        this repeatedly never double-publishes them.
        """
        snapshot = MetricsRegistry().merge(self.registry)
        self.counters.publish(snapshot)
        snapshot.gauge("streaming.index_bytes", "incremental HPAT bytes").set(
            self.index.nbytes()
        )
        snapshot.gauge("streaming.num_edges", "edges ingested so far").set(
            self.num_edges
        )
        return snapshot
