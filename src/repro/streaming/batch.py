"""Batched streaming execution: walk while the graph grows, durably.

The paper's streaming setting (Section 3.5): updates arrive as
time-ordered batches of *new* edges; PAT/HPAT are extended incrementally
(carry-merge of trunk hierarchies, Figure 7) instead of rebuilt.
:class:`StreamingTeaEngine` owns an
:class:`~repro.core.incremental.IncrementalHPAT` and interleaves
``apply_batch`` calls with temporal walks over everything ingested so
far. Walks run directly on the block forest, so no global rebuild ever
happens between batches.

On top of the paper's in-memory maintenance this engine layers the two
production properties ROADMAP item 3 asks for:

**Durability** (opt-in via ``wal_dir``). Every accepted batch is applied
to the index and then appended to a CRC-framed write-ahead log
(:mod:`repro.streaming.wal`) — log-after-apply, so a batch the index
*rejects* (stream-order violation, injected fault) is never logged, and
a batch whose WAL append fails is rolled back out of the index before
the error propagates. Either way, "accepted" and "will survive a crash"
are the same set of batches. Opening an engine on an existing
``wal_dir`` recovers it: load the checkpoint (if any) batch-by-batch,
replay the WAL suffix record-by-record, truncate any torn tail. Because
both paths reproduce the original batch boundaries, the recovered index
is *structurally* identical to the never-crashed one — walks are
bit-identical, not merely distribution-identical.

**Snapshot isolation.** Each accepted batch advances ``epoch`` and
publishes an immutable :class:`~repro.streaming.snapshot.EpochView`
(copy-on-write: only vertices the batch touched are re-pinned). Readers
call :meth:`pin` and walk the view; a pinned epoch's results are
byte-stable no matter how much ingest happens meanwhile. The newest
``retain_epochs`` views stay pinnable by id; older ones are retired
(readers holding a reference keep it alive — retirement only bounds the
id-lookup window).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

from repro.core.incremental import IncrementalHPAT
from repro.exceptions import EpochRetiredError, NotSupportedError
from repro.graph.edge_stream import EdgeStream
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.streaming.snapshot import (
    EpochView,
    load_checkpoint,
    walk_index,
    write_checkpoint,
)
from repro.streaming.wal import DEFAULT_SEGMENT_BYTES, WriteAheadLog
from repro.telemetry import LATENCY_BUCKETS, MetricsRegistry, events
from repro.walks.spec import WalkSpec
from repro.walks.walker import WalkPath


class StreamingTeaEngine:
    """Incremental-HPAT walk engine for edge streams.

    Applications with a Dynamic parameter (node2vec's β) are not
    supported in streaming mode — β needs the static adjacency oracle,
    which would itself need incremental maintenance; the paper's
    streaming evaluation (Figure 13d) uses the weight-only applications.

    Parameters
    ----------
    wal_dir:
        Directory for the write-ahead log + checkpoint manifest. ``None``
        (default) keeps the engine purely in-memory — PR 4 semantics.
        Pointing it at a non-empty directory *recovers* the engine from
        the durable state before accepting new batches.
    segment_bytes / group_commit:
        WAL tuning (see :class:`~repro.streaming.wal.WriteAheadLog`).
    retain_epochs:
        How many recent epoch views stay pinnable by id.
    """

    def __init__(self, spec: WalkSpec, registry: Optional[MetricsRegistry] = None,
                 fault_injector=None, wal_dir=None,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 group_commit: int = 1, retain_epochs: int = 4):
        if spec.has_dynamic_parameter:
            raise NotSupportedError(
                "streaming mode supports weight-only applications "
                "(no Dynamic_parameter)"
            )
        if retain_epochs <= 0:
            raise ValueError("retain_epochs must be positive")
        self.spec = spec
        self.fault_injector = fault_injector
        self.index = IncrementalHPAT(spec.weight_model,
                                     fault_injector=fault_injector)
        self.counters = CostCounters()
        # Ingestion telemetry accumulates here; walk-side counters join
        # it on telemetry_snapshot() so repeated snapshots never
        # double-count.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Monotone batch counter; every accepted batch advances it and
        #: publishes a frozen view under the new id.
        self.epoch = 0
        self._retain_epochs = int(retain_epochs)
        self._views: "OrderedDict[int, EpochView]" = OrderedDict()
        self._current_view = EpochView.capture(0, self.index)
        self._views[0] = self._current_view
        # Durable-history columns in arrival order (one entry per
        # accepted batch) — the checkpoint source. O(E) like the index.
        self._history_src: List[np.ndarray] = []
        self._history_dst: List[np.ndarray] = []
        self._history_times: List[np.ndarray] = []
        self.wal: Optional[WriteAheadLog] = None
        self.recovered_batches = 0
        self.recovered_edges = 0
        if wal_dir is not None:
            self._recover(wal_dir, segment_bytes, group_commit)

    # -- durability --------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.wal is not None

    def _recover(self, wal_dir, segment_bytes: int, group_commit: int) -> None:
        """Rebuild from checkpoint + WAL, then open the log for appends.

        Order matters: the :class:`WriteAheadLog` constructor repairs a
        torn tail *first*, so the subsequent replay only ever sees
        durable frames.
        """
        t0 = time.perf_counter()
        wal = WriteAheadLog(wal_dir, segment_bytes=segment_bytes,
                            group_commit=group_commit,
                            fault_injector=self.fault_injector)
        start = None
        loaded = load_checkpoint(wal_dir)
        if loaded is not None:
            manifest, src, dst, times, batch_sizes = loaded
            bounds = np.concatenate([[0], np.cumsum(batch_sizes)])
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                self._apply_to_index(EdgeStream.from_arrays(
                    src[lo:hi], dst[lo:hi], times[lo:hi], require_sorted=True
                ))
                self.epoch += 1
            self.recovered_batches += int(batch_sizes.size)
            self.recovered_edges += int(src.size)
            start = (manifest["wal"]["segment"], manifest["wal"]["offset"])
        for _lsn, src, dst, times in WriteAheadLog.replay(wal_dir, start=start):
            self._apply_to_index(EdgeStream.from_arrays(
                src, dst, times, require_sorted=True))
            self.epoch += 1
            self.recovered_batches += 1
            self.recovered_edges += int(src.size)
        self.wal = wal
        self._publish_epoch()
        elapsed = time.perf_counter() - t0
        if self.recovered_batches or wal.truncated_tail_bytes:
            events.emit(
                "streaming.recovered", batches=int(self.recovered_batches),
                edges=int(self.recovered_edges), epoch=int(self.epoch),
                truncated_tail_bytes=int(wal.truncated_tail_bytes),
                seconds=elapsed,
            )

    def checkpoint(self) -> dict:
        """Persist the full history + manifest, then trim old WAL segments.

        Bounds recovery: replay restarts from the manifest's WAL
        position instead of the beginning of time. Returns the manifest.
        """
        if self.wal is None:
            raise NotSupportedError(
                "checkpoint requires a durable engine (wal_dir)"
            )
        self.wal.sync()
        if self._history_src:
            src = np.concatenate(self._history_src)
            dst = np.concatenate(self._history_dst)
            times = np.concatenate(self._history_times)
        else:
            src = np.zeros(0, dtype=np.int64)
            dst = np.zeros(0, dtype=np.int64)
            times = np.zeros(0, dtype=np.float64)
        batch_sizes = np.array([a.size for a in self._history_src],
                               dtype=np.int64)
        manifest = write_checkpoint(
            self.wal.directory, src, dst, times, batch_sizes,
            epoch=self.epoch, wal_position=self.wal.position,
            fault_injector=self.fault_injector,
        )
        self.wal.trim_before(manifest["wal"]["segment"])
        self.registry.counter("streaming.checkpoints", "checkpoints written").inc()
        return manifest

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "StreamingTeaEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingestion ---------------------------------------------------------

    def _apply_to_index(self, batch: EdgeStream) -> None:
        """Apply + record history, no WAL write (recovery/replay path)."""
        self.index.apply_batch(batch)
        self._history_src.append(batch.src)
        self._history_dst.append(batch.dst)
        self._history_times.append(batch.time)

    def apply_batch(self, batch: EdgeStream, sync: Optional[bool] = None) -> None:
        """Ingest one time-ordered batch of new edges.

        Atomic *and* durability-consistent: a batch the index rejects is
        rolled back in memory and never logged (PR 4 semantics); a batch
        the WAL fails to persist is undone from the index before the
        error propagates. A batch this method returns from is applied,
        logged, and published as a new epoch. ``sync`` forces (or, with
        ``False``, defers) the fsync barrier for this batch.
        """
        if not len(batch):
            return
        t0 = time.perf_counter()
        captured: Dict[int, Optional[tuple]] = {}
        if self.wal is not None:
            captured = self.index.capture_vertices(np.unique(batch.src))
        try:
            self.index.apply_batch(batch)
        except BaseException as exc:
            self._count_rollback(batch, exc)
            raise
        if self.wal is not None:
            try:
                self.wal.append_edges(batch.src, batch.dst, batch.time,
                                      sync=sync)
            except BaseException as exc:
                # The index accepted the batch but it will not survive a
                # crash: undo it so acceptance == durability.
                self.index.restore_vertices(captured, len(batch))
                self._count_rollback(batch, exc)
                raise
        self._history_src.append(batch.src)
        self._history_dst.append(batch.dst)
        self._history_times.append(batch.time)
        self.epoch += 1
        self._publish_epoch()
        elapsed = time.perf_counter() - t0
        self.registry.counter("streaming.batches", "update batches applied").inc()
        self.registry.counter("streaming.edges", "edges ingested").inc(len(batch))
        self.registry.histogram(
            "streaming.batch_edges", "edges per update batch"
        ).observe(len(batch))
        self.registry.histogram(
            "streaming.apply_seconds", "incremental carry-merge time per batch",
            **LATENCY_BUCKETS,
        ).observe(elapsed)

    def _count_rollback(self, batch: EdgeStream, exc: BaseException) -> None:
        self.registry.counter(
            "resilience.rollbacks",
            "streaming batches rolled back by mid-apply failures",
        ).inc()
        events.emit("streaming.rollback", edges=len(batch),
                    error=type(exc).__name__)

    def add_multiple_edges(self, src, dst, times,
                           sync: Optional[bool] = None) -> dict:
        """Vectorised bulk ingest: array columns in, one epoch out.

        The whole column set becomes a single incremental-HPAT batch
        (one argsort, one per-vertex group append, one WAL record) —
        the high-throughput path the ingest benchmark measures against
        a per-edge ``apply_batch`` loop. Timestamps must already be
        ascending (:meth:`EdgeStream.from_arrays` validates; violations
        raise :class:`~repro.exceptions.GraphFormatError` rather than
        being re-sorted, because silently reordering a stream is how
        you corrupt a replay).
        """
        batch = EdgeStream.from_arrays(src, dst, times, require_sorted=True)
        self.apply_batch(batch, sync=sync)
        return {"edges": len(batch), "epoch": self.epoch,
                "num_edges": self.num_edges}

    def ingest(self, stream: EdgeStream, batch_size: int) -> int:
        """Ingest a whole stream in fixed-size batches; returns batch count."""
        count = 0
        for batch in stream.batches(batch_size):
            self.apply_batch(batch)
            count += 1
        return count

    @property
    def num_edges(self) -> int:
        return self.index.num_edges

    def active_vertices(self) -> List[int]:
        """Vertices that currently have out-edges."""
        return sorted(self.index.vertices)

    # -- epochs ------------------------------------------------------------

    def _publish_epoch(self) -> None:
        view = EpochView.capture(self.epoch, self.index,
                                 previous=self._current_view)
        self._current_view = view
        self._views[view.epoch] = view
        while len(self._views) > self._retain_epochs:
            self._views.popitem(last=False)

    def pin(self, epoch: Optional[int] = None) -> EpochView:
        """Pin an epoch for isolated reads (default: the current one).

        The returned view is immutable — walks over it are byte-stable
        however much ingest happens concurrently. Pinning by id only
        works inside the retention window; older ids raise
        :class:`~repro.exceptions.EpochRetiredError`.
        """
        if epoch is None:
            return self._current_view
        view = self._views.get(int(epoch))
        if view is None:
            raise EpochRetiredError(
                f"epoch {int(epoch)} is outside the retention window "
                f"(oldest pinnable: {next(iter(self._views))}, "
                f"current: {self.epoch})"
            )
        return view

    # -- walking -----------------------------------------------------------

    def walk(
        self,
        start: int,
        max_length: int,
        seed: RngLike = None,
    ) -> WalkPath:
        """One temporal walk over everything ingested so far."""
        rng = make_rng(seed)
        return walk_index(self.index, int(start), int(max_length), rng,
                          self.counters)

    def run_walks(
        self,
        starts,
        max_length: int = 80,
        seed: RngLike = 0,
    ) -> List[WalkPath]:
        """Walks from each start vertex, sharing one RNG stream."""
        rng = make_rng(seed)
        return [
            walk_index(self.index, int(u), int(max_length), rng, self.counters)
            for u in np.asarray(starts)
        ]

    def nbytes(self) -> int:
        return self.index.nbytes()

    def telemetry_snapshot(self) -> MetricsRegistry:
        """Fresh registry: ingestion metrics + current walk counters.

        The engine's own registry only accumulates ingestion events;
        the sampling counters are folded into the *copy*, so calling
        this repeatedly never double-publishes them.
        """
        snapshot = MetricsRegistry().merge(self.registry)
        self.counters.publish(snapshot)
        snapshot.gauge("streaming.index_bytes", "incremental HPAT bytes").set(
            self.index.nbytes()
        )
        snapshot.gauge("streaming.num_edges", "edges ingested so far").set(
            self.num_edges
        )
        snapshot.gauge("streaming.epoch", "current published epoch").set(
            self.epoch
        )
        snapshot.gauge(
            "streaming.retained_epochs", "epoch views pinnable by id"
        ).set(len(self._views))
        if self.wal is not None:
            snapshot.counter(
                "wal.appended_records", "WAL records appended since open"
            ).inc(self.wal.appended_records)
            snapshot.counter(
                "wal.appended_bytes", "WAL bytes appended since open"
            ).inc(self.wal.appended_bytes)
            snapshot.counter("wal.fsyncs", "fsync barriers run").inc(
                self.wal.fsyncs
            )
            snapshot.counter("wal.rotations", "segment rotations").inc(
                self.wal.rotations
            )
            snapshot.gauge(
                "wal.truncated_tail_bytes", "torn bytes dropped at open"
            ).set(self.wal.truncated_tail_bytes)
            snapshot.gauge(
                "streaming.recovered_batches", "batches replayed at open"
            ).set(self.recovered_batches)
        return snapshot
