"""Pure-ITS index: the minimal-memory ablation of Figure 12.

One prefix-sum array per vertex over the static weights, nothing else.
Sampling a candidate prefix of size s is a single O(log s) binary search —
the paper's ITS column: least memory, slowest of TEA's in-memory options.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import EmptyCandidateSetError
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import draw_in_range, its_search


class ITSIndex:
    """Flat per-vertex prefix sums (same ``c`` layout as PAT/HPAT)."""

    __slots__ = ("indptr", "c")

    def __init__(self, indptr: np.ndarray, c: np.ndarray):
        self.indptr = indptr
        self.c = c

    @classmethod
    def build(cls, graph, weights: np.ndarray) -> "ITSIndex":
        from repro.core.builder import build_prefix_array

        return cls(graph.indptr, build_prefix_array(graph, weights))

    def c_base(self, v: int) -> int:
        return int(self.indptr[v] + v)

    def candidate_weight(self, v: int, candidate_size: int) -> float:
        return float(self.c[self.c_base(v) + candidate_size])

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError(f"vertex {v}: empty candidate set")
        base = self.c_base(v)
        total = self.c[base + s]
        if not (total > 0):
            raise EmptyCandidateSetError(f"vertex {v}: zero-weight candidate set")
        r = draw_in_range(rng, 0.0, total)
        return its_search(self.c, r, base, base + s, counters) - base

    def nbytes(self) -> int:
        return int(self.c.nbytes)
