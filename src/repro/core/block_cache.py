"""Segmented-LRU caching for out-of-core reads — §4.1's re-entry reuse.

Paper §4.1: "each to-be-loaded data will use the prior loaded data
re-entry [1] to minimize the disk I/O" (the reference is CLIP's
loaded-data reuse, ATC '17). Random walks revisit hot vertices
constantly — power-law graphs concentrate walk mass on hubs — so caching
recently loaded trunks converts most loads into hits.

:class:`BlockCache` is a byte-budgeted **scan-resistant segmented LRU**
(SLRU) over ``(region, lo, hi)`` keys. New blocks are admitted into a
*probation* segment; a second touch promotes them into a *protected*
segment that one-touch traffic can never displace. That matters for the
batched out-of-core path: a frontier step coalesces many cold trunk
ranges into large sequential reads — a scan — and a plain LRU would let
that scan flush the hot hub trunks the walk keeps returning to. Under
SLRU the scan churns probation only.

Entries can be **pinned** (the async prefetcher pins blocks it has
warmed until the sampler consumes them, so an aggressive step cannot
evict its own prefetched data before it is used) and every admitted
array is frozen read-only — callers share the cached block itself, so a
mutation would silently corrupt every future hit.

:class:`~repro.core.outofcore.TrunkStore` consults the cache before
touching the memory-map and only charges I/O counters on misses. The
Figure 14 companion benchmarks ablate cache capacity and prefetch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

import numpy as np

from repro.telemetry import events

#: Fraction of the byte budget the protected segment may occupy. The
#: remainder is probation head-room for not-yet-promoted admissions
#: (classic SLRU sizing; 0.8 keeps hot reuse dominant without starving
#: new blocks of their trial period).
DEFAULT_PROTECTED_RATIO = 0.8


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_in: int = 0
    bytes_evicted: int = 0
    #: Logical bytes returned from cache hits — together with
    #: ``bytes_in`` this makes hit rate *by bytes* computable, not just
    #: by lookup count (large trunk hits matter more than 8-byte ones).
    bytes_served: int = 0
    #: Probation → protected promotions (second-touch admissions).
    promotions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Full-precision view; round at display time, not here."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_in": self.bytes_in,
            "bytes_evicted": self.bytes_evicted,
            "bytes_served": self.bytes_served,
            "promotions": self.promotions,
            "hit_rate": self.hit_rate,
        }

    def pretty(self) -> str:
        """Display rendering (the only place the hit rate is rounded)."""
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"bytes_in={self.bytes_in} bytes_evicted={self.bytes_evicted} "
            f"hit_rate={self.hit_rate:.4f}"
        )

    def publish(self, registry, prefix: str = "cache") -> None:
        """Report into a :class:`~repro.telemetry.MetricsRegistry`."""
        registry.counter(f"{prefix}.hits", "cache hits").inc(self.hits)
        registry.counter(f"{prefix}.misses", "cache misses").inc(self.misses)
        registry.counter(f"{prefix}.evictions", "cache evictions").inc(self.evictions)
        registry.counter(f"{prefix}.bytes_in", "bytes admitted").inc(self.bytes_in)
        registry.counter(f"{prefix}.bytes_evicted", "bytes evicted").inc(
            self.bytes_evicted
        )
        registry.counter(
            f"{prefix}.bytes_served", "logical bytes returned from hits"
        ).inc(self.bytes_served)
        registry.counter(
            f"{prefix}.promotions", "probation-to-protected promotions"
        ).inc(self.promotions)
        registry.gauge(f"{prefix}.hit_rate", "hits / (hits + misses)").set(
            self.hit_rate
        )


class _Entry:
    __slots__ = ("value", "nbytes", "pinned")

    def __init__(self, value, nbytes: int, pinned: bool = False):
        self.value = value
        self.nbytes = nbytes
        self.pinned = pinned


class BlockCache:
    """Byte-budgeted scan-resistant SLRU cache of numpy array blocks.

    Keys are arbitrary hashables (the stores use ``(region, lo, hi)``);
    values are loaded arrays or tuples of arrays, frozen read-only on
    admission. ``capacity_bytes <= 0`` disables caching entirely (every
    get misses, nothing is stored), which gives benchmarks a clean off
    switch.

    Pinned entries are never evicted; pinned bytes still count against
    the budget, so heavy pinning can transiently push ``nbytes`` above
    ``capacity_bytes`` until the pins are released (:meth:`unpin`
    re-runs eviction). ``on_evict(key)`` — when set — fires for every
    eviction, letting the prefetcher account warmed-but-unused blocks.
    """

    def __init__(
        self,
        capacity_bytes: int,
        protected_ratio: float = DEFAULT_PROTECTED_RATIO,
        on_evict: Optional[Callable[[Hashable], None]] = None,
    ):
        if not (0.0 < protected_ratio < 1.0):
            raise ValueError("protected_ratio must be in (0, 1)")
        self.capacity_bytes = int(capacity_bytes)
        self.protected_capacity = int(self.capacity_bytes * protected_ratio)
        self.on_evict = on_evict
        self._probation: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._protected: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._bytes = 0
        self._protected_bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def __contains__(self, key: Hashable) -> bool:
        """Non-counting peek (the prefetcher's already-resident check)."""
        return key in self._probation or key in self._protected

    @property
    def nbytes(self) -> int:
        return self._bytes

    @property
    def enabled(self) -> bool:
        return self.capacity_bytes > 0

    # -- lookups -------------------------------------------------------------

    def get(self, key: Hashable):
        if self.capacity_bytes <= 0:
            self.stats.misses += 1
            return None
        entry = self._protected.get(key)
        if entry is not None:
            self._protected.move_to_end(key)
            self.stats.hits += 1
            self.stats.bytes_served += entry.nbytes
            return entry.value
        entry = self._probation.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        # Second touch: promote out of probation. A one-pass scan only
        # ever populates probation, so it cannot displace this entry
        # again — that is the scan resistance.
        del self._probation[key]
        self._protected[key] = entry
        self._protected_bytes += entry.nbytes
        self.stats.promotions += 1
        events.emit("cache.promoted", key=str(key), nbytes=int(entry.nbytes))
        self._demote_overflow()
        self.stats.hits += 1
        self.stats.bytes_served += entry.nbytes
        return entry.value

    # -- mutation ------------------------------------------------------------

    @staticmethod
    def _nbytes(value) -> int:
        if isinstance(value, tuple):
            return int(sum(v.nbytes for v in value))
        return int(value.nbytes)

    @staticmethod
    def _freeze(value) -> None:
        """Make the admitted block(s) read-only. Callers receive the
        cached array itself on every hit, so a writable block would let
        one caller silently corrupt all future hits."""
        members = value if isinstance(value, tuple) else (value,)
        for arr in members:
            arr.setflags(write=False)

    def put(self, key: Hashable, value, pin: bool = False) -> None:
        """Store an array (or tuple of arrays) under ``key``.

        ``pin=True`` admits the entry pinned (prefetch in flight); it
        stays unevictable until :meth:`unpin`.
        """
        if not self.enabled:
            return
        nbytes = self._nbytes(value)
        if nbytes > self.capacity_bytes:
            return  # oversized blocks are not worth evicting everything for
        self._discard(key)
        self._freeze(value)
        self._probation[key] = _Entry(value, nbytes, pinned=pin)
        self._bytes += nbytes
        self.stats.bytes_in += nbytes
        self._evict_to_budget()

    def pin(self, key: Hashable) -> bool:
        entry = self._probation.get(key) or self._protected.get(key)
        if entry is None:
            return False
        entry.pinned = True
        return True

    def unpin(self, key: Hashable) -> bool:
        entry = self._probation.get(key) or self._protected.get(key)
        if entry is None:
            return False
        entry.pinned = False
        self._evict_to_budget()
        return True

    def clear(self) -> None:
        self._probation.clear()
        self._protected.clear()
        self._bytes = 0
        self._protected_bytes = 0

    # -- internals -----------------------------------------------------------

    def _discard(self, key: Hashable) -> None:
        """Silent removal (overwrite path): no eviction accounting."""
        entry = self._probation.pop(key, None)
        if entry is None:
            entry = self._protected.pop(key, None)
            if entry is not None:
                self._protected_bytes -= entry.nbytes
        if entry is not None:
            self._bytes -= entry.nbytes

    def _demote_overflow(self) -> None:
        """Shrink protected to its cap by demoting LRU entries back to
        probation's MRU end (SLRU's second chance — they are not
        evicted, just exposed to probation churn again)."""
        while self._protected_bytes > self.protected_capacity and len(self._protected) > 1:
            key, entry = self._protected.popitem(last=False)
            self._protected_bytes -= entry.nbytes
            self._probation[key] = entry

    def _evict_to_budget(self) -> None:
        while self._bytes > self.capacity_bytes:
            victim = self._pick_victim()
            if victim is None:
                return  # everything left is pinned: transient overflow
            segment, key = victim
            entry = segment.pop(key)
            self._bytes -= entry.nbytes
            if segment is self._protected:
                self._protected_bytes -= entry.nbytes
            self.stats.evictions += 1
            self.stats.bytes_evicted += entry.nbytes
            events.emit("cache.evicted", key=str(key), nbytes=int(entry.nbytes))
            if self.on_evict is not None:
                self.on_evict(key)

    def _pick_victim(self):
        """Oldest unpinned probation entry, else oldest unpinned
        protected entry, else None."""
        for segment in (self._probation, self._protected):
            for key, entry in segment.items():
                if not entry.pinned:
                    return segment, key
        return None
