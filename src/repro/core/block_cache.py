"""LRU caching for out-of-core reads — the paper's re-entry optimisation.

Paper §4.1: "each to-be-loaded data will use the prior loaded data
re-entry [1] to minimize the disk I/O" (the reference is CLIP's
loaded-data reuse, ATC '17). Random walks revisit hot vertices
constantly — power-law graphs concentrate walk mass on hubs — so caching
recently loaded trunks converts most loads into hits.

:class:`BlockCache` is a byte-budgeted LRU over (region, lo, hi) keys;
:class:`~repro.core.outofcore.TrunkStore` consults it before touching
the memory-map and only charges I/O counters on misses. The Figure 14
companion benchmark ablates cache on/off.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

import numpy as np


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_in: int = 0
    bytes_evicted: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Full-precision view; round at display time, not here."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_in": self.bytes_in,
            "bytes_evicted": self.bytes_evicted,
            "hit_rate": self.hit_rate,
        }

    def pretty(self) -> str:
        """Display rendering (the only place the hit rate is rounded)."""
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"bytes_in={self.bytes_in} bytes_evicted={self.bytes_evicted} "
            f"hit_rate={self.hit_rate:.4f}"
        )

    def publish(self, registry, prefix: str = "cache") -> None:
        """Report into a :class:`~repro.telemetry.MetricsRegistry`."""
        registry.counter(f"{prefix}.hits", "cache hits").inc(self.hits)
        registry.counter(f"{prefix}.misses", "cache misses").inc(self.misses)
        registry.counter(f"{prefix}.evictions", "cache evictions").inc(self.evictions)
        registry.counter(f"{prefix}.bytes_in", "bytes admitted").inc(self.bytes_in)
        registry.counter(f"{prefix}.bytes_evicted", "bytes evicted").inc(
            self.bytes_evicted
        )
        registry.gauge(f"{prefix}.hit_rate", "hits / (hits + misses)").set(
            self.hit_rate
        )


class BlockCache:
    """Byte-budgeted LRU cache of numpy array blocks.

    Keys are arbitrary hashables (the stores use ``(region, lo, hi)``);
    values are the loaded arrays. ``capacity_bytes <= 0`` disables
    caching entirely (every get misses, nothing is stored), which gives
    benchmarks a clean off switch.
    """

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._bytes

    @property
    def enabled(self) -> bool:
        return self.capacity_bytes > 0

    def get(self, key: Hashable):
        if not self.enabled:
            self.stats.misses += 1
            return None
        value = self._entries.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    @staticmethod
    def _nbytes(value) -> int:
        if isinstance(value, tuple):
            return int(sum(v.nbytes for v in value))
        return int(value.nbytes)

    def put(self, key: Hashable, value) -> None:
        """Store an array (or tuple of arrays) under ``key``."""
        if not self.enabled:
            return
        nbytes = self._nbytes(value)
        if nbytes > self.capacity_bytes:
            return  # oversized blocks are not worth evicting everything for
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= self._nbytes(old)
        self._entries[key] = value
        self._bytes += nbytes
        self.stats.bytes_in += nbytes
        while self._bytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            evicted_bytes = self._nbytes(evicted)
            self._bytes -= evicted_bytes
            self.stats.evictions += 1
            self.stats.bytes_evicted += evicted_bytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
