"""Parallel construction of TEA's data structures (paper Section 4.2).

The preprocessing pipeline has three phases, each independently
parallelisable over disjoint data and therefore lock-free:

1. **Searching candidate edge sets** — for every edge (u, v, t), the size
   of Γt(v) (a binary search per edge over v's time-sorted adjacency;
   O(|E| log D) total). We vectorise it to one global ``searchsorted``.
2. **PAT/HPAT construction** — per-vertex prefix sums plus alias tables
   for every trunk. Every table's position in the flat output arrays is
   computed *before* construction (the lengths are fixed), so workers
   write disjoint ranges without synchronisation — exactly the paper's
   lock-free scheme, realised here as vertex-chunk tasks on a thread pool
   (numpy kernels release the GIL).
3. **Auxiliary index generation** — Σ_{D'=1..D} log D' work, vectorised.

:func:`preprocess` runs the full pipeline and returns phase timings, the
data behind the paper's Figure 13 preprocessing breakdown.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.aux_index import AuxiliaryIndex
from repro.core.hpat import HierarchicalPAT
from repro.core.pat import PersistentAliasTable
from repro.core.trunks import pat_trunk_size
from repro.core.weights import WeightModel
from repro.graph.temporal_graph import TemporalGraph
from repro.sampling.alias import build_alias_arrays_batch
from repro.telemetry import NULL_TRACER


@dataclass
class ConstructionReport:
    """Phase timings of one preprocessing run (Figure 13's quantities)."""

    workers: int = 1
    candidate_search_seconds: float = 0.0
    weight_seconds: float = 0.0
    index_build_seconds: float = 0.0
    aux_index_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.candidate_search_seconds
            + self.weight_seconds
            + self.index_build_seconds
            + self.aux_index_seconds
        )

    def snapshot(self) -> Dict[str, float]:
        return {
            "workers": self.workers,
            "candidate_search_s": self.candidate_search_seconds,
            "weights_s": self.weight_seconds,
            "index_build_s": self.index_build_seconds,
            "aux_index_s": self.aux_index_seconds,
            "total_s": self.total_seconds,
        }


# ---------------------------------------------------------------------------
# Phase 1: candidate edge set search
# ---------------------------------------------------------------------------

def search_candidate_sets(graph: TemporalGraph, workers: int = 1) -> np.ndarray:
    """Per-edge |Γt(v)| for every edge (u, v, t), CSR-ordered.

    With ``workers > 1`` the edge range is chunked across a thread pool;
    each chunk is an independent vectorised searchsorted (the per-in-edge
    independence the paper exploits).
    """
    m = graph.num_edges
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    if workers <= 1:
        return graph.candidate_counts_per_edge()
    # Same offset-key trick as candidate_counts_per_edge, with the query
    # side chunked across a thread pool (searchsorted releases the GIL,
    # so this is the real data parallelism of the paper's Section 4.2).
    neg = graph._neg_etime
    span = 4.0 * float(max(1.0, np.ptp(neg)))
    base = float(neg.min())
    seg_of_edge = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
    keys = (neg - base) + seg_of_edge * span
    out = np.empty(m, dtype=np.int64)
    bounds = np.linspace(0, m, workers + 1, dtype=np.int64)

    def task(lo: int, hi: int) -> None:
        qval = (-graph.etime[lo:hi] - base) + graph.nbr[lo:hi] * span
        out[lo:hi] = np.searchsorted(keys, qval, side="left") - graph.indptr[
            graph.nbr[lo:hi]
        ]

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(task, int(bounds[i]), int(bounds[i + 1]))
            for i in range(workers)
        ]
        for f in futures:
            f.result()
    return out


# ---------------------------------------------------------------------------
# Phase 2 helpers: per-vertex prefix sums
# ---------------------------------------------------------------------------

def _validate_weights(graph: TemporalGraph, weights: np.ndarray) -> np.ndarray:
    """Reject weight arrays that would silently corrupt the indices.

    Prefix sums require non-negative, finite weights; a negative value
    would make the CDF non-monotone and the alias construction wrong in
    ways no sampler would surface loudly.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ValueError(
            f"weights must have one entry per edge "
            f"({graph.num_edges}), got shape {weights.shape}"
        )
    if weights.size and not np.all(np.isfinite(weights)):
        raise ValueError("edge weights must be finite")
    if weights.size and weights.min() < 0:
        raise ValueError("edge weights must be non-negative")
    return weights


def _prefix_chunk(indptr: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Per-vertex prefix sums for one rebased chunk (leading 0 per vertex)."""
    n = indptr.size - 1
    c = np.zeros(weights.size + n, dtype=np.float64)
    for v in range(n):
        lo, hi = indptr[v], indptr[v + 1]
        if hi > lo:
            base = lo + v
            np.cumsum(weights[lo:hi], out=c[base + 1 : base + 1 + (hi - lo)])
    return c


def build_prefix_array(
    graph: TemporalGraph,
    weights: np.ndarray,
    workers: int = 1,
    backend: str = "thread",
) -> np.ndarray:
    """Flat per-vertex prefix sums: vertex v's segment of d+1 entries
    starts at ``indptr[v] + v`` with a leading 0.

    Computed segment-by-segment (not by differencing a global cumsum) so
    tiny exponential weights keep full relative precision. The layout is
    vertex-contiguous, so parallel chunks concatenate exactly.
    """
    n = graph.num_vertices
    if workers <= 1 or n < 2 * workers:
        return _prefix_chunk(graph.indptr, weights)
    chunks = [(indptr, w) for _, indptr, w in _chunk_args(graph, weights, workers)]
    pool_cls = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    with pool_cls(max_workers=workers) as pool:
        parts = list(pool.map(_prefix_chunk, *zip(*chunks)))
    return np.concatenate(parts)


# ---------------------------------------------------------------------------
# PAT construction
# ---------------------------------------------------------------------------

def build_pat(
    graph: TemporalGraph,
    weights: np.ndarray,
    trunk_size: Optional[int] = None,
    workers: int = 1,
) -> PersistentAliasTable:
    """Build a :class:`PersistentAliasTable`.

    ``trunk_size=None`` applies the paper's in-memory rule
    (⌊√d⌋ per vertex); an integer forces a uniform trunk size (the
    out-of-core configuration, e.g. 10 for twitter under 16 GB).
    """
    n, m = graph.num_vertices, graph.num_edges
    weights = _validate_weights(graph, weights)
    degrees = graph.degrees()
    if trunk_size is None:
        trunk_sizes = np.maximum(1, np.floor(np.sqrt(np.maximum(degrees, 1))).astype(np.int64))
    else:
        if trunk_size < 1:
            raise ValueError("trunk_size must be >= 1")
        trunk_sizes = np.full(n, int(trunk_size), dtype=np.int64)
    c = build_prefix_array(graph, weights, workers=workers)
    prob = np.ones(m, dtype=np.float64)
    alias = np.zeros(m, dtype=np.int64)
    if m:
        alias[:] = np.arange(m) - np.repeat(graph.indptr[:-1], degrees)

    # Batch complete trunks by trunk width so the lock-step builder handles
    # each width in one shot. Positions are precomputed → disjoint writes.
    for ts in np.unique(trunk_sizes):
        ts = int(ts)
        if ts == 1:
            continue  # single-edge trunks: identity alias, already set
        vs = np.flatnonzero((trunk_sizes == ts) & (degrees >= ts))
        if not vs.size:
            continue
        counts = degrees[vs] // ts  # complete trunks per vertex
        covered = counts * ts
        starts = np.repeat(graph.indptr[vs], covered)
        within = _segment_aranges(covered)
        pos = starts + within
        rows = weights[pos].reshape(-1, ts)
        row_sums = rows.sum(axis=1)
        dead = row_sums <= 0
        if np.any(dead):
            rows = rows.copy()
            rows[dead] = 1.0  # never selected by ITS; keep builder happy
        p, a = build_alias_arrays_batch(rows)
        prob[pos] = p.ravel()
        alias[pos] = a.ravel()
    return PersistentAliasTable(graph.indptr, c, prob, alias, trunk_sizes)


def _segment_aranges(lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(len_i)`` for every segment, vectorised."""
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(ends - lengths, lengths)
    return out


# ---------------------------------------------------------------------------
# HPAT construction
# ---------------------------------------------------------------------------

def hpat_layout(degrees: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    """Precompute the flat layout of all level tables (the lock-free map).

    Returns ``(lvl_base, lvl_ptr, total_entries)`` where vertex v's level-k
    (k ≥ 1) tables start at ``lvl_ptr[lvl_base[v] + k - 1]`` in the flat
    ``prob``/``alias`` arrays. Level counts per vertex are
    K_v = bit_length(d_v) - 1 (levels 1..K_v; level 0 is implicit).
    """
    n = degrees.size
    kv = np.zeros(n, dtype=np.int64)
    nz = degrees > 0
    if np.any(nz):
        kv[nz] = np.floor(np.log2(degrees[nz])).astype(np.int64)
    lvl_base = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(kv, out=lvl_base[1:])
    total_slots = int(lvl_base[-1])
    widths = np.zeros(total_slots, dtype=np.int64)
    # widths laid out (v asc, k = 1..K_v): width = (d >> k) << k
    for v in np.flatnonzero(kv):
        d = int(degrees[v])
        base = lvl_base[v]
        for k in range(1, int(kv[v]) + 1):
            widths[base + k - 1] = (d >> k) << k
    lvl_ptr = np.zeros(total_slots, dtype=np.int64)
    if total_slots:
        np.cumsum(widths[:-1], out=lvl_ptr[1:])
    return lvl_base, lvl_ptr, int(widths.sum())


def _hpat_fill_chunk(degrees: np.ndarray, indptr: np.ndarray,
                     weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Build the flat level tables for one contiguous vertex chunk.

    ``indptr`` is rebased so edge 0 of the chunk is ``weights[0]``. Module
    level (not a closure) so the process backend can pickle it. Returns
    the chunk's ``(prob, alias)`` flat arrays in the standard layout —
    vertex-contiguous, so chunks concatenate into the global arrays.
    """
    lvl_base, lvl_ptr, total = hpat_layout(degrees)
    prob = np.ones(total, dtype=np.float64)
    alias = np.zeros(total, dtype=np.int64)
    max_k = int(degrees.max()).bit_length() - 1 if degrees.size and degrees.max() else 0
    for k in range(1, max_k + 1):
        width_k = 1 << k
        vs = np.flatnonzero(degrees >= width_k)
        if not vs.size:
            continue
        covered = (degrees[vs] >> k) << k
        src = np.repeat(indptr[vs], covered) + _segment_aranges(covered)
        rows = weights[src].reshape(-1, width_k)
        row_sums = rows.sum(axis=1)
        dead = row_sums <= 0
        if np.any(dead):
            rows = rows.copy()
            rows[dead] = 1.0
        p, a = build_alias_arrays_batch(rows)
        dest = np.repeat(lvl_ptr[lvl_base[vs] + k - 1], covered) + _segment_aranges(covered)
        prob[dest] = p.ravel()
        alias[dest] = a.ravel()
    return prob, alias


def _chunk_args(graph: TemporalGraph, weights: np.ndarray, workers: int):
    """Split vertices into ``workers`` contiguous chunks with rebased CSR."""
    bounds = np.linspace(0, graph.num_vertices, workers + 1, dtype=np.int64)
    out = []
    degrees = graph.degrees()
    for i in range(workers):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        e_lo, e_hi = int(graph.indptr[lo]), int(graph.indptr[hi])
        out.append(
            (
                degrees[lo:hi],
                graph.indptr[lo : hi + 1] - e_lo,
                weights[e_lo:e_hi],
            )
        )
    return out


def build_hpat(
    graph: TemporalGraph,
    weights: np.ndarray,
    with_aux_index: bool = True,
    workers: int = 1,
    aux: Optional[AuxiliaryIndex] = None,
    backend: str = "thread",
) -> HierarchicalPAT:
    """Build a :class:`HierarchicalPAT` (optionally with auxiliary index).

    ``backend`` selects the parallel executor for ``workers > 1``:
    ``"thread"`` shares memory (numpy kernels release the GIL, the
    lock-step alias loop does not); ``"process"`` forks true workers —
    the configuration matching the paper's 16-thread C++ scaling — at the
    cost of shipping each chunk's arrays across the fork boundary.
    Results are bit-identical across backends and worker counts (the
    layout is precomputed, so every chunk writes disjoint ranges).
    """
    weights = _validate_weights(graph, weights)
    degrees = graph.degrees()
    c = build_prefix_array(graph, weights, workers=workers, backend=backend)
    lvl_base, lvl_ptr, _ = hpat_layout(degrees)

    if workers <= 1 or graph.num_vertices < 2 * workers:
        prob, alias = _hpat_fill_chunk(degrees, graph.indptr, weights)
    else:
        chunks = _chunk_args(graph, weights, workers)
        pool_cls = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            parts = list(pool.map(_hpat_fill_chunk, *zip(*chunks)))
        prob = np.concatenate([p for p, _ in parts]) if parts else np.zeros(0)
        alias = np.concatenate([a for _, a in parts]) if parts else np.zeros(0, np.int64)

    if aux is None and with_aux_index:
        aux = AuxiliaryIndex(int(degrees.max()) if degrees.size else 0)
    return HierarchicalPAT(graph.indptr, c, prob, alias, lvl_ptr, lvl_base, aux)


# ---------------------------------------------------------------------------
# Full pipeline with phase timing (Figure 13)
# ---------------------------------------------------------------------------

@dataclass
class Preprocessed:
    """Everything the TEA runtime needs, plus how long each phase took."""

    index: object
    weights: np.ndarray
    candidate_sizes: np.ndarray
    report: ConstructionReport


def preprocess(
    graph: TemporalGraph,
    weight_model: WeightModel,
    structure: str = "hpat",
    with_aux_index: bool = True,
    workers: int = 1,
    trunk_size: Optional[int] = None,
    backend: str = "thread",
    tracer=None,
) -> Preprocessed:
    """Run the full preprocessing pipeline with per-phase timing.

    ``structure`` ∈ {"hpat", "pat", "its"}; ``backend`` ∈ {"thread",
    "process"} selects the executor for ``workers > 1`` (see
    :func:`build_hpat`). ``tracer`` is an optional
    :class:`repro.telemetry.Tracer`; each phase becomes a child span of
    the caller's open ``prepare`` span.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    report = ConstructionReport(workers=workers)

    t0 = time.perf_counter()
    with tracer.span("prepare.candidate_search", edges=graph.num_edges):
        candidate_sizes = search_candidate_sets(graph, workers=workers)
    report.candidate_search_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    with tracer.span("prepare.weights", kind=weight_model.kind):
        weights = weight_model.compute(graph)
    report.weight_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    with tracer.span("prepare.index_build", structure=structure, workers=workers):
        if structure == "hpat":
            index = build_hpat(graph, weights, with_aux_index=False, workers=workers, backend=backend)
        elif structure == "pat":
            index = build_pat(graph, weights, trunk_size=trunk_size, workers=workers)
        elif structure == "its":
            from repro.core.its_index import ITSIndex

            index = ITSIndex(
                graph.indptr,
                build_prefix_array(graph, weights, workers=workers, backend=backend),
            )
        else:
            raise ValueError(f"unknown structure {structure!r}")
    report.index_build_seconds = time.perf_counter() - t0

    if structure == "hpat" and with_aux_index:
        t0 = time.perf_counter()
        with tracer.span("prepare.aux_index", max_degree=int(graph.max_degree())):
            index.aux = AuxiliaryIndex(graph.max_degree())
        report.aux_index_seconds = time.perf_counter() - t0

    return Preprocessed(index=index, weights=weights, candidate_sizes=candidate_sizes, report=report)
