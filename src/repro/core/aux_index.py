"""Auxiliary index: O(1) lookup of the trunks covering a candidate set.

During HPAT sampling the engine must find which trunks compose a
candidate prefix of size s — naively O(log D) of bit/boundary work per
step. Since the decomposition depends only on *s* (and s ≤ D), the paper
precomputes it for every possible size (Section 3.4), reducing trunk
finding to a table lookup.

Layout: one flat pair of arrays holds every decomposition back to back;
``indptr[s-1] : indptr[s]`` (popcount(s) entries) gives size s's blocks as
``levels`` (the k of each trunk, descending) and ``cuts`` (cumulative
boundaries — for s = 7: cuts [4, 6, 7], levels [2, 1, 0]).

Total entries are Σ popcount(s) ≈ D·log2(D)/2, so the index is capped at
``max_precomputed`` sizes; rarer larger candidate sets fall back to the
on-the-fly decomposition (and the fallback is counted, so experiments can
verify the cap never distorts results at evaluation scale).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.trunks import binary_decompose

DEFAULT_PRECOMPUTE_CAP = 1 << 20


def _popcount(a: np.ndarray) -> np.ndarray:
    """Per-element population count for non-negative int64 arrays."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(a).astype(np.int64)
    x = a.astype(np.uint64)
    x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
    x = (x & np.uint64(0x3333333333333333)) + ((x >> np.uint64(2)) & np.uint64(0x3333333333333333))
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((x * np.uint64(0x0101010101010101)) >> np.uint64(56)).astype(np.int64)


class AuxiliaryIndex:
    """Precomputed binary decompositions for candidate sizes 1..max_size."""

    __slots__ = ("max_size", "indptr", "levels", "cuts", "fallback_lookups")

    def __init__(self, max_size: int, precompute_cap: int = DEFAULT_PRECOMPUTE_CAP):
        self.max_size = int(min(max(max_size, 0), precompute_cap))
        self.fallback_lookups = 0
        sizes = np.arange(1, self.max_size + 1, dtype=np.int64)
        pops = _popcount(sizes) if sizes.size else np.zeros(0, dtype=np.int64)
        self.indptr = np.zeros(self.max_size + 1, dtype=np.int64)
        np.cumsum(pops, out=self.indptr[1:])
        total = int(self.indptr[-1])
        self.levels = np.empty(total, dtype=np.int8)
        self.cuts = np.empty(total, dtype=np.int64)
        if total:
            # Fill both arrays one bit-position at a time, fully vectorised.
            # For size s, the block at bit k sits at slot popcount(s >> (k+1))
            # within s's entry (blocks are ordered from the highest bit) and
            # its cumulative boundary is (s >> k) << k.
            max_bit = int(sizes[-1]).bit_length() - 1
            for k in range(max_bit, -1, -1):
                has = (sizes >> k) & 1 == 1
                s_k = sizes[has]
                if not s_k.size:
                    continue
                slot = self.indptr[s_k - 1] + _popcount(s_k >> (k + 1))
                self.levels[slot] = k
                self.cuts[slot] = (s_k >> k) << k
        self.levels.setflags(write=False)
        self.cuts.setflags(write=False)
        self.indptr.setflags(write=False)

    def lookup(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(levels, cuts)`` of the decomposition of a candidate prefix.

        O(1) (two slice views) for sizes within the precomputed range;
        falls back to computing the decomposition for oversized requests.
        """
        if 1 <= size <= self.max_size:
            lo, hi = self.indptr[size - 1], self.indptr[size]
            return self.levels[lo:hi], self.cuts[lo:hi]
        self.fallback_lookups += 1
        blocks = binary_decompose(size)
        levels = np.array([k for k, _ in blocks], dtype=np.int8)
        cuts = np.array([off + (1 << k) for k, off in blocks], dtype=np.int64)
        return levels, cuts

    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.levels.nbytes + self.cuts.nbytes)

    def __repr__(self) -> str:
        return f"AuxiliaryIndex(max_size={self.max_size}, entries={self.levels.size})"
