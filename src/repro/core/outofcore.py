"""Out-of-core PAT execution (paper Sections 3.2, 4.1, Figure 14).

When the index cannot fit in memory TEA falls back from HPAT to the
smaller PAT and keeps only the *trunk-granularity* prefix sums resident
(size |E| / trunkSize); the per-trunk alias tables and per-edge prefix
sums live on disk and are loaded per sampling step:

* complete trunk selected → load that trunk's alias table
  (O(trunkSize) bytes of I/O);
* draw lands in the partial trunk → load that trunk's slice of the
  per-edge prefix-sum array and ITS inside it.

Either way a step reads O(trunkSize) bytes — versus GraphWalker's O(D)
(it must load the vertex's whole neighbor list to rebuild the dynamic
distribution). That I/O asymmetry is the entire story of Figure 14.

:class:`TrunkStore` persists a built PAT to three flat binary files and
reopens them as memory-maps; every access is accounted through
:class:`~repro.sampling.counters.CostCounters` in I/O blocks so the
benchmark reports a machine-independent I/O volume alongside wall time.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.pat import PersistentAliasTable
from repro.exceptions import EmptyCandidateSetError
from repro.sampling.alias import alias_draw
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import draw_in_range, its_search

PathLike = Union[str, os.PathLike]


class TrunkStore:
    """Disk-resident PAT payload: per-edge prefix sums + alias arrays.

    ``persist`` writes ``c.bin``, ``prob.bin`` and ``alias.bin`` into a
    directory; ``open`` maps them read-only. The maps are accessed only in
    trunk-sized slices by :class:`OutOfCorePAT`, which accounts each
    access as disk I/O.
    """

    def __init__(self, directory: PathLike, cache_bytes: int = 0):
        self.directory = Path(directory)
        self._c: Optional[np.memmap] = None
        self._prob: Optional[np.memmap] = None
        self._alias: Optional[np.memmap] = None
        # Paper §4.1's re-entry optimisation: reuse prior loaded data.
        from repro.core.block_cache import BlockCache
        from repro.telemetry import BYTES_BUCKETS, Histogram

        self.cache = BlockCache(cache_bytes)
        # Standalone histogram of bytes per trunk load (cache misses
        # only); merged into a run's registry by publish_telemetry.
        self.read_bytes_hist = Histogram(
            "ooc.trunk_read_bytes", "bytes per trunk payload load", **BYTES_BUCKETS
        )

    @classmethod
    def persist(cls, pat: PersistentAliasTable, directory: PathLike,
                cache_bytes: int = 0) -> "TrunkStore":
        store = cls(directory, cache_bytes=cache_bytes)
        store.directory.mkdir(parents=True, exist_ok=True)
        pat.c.astype(np.float64).tofile(store.directory / "c.bin")
        pat.prob.astype(np.float64).tofile(store.directory / "prob.bin")
        pat.alias.astype(np.int64).tofile(store.directory / "alias.bin")
        return store

    def open(self) -> "TrunkStore":
        self._c = np.memmap(self.directory / "c.bin", dtype=np.float64, mode="r")
        self._prob = np.memmap(self.directory / "prob.bin", dtype=np.float64, mode="r")
        self._alias = np.memmap(self.directory / "alias.bin", dtype=np.int64, mode="r")
        return self

    def close(self) -> None:
        self._c = self._prob = self._alias = None

    def __enter__(self) -> "TrunkStore":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounted reads ------------------------------------------------------

    def read_c(self, lo: int, hi: int, counters: Optional[CostCounters]) -> np.ndarray:
        cached = self.cache.get(("c", lo, hi))
        if cached is not None:
            return cached
        if counters is not None:
            counters.record_io((hi - lo) * 8)
        self.read_bytes_hist.observe((hi - lo) * 8)
        block = np.asarray(self._c[lo:hi])
        self.cache.put(("c", lo, hi), block)
        return block

    def read_alias_trunk(self, lo: int, hi: int, counters: Optional[CostCounters]):
        cached = self.cache.get(("pa", lo, hi))
        if cached is not None:
            return cached
        if counters is not None:
            counters.record_io((hi - lo) * 16)  # prob + alias
        self.read_bytes_hist.observe((hi - lo) * 16)
        block = (np.asarray(self._prob[lo:hi]), np.asarray(self._alias[lo:hi]))
        self.cache.put(("pa", lo, hi), block)
        return block

    def publish_telemetry(self, registry) -> None:
        """Cache hit/miss/bytes counters plus the trunk-load histogram."""
        self.cache.stats.publish(registry, prefix="cache")
        registry.gauge("cache.resident_bytes", "bytes held by the cache").set(
            self.cache.nbytes
        )
        registry.histogram(
            "ooc.trunk_read_bytes", self.read_bytes_hist.help,
            start=self.read_bytes_hist.start,
            growth=self.read_bytes_hist.growth,
            buckets=len(self.read_bytes_hist.bounds),
        ).merge_from(self.read_bytes_hist)


class OutOfCorePAT:
    """PAT sampling with trunk payloads on disk.

    Memory-resident state is exactly what the paper keeps: per-vertex
    trunk sizes and the prefix sums *at trunk boundaries*
    (|E|/trunkSize + |V| floats). Same-seed draws match the in-memory
    :class:`PersistentAliasTable` exactly (tested), because the sampling
    logic consumes randomness identically — only the storage tier of each
    array differs.
    """

    __slots__ = ("indptr", "trunk_sizes", "tr_indptr", "tr_prefix", "store")

    def __init__(self, pat: PersistentAliasTable, store: TrunkStore):
        self.indptr = pat.indptr
        self.trunk_sizes = pat.trunk_sizes
        self.store = store
        # Trunk-boundary prefix sums, flat per vertex: vertex v has
        # nt_v = ceil(d/ts) + 1 boundary values (0, C[ts], C[2ts], ..., C[d]).
        n = self.indptr.size - 1
        degrees = np.diff(self.indptr)
        nt = np.zeros(n, dtype=np.int64)
        nz = degrees > 0
        nt[nz] = -(-degrees[nz] // self.trunk_sizes[nz]) + 1
        self.tr_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(nt, out=self.tr_indptr[1:])
        self.tr_prefix = np.zeros(int(self.tr_indptr[-1]), dtype=np.float64)
        for v in np.flatnonzero(nz):
            d = int(degrees[v])
            ts = int(self.trunk_sizes[v])
            base = int(self.indptr[v] + v)  # c-layout base
            bounds = np.minimum(np.arange(0, nt[v]) * ts, d)
            self.tr_prefix[self.tr_indptr[v] : self.tr_indptr[v + 1]] = pat.c[base + bounds]

    def resident_nbytes(self) -> int:
        """Bytes held in memory (what Figure 14's 16 GB budget constrains)."""
        return int(
            self.tr_prefix.nbytes
            + self.tr_indptr.nbytes
            + self.trunk_sizes.nbytes
            + self.indptr.nbytes
        )

    def candidate_weight(self, v: int, candidate_size: int, counters=None) -> float:
        """Total weight of the candidate prefix (may need one disk read)."""
        ts = int(self.trunk_sizes[v])
        if candidate_size % ts == 0:
            return float(self.tr_prefix[self.tr_indptr[v] + candidate_size // ts])
        base = int(self.indptr[v] + v)
        return float(self.store.read_c(base + candidate_size, base + candidate_size + 1, counters)[0])

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Sample an edge index in ``[0, candidate_size)`` of vertex v.

        Mirrors :meth:`PersistentAliasTable.sample` draw for draw, with
        trunk payloads read (and accounted) from the store.
        """
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError(f"vertex {v}: empty candidate set")
        ts = int(self.trunk_sizes[v])
        full = s // ts
        tb = self.tr_indptr[v]
        cbase = int(self.indptr[v] + v)
        if s % ts == 0:
            total = float(self.tr_prefix[tb + full])
        else:
            # The candidate boundary falls inside the partial trunk: its
            # exact prefix weight lives on disk.
            total = float(self.store.read_c(cbase + s, cbase + s + 1, counters)[0])
        if not (total > 0):
            raise EmptyCandidateSetError(f"vertex {v}: zero-weight candidate set")
        r = draw_in_range(rng, 0.0, total)
        full_weight = float(self.tr_prefix[tb + full])
        if full and r <= full_weight:
            lo_j, hi_j = 0, full
            while hi_j - lo_j > 1:
                mid = (lo_j + hi_j) // 2
                if counters is not None:
                    counters.record_probe()
                if self.tr_prefix[tb + mid] < r:
                    lo_j = mid
                else:
                    hi_j = mid
            trunk = lo_j
            edge_lo = int(self.indptr[v]) + trunk * ts
            prob, alias = self.store.read_alias_trunk(edge_lo, edge_lo + ts, counters)
            local = alias_draw(prob, alias, rng, 0, ts, counters)
            return trunk * ts + int(local)
        if counters is not None:
            counters.record_probe()
        c_slice = self.store.read_c(cbase + full * ts, cbase + s + 1, counters)
        return full * ts + (its_search(c_slice, r, 0, s - full * ts, counters))
