"""Out-of-core PAT execution (paper Sections 3.2, 4.1, Figure 14).

When the index cannot fit in memory TEA falls back from HPAT to the
smaller PAT and keeps only the *trunk-granularity* prefix sums resident
(size |E| / trunkSize); the per-trunk alias tables and per-edge prefix
sums live on disk and are loaded per sampling step:

* complete trunk selected → load that trunk's alias table
  (O(trunkSize) bytes of I/O);
* draw lands in the partial trunk → load that trunk's slice of the
  per-edge prefix-sum array and ITS inside it.

Either way a step reads O(trunkSize) bytes — versus GraphWalker's O(D)
(it must load the vertex's whole neighbor list to rebuild the dynamic
distribution). That I/O asymmetry is the entire story of Figure 14.

:class:`TrunkStore` persists a built PAT to three flat binary files and
reopens them as memory-maps; every access is accounted through
:class:`~repro.sampling.counters.CostCounters` in I/O blocks so the
benchmark reports a machine-independent I/O volume alongside wall time.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.pat import PersistentAliasTable
from repro.exceptions import ChecksumError, EmptyCandidateSetError
from repro.sampling.alias import alias_draw
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import draw_in_range, its_search
from repro.telemetry import events

PathLike = Union[str, os.PathLike]

#: Logical bytes per entry of each store region: per-edge prefix sums
#: ("c", one float64) and alias-table trunks ("pa", prob + alias).
_REGION_WIDTH = {"c": 8, "pa": 16}

#: Elements (all store files use 8-byte elements) per checksum page:
#: 1024 elements = 8 KiB pages, fine-grained enough to localise a
#: corrupt trunk, coarse enough that the manifest stays tiny.
CHECKSUM_PAGE_ELEMS = 1024

#: Bytes per element of every store file (float64 / int64 throughout).
_ELEM_BYTES = 8

_CHECKSUM_MANIFEST = "checksums.json"

#: Files backing each logical region, in slice order.
_REGION_FILES = {"c": ("c",), "pa": ("prob", "alias")}


def _crc_pages(data: bytes, page_bytes: int) -> np.ndarray:
    """CRC32 of each fixed-size page of ``data`` (last page may be short)."""
    view = memoryview(data)
    n = (len(view) + page_bytes - 1) // page_bytes
    out = np.empty(max(n, 0), dtype=np.uint32)
    for k in range(n):
        out[k] = zlib.crc32(view[k * page_bytes : (k + 1) * page_bytes])
    return out


def coalesce_runs(ranges):
    """Merge lo-ascending ``(lo, hi, tag)`` ranges into maximal runs.

    Overlapping or exactly adjacent ranges (``next.lo <= run.hi``) join
    the current run. Yields ``(run_lo, run_hi, [tags...])`` triples —
    each run is one backing read whose union covers every member range.
    """
    run_lo = run_hi = None
    members: list = []
    for lo, hi, tag in ranges:
        if run_lo is None:
            run_lo, run_hi, members = lo, hi, [tag]
        elif lo <= run_hi:
            run_hi = max(run_hi, hi)
            members.append(tag)
        else:
            yield run_lo, run_hi, members
            run_lo, run_hi, members = lo, hi, [tag]
    if run_lo is not None:
        yield run_lo, run_hi, members


class TrunkStore:
    """Disk-resident PAT payload: per-edge prefix sums + alias arrays.

    ``persist`` writes ``c.bin``, ``prob.bin`` and ``alias.bin`` into a
    directory; ``open`` maps them read-only. The maps are accessed only in
    trunk-sized slices by :class:`OutOfCorePAT`, which accounts each
    access as disk I/O.

    Two read paths share one accounting discipline (:meth:`_read_region`):
    the scalar per-step reads (``read_c`` / ``read_alias_trunk``) and the
    batched frontier path (:meth:`read_batch`), which serves a whole
    step's ranges at once and **coalesces** adjacent/overlapping misses
    into single large backing reads — strictly fewer read operations for
    the same logical bytes. The async prefetcher's bookkeeping
    (issued/hit/wasted conservation, pin lifetimes) also lives here so
    every counter is mutated from the sampling thread only.
    """

    def __init__(self, directory: PathLike, cache_bytes: int = 0,
                 retry_policy=None, verify_checksums: bool = False,
                 fault_injector=None):
        self.directory = Path(directory)
        self._c: Optional[np.memmap] = None
        self._prob: Optional[np.memmap] = None
        self._alias: Optional[np.memmap] = None
        #: Resilience wiring (see :mod:`repro.resilience`): transient
        #: read failures retry under ``retry_policy``; when
        #: ``verify_checksums`` every load is page-CRC-verified against
        #: the persisted manifest; ``fault_injector`` hooks the
        #: ``trunk_read`` site into every backing load.
        self.retry_policy = retry_policy
        self.verify_checksums = bool(verify_checksums)
        self.fault_injector = fault_injector
        self.io_retries = 0
        self._retry_lock = threading.Lock()
        self._crc: Optional[dict] = None
        self._page_elems = CHECKSUM_PAGE_ELEMS
        # Paper §4.1's re-entry optimisation: reuse prior loaded data.
        from repro.core.block_cache import BlockCache
        from repro.telemetry import BYTES_BUCKETS, Histogram

        self.cache = BlockCache(cache_bytes, on_evict=self._on_evict)
        # Phase attribution (ooc.cache / ooc.read / ooc.decode): NULL by
        # default; the owning engine routes its run profiler here. Only
        # the sampling thread's accounted reads charge phases — the
        # prefetch worker calls _load directly and stays profiler-free
        # (the profiler stack is single-threaded by design).
        from repro.telemetry import NULL_PROFILER

        self.profiler = NULL_PROFILER
        # Standalone histogram of bytes per trunk load (cache misses
        # only); merged into a run's registry by publish_telemetry.
        self.read_bytes_hist = Histogram(
            "ooc.trunk_read_bytes", "bytes per trunk payload load", **BYTES_BUCKETS
        )
        # Bytes per *backing* read after coalescing (batched path and
        # prefetcher only — scalar reads are their own backing reads).
        self.coalesced_hist = Histogram(
            "ooc.coalesced_read_bytes", "bytes per coalesced backing read",
            **BYTES_BUCKETS,
        )
        #: Backing-store read operations (cache misses + prefetch runs).
        #: The coalescing win is this number shrinking, not io_bytes.
        self.read_ops = 0
        # -- prefetch bookkeeping (sampling-thread only) ----------------
        # key -> admission generation; a key leaves exactly once, into
        # hits (consumed), or wasted (evicted unused / unused at exit).
        self._prefetch_pending: dict = {}
        self._prefetch_gen = 0
        self.prefetch_enabled = False
        self.prefetch_issued = 0
        self.prefetch_hits = 0
        self.prefetch_wasted = 0
        self.prefetch_in_flight = 0
        self.prefetch_overlap_seconds = 0.0
        # Dropped submissions (queue full) and worker failures never
        # enter the issued ledger; they get their own visible counters.
        self.prefetch_dropped = 0
        self.prefetch_failures = 0

    @classmethod
    def persist(cls, pat: PersistentAliasTable, directory: PathLike,
                cache_bytes: int = 0, **kwargs) -> "TrunkStore":
        store = cls(directory, cache_bytes=cache_bytes, **kwargs)
        store.directory.mkdir(parents=True, exist_ok=True)
        page_bytes = CHECKSUM_PAGE_ELEMS * _ELEM_BYTES
        manifest = {
            "version": 1,
            "algorithm": "crc32",
            "page_elems": CHECKSUM_PAGE_ELEMS,
            "files": {},
        }
        arrays = {
            "c": pat.c.astype(np.float64),
            "prob": pat.prob.astype(np.float64),
            "alias": pat.alias.astype(np.int64),
        }
        for name, arr in arrays.items():
            arr.tofile(store.directory / f"{name}.bin")
            # Per-page CRC32 sidecar: the integrity ground truth that
            # verified reads and ``repro scrub`` check against.
            _crc_pages(arr.tobytes(), page_bytes).tofile(
                store.directory / f"{name}.crc"
            )
            manifest["files"][name] = int(arr.size)
        (store.directory / _CHECKSUM_MANIFEST).write_text(json.dumps(manifest))
        return store

    def open(self) -> "TrunkStore":
        self._c = np.memmap(self.directory / "c.bin", dtype=np.float64, mode="r")
        self._prob = np.memmap(self.directory / "prob.bin", dtype=np.float64, mode="r")
        self._alias = np.memmap(self.directory / "alias.bin", dtype=np.int64, mode="r")
        manifest_path = self.directory / _CHECKSUM_MANIFEST
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            self._page_elems = int(manifest.get("page_elems", CHECKSUM_PAGE_ELEMS))
            self._crc = {
                name: np.fromfile(self.directory / f"{name}.crc", dtype=np.uint32)
                for name in ("c", "prob", "alias")
                if (self.directory / f"{name}.crc").exists()
            }
        if self.verify_checksums and not self._crc:
            raise ChecksumError(
                f"checksum verification requested but {self.directory} has "
                f"no checksum manifest (store persisted by an older version?)",
                path=manifest_path,
            )
        return self

    def close(self) -> None:
        self._c = self._prob = self._alias = None

    def __enter__(self) -> "TrunkStore":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounted reads ------------------------------------------------------

    def _region_maps(self, region: str):
        return (self._c,) if region == "c" else (self._prob, self._alias)

    def _load(self, region: str, lo: int, hi: int):
        """Copy a region slice out of the memory-maps (no accounting).

        Returns owned arrays, never memmap views: cached blocks must
        stay valid after :meth:`close` and must not pin the maps' pages.
        The prefetch worker calls this off-thread — it touches only the
        read-only maps, never the cache or any counter (``io_retries``
        is the one exception, incremented under its own lock).

        Resilience wiring: transient failures (including injected
        ``io_error`` faults) retry under :attr:`retry_policy`; when
        :attr:`verify_checksums` is set the load is page-aligned and
        every covered page's CRC32 is checked against the persisted
        manifest, raising :class:`ChecksumError` on mismatch.
        """
        if self.retry_policy is None:
            return self._load_once(region, lo, hi)
        return self.retry_policy.call(
            self._load_once, region, lo, hi, on_retry=self._on_io_retry
        )

    def _on_io_retry(self, attempt: int, exc: BaseException) -> None:
        with self._retry_lock:
            self.io_retries += 1
        events.emit("io.retry", site="trunk_read", attempt=int(attempt),
                    error=type(exc).__name__)

    def _load_once(self, region: str, lo: int, hi: int):
        token = None
        if self.fault_injector is not None:
            token = self.fault_injector.check("trunk_read")
        if not self.verify_checksums and token is None:
            if region == "c":
                return np.array(self._c[lo:hi])
            return (np.array(self._prob[lo:hi]), np.array(self._alias[lo:hi]))
        return self._load_checked(region, lo, hi, token)

    def _load_checked(self, region: str, lo: int, hi: int, token):
        """Verified (and/or fault-corrupted) load of one region slice.

        When verifying, the read widens to page boundaries so whole
        pages can be CRC-checked; injected corruption lands on the
        loaded copy *before* verification, which is exactly how real
        bit rot between persist and read presents.
        """
        names = _REGION_FILES[region]
        page = self._page_elems
        out = []
        for which, (name, mm) in enumerate(zip(names, self._region_maps(region))):
            if self.verify_checksums:
                plo = (lo // page) * page
                phi = min(((hi + page - 1) // page) * page, mm.size)
            else:
                plo, phi = lo, hi
            span = np.array(mm[plo:phi])
            if token is not None and which == 0 and span.size:
                buf = span.view(np.uint8)
                buf[token % buf.size] ^= np.uint8(1 << (token % 8))
            if self.verify_checksums:
                self._verify_span(name, plo, span)
            out.append(np.array(span[lo - plo : hi - plo]))
        return out[0] if region == "c" else tuple(out)

    def _verify_span(self, name: str, plo: int, span: np.ndarray) -> None:
        crc = (self._crc or {}).get(name)
        path = self.directory / f"{name}.bin"
        if crc is None:
            raise ChecksumError(
                f"no checksum sidecar for {path}", path=path
            )
        page_bytes = self._page_elems * _ELEM_BYTES
        data = span.tobytes()
        first_page = plo // self._page_elems
        for k, actual in enumerate(_crc_pages(data, page_bytes)):
            expected = int(crc[first_page + k])
            if int(actual) != expected:
                raise ChecksumError(
                    f"checksum mismatch in {path} page {first_page + k} "
                    f"(expected {expected:#010x}, got {int(actual):#010x})",
                    path=path, page=first_page + k,
                    expected=expected, actual=int(actual),
                )

    def scrub(self) -> dict:
        """Verify every page of every store file against the manifest.

        Returns a report dict with ``pages_checked``, ``corrupt`` (a
        list of ``{file, page, offset_bytes, expected, actual}``
        records), and ``clean``. Raises :class:`ChecksumError` only
        when the store has no checksum manifest at all — page
        mismatches are *reported*, not raised, so one scrub pass
        locates every corrupt page.
        """
        opened_here = self._c is None
        if opened_here:
            self.open()
        try:
            if not self._crc:
                raise ChecksumError(
                    f"{self.directory} has no checksum manifest to scrub "
                    f"against", path=self.directory / _CHECKSUM_MANIFEST,
                )
            page_bytes = self._page_elems * _ELEM_BYTES
            report = {"directory": str(self.directory), "pages_checked": 0,
                      "corrupt": [], "clean": True}
            for name in ("c", "prob", "alias"):
                mm = {"c": self._c, "prob": self._prob, "alias": self._alias}[name]
                crc = self._crc.get(name)
                if crc is None:
                    report["corrupt"].append(
                        {"file": f"{name}.bin", "page": None,
                         "reason": "missing checksum sidecar"}
                    )
                    continue
                actual = _crc_pages(np.asarray(mm).tobytes(), page_bytes)
                report["pages_checked"] += int(actual.size)
                if actual.size != crc.size:
                    # A truncated (or grown) file is corruption too.
                    report["corrupt"].append(
                        {"file": f"{name}.bin", "page": None,
                         "reason": f"page count {actual.size} != "
                                   f"manifest {crc.size} (truncated file?)"}
                    )
                n = min(actual.size, crc.size)
                for page in np.flatnonzero(actual[:n] != crc[:n]):
                    report["corrupt"].append({
                        "file": f"{name}.bin",
                        "page": int(page),
                        "offset_bytes": int(page) * page_bytes,
                        "expected": int(crc[page]),
                        "actual": int(actual[page]),
                    })
            report["clean"] = not report["corrupt"]
            return report
        finally:
            if opened_here:
                self.close()

    def _read_region(self, region: str, lo: int, hi: int,
                     counters: Optional[CostCounters]):
        """One accounted read: cache consult, then a charged miss load."""
        key = (region, lo, hi)
        with self.profiler.phase("ooc.cache"):
            cached = self.cache.get(key)
            if cached is not None:
                self._note_consumed(key)
                return cached
        nbytes = (hi - lo) * _REGION_WIDTH[region]
        if counters is not None:
            counters.record_io(nbytes)
        self.read_bytes_hist.observe(nbytes)
        self.read_ops += 1
        with self.profiler.phase("ooc.read"):
            block = self._load(region, lo, hi)
        self.cache.put(key, block)
        return block

    def read_c(self, lo: int, hi: int, counters: Optional[CostCounters]) -> np.ndarray:
        return self._read_region("c", lo, hi, counters)

    def read_alias_trunk(self, lo: int, hi: int, counters: Optional[CostCounters]):
        return self._read_region("pa", lo, hi, counters)

    def read_batch(self, region: str, los, his,
                   counters: Optional[CostCounters]):
        """Serve a whole frontier step's ranges in one accounted pass.

        Duplicate ranges collapse to one lookup; misses are sorted and
        **coalesced** — overlapping or exactly adjacent ``(lo, hi)``
        ranges become one backing read spanning their union — so a step
        needing k ranges costs at most k (and typically far fewer) read
        operations. Returns ``(blocks, inverse)`` with
        ``blocks[inverse[i]]`` the block for ``(los[i], his[i])``.
        """
        los = np.asarray(los, dtype=np.int64)
        his = np.asarray(his, dtype=np.int64)
        n = los.size
        if n == 0:
            return [], np.zeros(0, dtype=np.int64)
        # Manual unique-by-pair (np.unique(axis=0) inverse shapes vary
        # across numpy versions): lexsort puts equal pairs together and
        # misses in lo-ascending order, which coalescing needs anyway.
        order = np.lexsort((his, los))
        slo, shi = los[order], his[order]
        new = np.ones(n, dtype=bool)
        new[1:] = (slo[1:] != slo[:-1]) | (shi[1:] != shi[:-1])
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = np.cumsum(new) - 1
        uniq_lo = slo[new].tolist()
        uniq_hi = shi[new].tolist()
        width = _REGION_WIDTH[region]
        blocks: list = [None] * len(uniq_lo)
        missing = []
        cache_get = self.cache.get
        note = self._note_consumed if self._prefetch_pending else None
        profiler = self.profiler
        with profiler.phase("ooc.cache"):
            for j, (lo, hi) in enumerate(zip(uniq_lo, uniq_hi)):
                key = (region, lo, hi)
                cached = cache_get(key)
                if cached is not None:
                    if note is not None:
                        note(key)
                    blocks[j] = cached
                else:
                    missing.append(j)
        for run in coalesce_runs(
            [(uniq_lo[j], uniq_hi[j], j) for j in missing]
        ):
            run_lo, run_hi, members = run
            nbytes = (run_hi - run_lo) * width
            if counters is not None:
                counters.record_io(nbytes)
            self.coalesced_hist.observe(nbytes)
            self.read_ops += 1
            with profiler.phase("ooc.read"):
                big = self._load(region, run_lo, run_hi)
            with profiler.phase("ooc.decode"):
                for j in members:
                    lo, hi = uniq_lo[j], uniq_hi[j]
                    if region == "c":
                        block = np.array(big[lo - run_lo : hi - run_lo])
                    else:
                        block = (
                            np.array(big[0][lo - run_lo : hi - run_lo]),
                            np.array(big[1][lo - run_lo : hi - run_lo]),
                        )
                    self.read_bytes_hist.observe((hi - lo) * width)
                    self.cache.put((region, lo, hi), block)
                    blocks[j] = block
        return blocks, inverse

    # -- prefetch bookkeeping --------------------------------------------------
    # The async prefetcher (engines.tea_outofcore.prefetch) reads the
    # maps off-thread but hands every result back to the sampling thread,
    # which calls these hooks — so the cache and all counters stay
    # single-threaded. Conservation invariant (tested, exported):
    #     issued == hits + wasted + in_flight_at_exit.

    def _note_consumed(self, key) -> None:
        if self._prefetch_pending.pop(key, None) is not None:
            self.prefetch_hits += 1
            self.cache.unpin(key)

    def _on_evict(self, key) -> None:
        if self._prefetch_pending.pop(key, None) is not None:
            self.prefetch_wasted += 1

    def note_prefetch_issued(self, n: int) -> None:
        self.prefetch_enabled = True
        self.prefetch_issued += int(n)

    def note_prefetch_dropped(self, n: int) -> None:
        """A full request queue rejected ``n`` keys (never issued)."""
        self.prefetch_enabled = True
        self.prefetch_dropped += int(n)
        events.emit("prefetch.dropped", count=int(n))

    def note_prefetch_failure(self) -> None:
        """The prefetch worker raised; read-ahead is disabled for the run."""
        self.prefetch_enabled = True
        self.prefetch_failures += 1
        events.emit("prefetch.failure")

    def begin_prefetch_generation(self) -> None:
        """Unpin pending blocks from earlier steps (missed their window).

        They stay cached and still count as prefetch hits if consumed
        later — the pin, not the entry, expires. Bounds pinned bytes to
        roughly one step's predictions.
        """
        self._prefetch_gen += 1
        for key, gen in list(self._prefetch_pending.items()):
            if gen < self._prefetch_gen:
                self.cache.unpin(key)

    def admit_prefetched(self, key, value) -> None:
        """Admit one warmed block (sampling thread, at queue drain)."""
        if key in self._prefetch_pending:
            self.prefetch_wasted += 1  # duplicate arrival: redundant read
            return
        if key in self.cache:
            # The sampler got there first: the warmed copy is redundant.
            self.prefetch_wasted += 1
            return
        self.cache.put(key, value, pin=True)
        if key in self.cache:
            self._prefetch_pending[key] = self._prefetch_gen
        else:
            self.prefetch_wasted += 1  # rejected (oversized / disabled)

    def finalize_prefetch(self, in_flight: int, overlap_seconds: float) -> None:
        """Close out a run: unconsumed warm blocks become wasted."""
        self.prefetch_in_flight += int(in_flight)
        self.prefetch_overlap_seconds += float(overlap_seconds)
        for key in list(self._prefetch_pending):
            self.cache.unpin(key)
            self.prefetch_wasted += 1
        self._prefetch_pending.clear()

    def publish_telemetry(self, registry) -> None:
        """Cache hit/miss/bytes counters plus the trunk-load histogram."""
        self.cache.stats.publish(registry, prefix="cache")
        registry.gauge("cache.resident_bytes", "bytes held by the cache").set(
            self.cache.nbytes
        )
        registry.counter(
            "ooc.read_ops", "backing reads (cache misses + prefetch runs)"
        ).inc(self.read_ops)
        registry.histogram(
            "ooc.trunk_read_bytes", self.read_bytes_hist.help,
            start=self.read_bytes_hist.start,
            growth=self.read_bytes_hist.growth,
            buckets=len(self.read_bytes_hist.bounds),
        ).merge_from(self.read_bytes_hist)
        registry.histogram(
            "ooc.coalesced_read_bytes", self.coalesced_hist.help,
            start=self.coalesced_hist.start,
            growth=self.coalesced_hist.growth,
            buckets=len(self.coalesced_hist.bounds),
        ).merge_from(self.coalesced_hist)
        if self.io_retries:
            registry.counter(
                "resilience.io_retries",
                "transient trunk-store read failures retried",
            ).inc(self.io_retries)
        if self.fault_injector is not None:
            self.fault_injector.publish(registry)
        if self.prefetch_enabled:
            registry.counter(
                "prefetch.issued", "prefetch requests submitted"
            ).inc(self.prefetch_issued)
            registry.counter(
                "prefetch.hits", "prefetched blocks consumed by the sampler"
            ).inc(self.prefetch_hits)
            registry.counter(
                "prefetch.wasted", "prefetched blocks never consumed"
            ).inc(self.prefetch_wasted)
            registry.counter(
                "prefetch.dropped",
                "prefetch submissions rejected by a full request queue",
            ).inc(self.prefetch_dropped)
            registry.counter(
                "prefetch.failures",
                "prefetch worker errors (read-ahead disabled, sync fallback)",
            ).inc(self.prefetch_failures)
            registry.gauge(
                "prefetch.in_flight", "requests still in flight at exit"
            ).set(self.prefetch_in_flight)
            registry.gauge(
                "ooc.io_overlap_seconds",
                "prefetch worker busy time overlapped with sampling",
            ).set(self.prefetch_overlap_seconds)


def scrub_store(directory: PathLike) -> dict:
    """Integrity-scan a persisted trunk store (the ``repro scrub`` core).

    Opens the store read-only, verifies every page of every region file
    against the persisted CRC32 manifest, and returns the report dict
    of :meth:`TrunkStore.scrub`.
    """
    return TrunkStore(directory).scrub()


class OutOfCorePAT:
    """PAT sampling with trunk payloads on disk.

    Memory-resident state is exactly what the paper keeps: per-vertex
    trunk sizes and the prefix sums *at trunk boundaries*
    (|E|/trunkSize + |V| floats). Same-seed draws match the in-memory
    :class:`PersistentAliasTable` exactly (tested), because the sampling
    logic consumes randomness identically — only the storage tier of each
    array differs.
    """

    __slots__ = ("indptr", "trunk_sizes", "tr_indptr", "tr_prefix", "store")

    def __init__(self, pat: PersistentAliasTable, store: TrunkStore):
        self.indptr = pat.indptr
        self.trunk_sizes = pat.trunk_sizes
        self.store = store
        # Trunk-boundary prefix sums, flat per vertex: vertex v has
        # nt_v = ceil(d/ts) + 1 boundary values (0, C[ts], C[2ts], ..., C[d]).
        n = self.indptr.size - 1
        degrees = np.diff(self.indptr)
        nt = np.zeros(n, dtype=np.int64)
        nz = degrees > 0
        nt[nz] = -(-degrees[nz] // self.trunk_sizes[nz]) + 1
        self.tr_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(nt, out=self.tr_indptr[1:])
        self.tr_prefix = np.zeros(int(self.tr_indptr[-1]), dtype=np.float64)
        for v in np.flatnonzero(nz):
            d = int(degrees[v])
            ts = int(self.trunk_sizes[v])
            base = int(self.indptr[v] + v)  # c-layout base
            bounds = np.minimum(np.arange(0, nt[v]) * ts, d)
            self.tr_prefix[self.tr_indptr[v] : self.tr_indptr[v + 1]] = pat.c[base + bounds]

    def resident_nbytes(self) -> int:
        """Bytes held in memory (what Figure 14's 16 GB budget constrains)."""
        return int(
            self.tr_prefix.nbytes
            + self.tr_indptr.nbytes
            + self.trunk_sizes.nbytes
            + self.indptr.nbytes
        )

    def candidate_weight(self, v: int, candidate_size: int, counters=None) -> float:
        """Total weight of the candidate prefix (may need one disk read)."""
        ts = int(self.trunk_sizes[v])
        if candidate_size % ts == 0:
            return float(self.tr_prefix[self.tr_indptr[v] + candidate_size // ts])
        base = int(self.indptr[v] + v)
        return float(self.store.read_c(base + candidate_size, base + candidate_size + 1, counters)[0])

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Sample an edge index in ``[0, candidate_size)`` of vertex v.

        Mirrors :meth:`PersistentAliasTable.sample` draw for draw, with
        trunk payloads read (and accounted) from the store.
        """
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError(f"vertex {v}: empty candidate set")
        ts = int(self.trunk_sizes[v])
        full = s // ts
        tb = self.tr_indptr[v]
        cbase = int(self.indptr[v] + v)
        if s % ts == 0:
            total = float(self.tr_prefix[tb + full])
        else:
            # The candidate boundary falls inside the partial trunk: its
            # exact prefix weight lives on disk.
            total = float(self.store.read_c(cbase + s, cbase + s + 1, counters)[0])
        if not (total > 0):
            raise EmptyCandidateSetError(f"vertex {v}: zero-weight candidate set")
        r = draw_in_range(rng, 0.0, total)
        full_weight = float(self.tr_prefix[tb + full])
        if full and r <= full_weight:
            lo_j, hi_j = 0, full
            while hi_j - lo_j > 1:
                mid = (lo_j + hi_j) // 2
                if counters is not None:
                    counters.record_probe()
                if self.tr_prefix[tb + mid] < r:
                    lo_j = mid
                else:
                    hi_j = mid
            trunk = lo_j
            edge_lo = int(self.indptr[v]) + trunk * ts
            prob, alias = self.store.read_alias_trunk(edge_lo, edge_lo + ts, counters)
            local = alias_draw(prob, alias, rng, 0, ts, counters)
            return trunk * ts + int(local)
        if counters is not None:
            counters.record_probe()
        c_slice = self.store.read_c(cbase + full * ts, cbase + s + 1, counters)
        return full * ts + (its_search(c_slice, r, 0, s - full * ts, counters))
