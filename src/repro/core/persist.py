"""Index persistence: save/load prepared PAT/HPAT structures.

Preprocessing dominates TEA's cost on repeated runs over the same graph
and weight definition (Figure 13); a production deployment builds once
and reloads. This module serialises the flat arrays of a prepared index
(plus the per-edge candidate index) into one ``.npz`` container with a
format version and a graph fingerprint, so a stale index is rejected
instead of silently mis-sampling.
"""

from __future__ import annotations

import hashlib
import os
from typing import Tuple, Union

import numpy as np

from repro.core.aux_index import AuxiliaryIndex
from repro.core.hpat import HierarchicalPAT
from repro.core.pat import PersistentAliasTable
from repro.exceptions import GraphFormatError
from repro.graph.temporal_graph import TemporalGraph

PathLike = Union[str, os.PathLike]

FORMAT_VERSION = 1


def graph_fingerprint(graph: TemporalGraph) -> str:
    """Stable digest of the CSR arrays (layout identity, not isomorphism)."""
    h = hashlib.sha256()
    h.update(graph.indptr.tobytes())
    h.update(graph.nbr.tobytes())
    h.update(graph.etime.tobytes())
    if graph.eweight is not None:
        h.update(graph.eweight.tobytes())
    return h.hexdigest()


def save_hpat(
    path: PathLike,
    hpat: HierarchicalPAT,
    graph: TemporalGraph,
    candidate_sizes: np.ndarray,
    weight_desc: str = "",
) -> None:
    """Persist a prepared HPAT (+ candidate index) to ``path`` (.npz).

    ``weight_desc`` identifies the weight model the index was built
    with (e.g. ``WeightModel.describe()``); loading verifies it, because
    the stored prefix sums and alias tables are weight-dependent.
    """
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=np.bytes_(b"hpat"),
        weight_desc=np.bytes_(weight_desc.encode()),
        fingerprint=np.bytes_(graph_fingerprint(graph).encode()),
        indptr=hpat.indptr,
        c=hpat.c,
        prob=hpat.prob,
        alias=hpat.alias,
        lvl_ptr=hpat.lvl_ptr,
        lvl_base=hpat.lvl_base,
        aux_max=np.int64(hpat.aux.max_size if hpat.aux is not None else -1),
        candidate_sizes=candidate_sizes,
    )


def load_hpat(
    path: PathLike, graph: TemporalGraph, weight_desc: str = ""
) -> Tuple[HierarchicalPAT, np.ndarray]:
    """Reload a saved HPAT, verifying it matches ``graph`` and weights.

    Returns ``(hpat, candidate_sizes)``. The auxiliary index is
    regenerated (it depends only on the max degree and rebuilding it is
    cheaper than storing ~D·log D entries).
    """
    with np.load(path) as data:
        if int(data["version"]) != FORMAT_VERSION:
            raise GraphFormatError(
                f"{path}: index format v{int(data['version'])}, "
                f"expected v{FORMAT_VERSION}"
            )
        if bytes(data["kind"]) != b"hpat":
            raise GraphFormatError(f"{path}: not an HPAT container")
        stored = bytes(data["fingerprint"]).decode()
        if stored != graph_fingerprint(graph):
            raise GraphFormatError(
                f"{path}: index was built for a different graph "
                f"(fingerprint mismatch)"
            )
        stored_weights = bytes(data["weight_desc"]).decode()
        if stored_weights != weight_desc:
            raise GraphFormatError(
                f"{path}: index was built with weights "
                f"{stored_weights!r}, expected {weight_desc!r}"
            )
        aux_max = int(data["aux_max"])
        aux = AuxiliaryIndex(aux_max) if aux_max >= 0 else None
        hpat = HierarchicalPAT(
            indptr=data["indptr"],
            c=data["c"],
            prob=data["prob"],
            alias=data["alias"],
            lvl_ptr=data["lvl_ptr"],
            lvl_base=data["lvl_base"],
            aux=aux,
        )
        return hpat, data["candidate_sizes"]


def save_pat(path: PathLike, pat: PersistentAliasTable, graph: TemporalGraph) -> None:
    """Persist a prepared PAT to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=np.bytes_(b"pat"),
        fingerprint=np.bytes_(graph_fingerprint(graph).encode()),
        indptr=pat.indptr,
        c=pat.c,
        prob=pat.prob,
        alias=pat.alias,
        trunk_sizes=pat.trunk_sizes,
    )


def load_pat(path: PathLike, graph: TemporalGraph) -> PersistentAliasTable:
    """Reload a saved PAT, verifying it matches ``graph``."""
    with np.load(path) as data:
        if int(data["version"]) != FORMAT_VERSION:
            raise GraphFormatError(f"{path}: unsupported index format version")
        if bytes(data["kind"]) != b"pat":
            raise GraphFormatError(f"{path}: not a PAT container")
        if bytes(data["fingerprint"]).decode() != graph_fingerprint(graph):
            raise GraphFormatError(f"{path}: fingerprint mismatch")
        return PersistentAliasTable(
            indptr=data["indptr"],
            c=data["c"],
            prob=data["prob"],
            alias=data["alias"],
            trunk_sizes=data["trunk_sizes"],
        )
