"""Index persistence: save/load prepared PAT/HPAT structures.

Preprocessing dominates TEA's cost on repeated runs over the same graph
and weight definition (Figure 13); a production deployment builds once
and reloads. This module serialises the flat arrays of a prepared index
(plus the per-edge candidate index) into one ``.npz`` container with a
format version and a graph fingerprint, so a stale index is rejected
instead of silently mis-sampling.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.aux_index import AuxiliaryIndex
from repro.core.hpat import HierarchicalPAT
from repro.core.pat import PersistentAliasTable
from repro.exceptions import GraphFormatError
from repro.graph.temporal_graph import TemporalGraph

PathLike = Union[str, os.PathLike]

FORMAT_VERSION = 1

#: The flat arrays a prepared HPAT consists of, in container order. One
#: catalogue serves every consumer of the prepared image: ``save_hpat``
#: writes exactly these members, ``load_hpat`` reads (or memory-maps)
#: them, and the parallel executor's shared-memory export
#: (:mod:`repro.parallel.sharing`) ships the same set to walk workers.
HPAT_ARRAY_FIELDS: Tuple[str, ...] = (
    "indptr", "c", "prob", "alias", "lvl_ptr", "lvl_base",
)


def hpat_array_catalogue(
    hpat: HierarchicalPAT, candidate_sizes: Optional[np.ndarray] = None
) -> Dict[str, np.ndarray]:
    """Name → array map of everything the walk phase reads from an index.

    ``candidate_sizes`` (the per-edge |Γt(v)| index) rides along when
    given — it is part of the prepared image even though it lives outside
    the :class:`HierarchicalPAT` object.
    """
    out = {name: getattr(hpat, name) for name in HPAT_ARRAY_FIELDS}
    if candidate_sizes is not None:
        out["candidate_sizes"] = candidate_sizes
    return out


def graph_fingerprint(graph: TemporalGraph) -> str:
    """Stable digest of the CSR arrays (layout identity, not isomorphism)."""
    h = hashlib.sha256()
    h.update(graph.indptr.tobytes())
    h.update(graph.nbr.tobytes())
    h.update(graph.etime.tobytes())
    if graph.eweight is not None:
        h.update(graph.eweight.tobytes())
    return h.hexdigest()


def save_hpat(
    path: PathLike,
    hpat: HierarchicalPAT,
    graph: TemporalGraph,
    candidate_sizes: np.ndarray,
    weight_desc: str = "",
    compressed: bool = True,
) -> None:
    """Persist a prepared HPAT (+ candidate index) to ``path`` (.npz).

    ``weight_desc`` identifies the weight model the index was built
    with (e.g. ``WeightModel.describe()``); loading verifies it, because
    the stored prefix sums and alias tables are weight-dependent.

    ``compressed=False`` stores the array members raw (``np.savez``), the
    layout that lets :func:`load_hpat` memory-map them read-only
    (``mmap_mode="r"``) — the configuration parallel walk workers and the
    out-of-core engine want, trading disk bytes for zero-copy loads.
    """
    writer = np.savez_compressed if compressed else np.savez
    writer(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=np.bytes_(b"hpat"),
        weight_desc=np.bytes_(weight_desc.encode()),
        fingerprint=np.bytes_(graph_fingerprint(graph).encode()),
        aux_max=np.int64(hpat.aux.max_size if hpat.aux is not None else -1),
        **hpat_array_catalogue(hpat, candidate_sizes),
    )


def _mmap_npz_member(path: PathLike, info: zipfile.ZipInfo,
                     mmap_mode: str) -> Optional[np.ndarray]:
    """Memory-map one *stored* (uncompressed) ``.npy`` member of a zip.

    ``np.load(..., mmap_mode=...)`` silently ignores the request for
    ``.npz`` containers, so this walks the zip structure by hand: find
    the member's data offset past its local file header, parse the npy
    header there, and map the payload in place. Returns ``None`` when
    the member cannot be mapped (deflated member, unexpected layout) so
    the caller can fall back to a copying load.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    with open(path, "rb") as fh:
        fh.seek(info.header_offset)
        local = fh.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            return None
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        data_start = info.header_offset + 30 + name_len + extra_len
        fh.seek(data_start)
        try:
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            else:
                return None
        except ValueError:
            return None
        if dtype.hasobject:
            return None
        offset = fh.tell()
    return np.memmap(
        path, dtype=dtype, mode=mmap_mode, shape=shape, offset=offset,
        order="F" if fortran else "C",
    )


def mmap_npz_arrays(
    path: PathLike, names: Tuple[str, ...], mmap_mode: str = "r"
) -> Optional[Dict[str, np.ndarray]]:
    """Map the named members of an ``.npz`` container without copying.

    All-or-nothing: returns ``None`` unless *every* requested member is
    a stored (uncompressed) npy that maps cleanly — mixed copy/map loads
    would defeat the point of sharing pages across worker processes.
    """
    out: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf:
        for name in names:
            try:
                info = zf.getinfo(name + ".npy")
            except KeyError:
                return None
            arr = _mmap_npz_member(path, info, mmap_mode)
            if arr is None:
                return None
            out[name] = arr
    return out


def load_hpat(
    path: PathLike, graph: TemporalGraph, weight_desc: str = "",
    mmap_mode: Optional[str] = None,
) -> Tuple[HierarchicalPAT, np.ndarray]:
    """Reload a saved HPAT, verifying it matches ``graph`` and weights.

    Returns ``(hpat, candidate_sizes)``. The auxiliary index is
    regenerated (it depends only on the max degree and rebuilding it is
    cheaper than storing ~D·log D entries).

    ``mmap_mode="r"`` maps the flat arrays read-only instead of copying
    the container into private memory — many worker processes (or the
    out-of-core engine) then share one page cache image of the index.
    Requires a container saved with ``compressed=False``; a compressed
    container falls back to an ordinary copying load. Stale-index
    rejection (fingerprint / weight / version checks) is identical in
    both modes.
    """
    with np.load(path) as data:
        if int(data["version"]) != FORMAT_VERSION:
            raise GraphFormatError(
                f"{path}: index format v{int(data['version'])}, "
                f"expected v{FORMAT_VERSION}"
            )
        if bytes(data["kind"]) != b"hpat":
            raise GraphFormatError(f"{path}: not an HPAT container")
        stored = bytes(data["fingerprint"]).decode()
        if stored != graph_fingerprint(graph):
            raise GraphFormatError(
                f"{path}: index was built for a different graph "
                f"(fingerprint mismatch)"
            )
        stored_weights = bytes(data["weight_desc"]).decode()
        if stored_weights != weight_desc:
            raise GraphFormatError(
                f"{path}: index was built with weights "
                f"{stored_weights!r}, expected {weight_desc!r}"
            )
        aux_max = int(data["aux_max"])
        arrays: Optional[Dict[str, np.ndarray]] = None
        if mmap_mode is not None:
            arrays = mmap_npz_arrays(
                path, HPAT_ARRAY_FIELDS + ("candidate_sizes",), mmap_mode
            )
        if arrays is None:
            arrays = {
                name: data[name]
                for name in HPAT_ARRAY_FIELDS + ("candidate_sizes",)
            }
    aux = AuxiliaryIndex(aux_max) if aux_max >= 0 else None
    hpat = HierarchicalPAT(
        aux=aux, **{name: arrays[name] for name in HPAT_ARRAY_FIELDS}
    )
    return hpat, arrays["candidate_sizes"]


def save_pat(path: PathLike, pat: PersistentAliasTable, graph: TemporalGraph) -> None:
    """Persist a prepared PAT to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        kind=np.bytes_(b"pat"),
        fingerprint=np.bytes_(graph_fingerprint(graph).encode()),
        indptr=pat.indptr,
        c=pat.c,
        prob=pat.prob,
        alias=pat.alias,
        trunk_sizes=pat.trunk_sizes,
    )


def load_pat(path: PathLike, graph: TemporalGraph) -> PersistentAliasTable:
    """Reload a saved PAT, verifying it matches ``graph``."""
    with np.load(path) as data:
        if int(data["version"]) != FORMAT_VERSION:
            raise GraphFormatError(f"{path}: unsupported index format version")
        if bytes(data["kind"]) != b"pat":
            raise GraphFormatError(f"{path}: not a PAT container")
        if bytes(data["fingerprint"]).decode() != graph_fingerprint(graph):
            raise GraphFormatError(f"{path}: fingerprint mismatch")
        return PersistentAliasTable(
            indptr=data["indptr"],
            c=data["c"],
            prob=data["prob"],
            alias=data["alias"],
            trunk_sizes=data["trunk_sizes"],
        )
