"""Full alias-method index: one alias table per candidate set.

The strawman the paper rules out (Sections 1, 3.1, Figure 12): to get O(1)
sampling from the alias method alone on a temporal graph, a vertex needs a
separate alias table for *every* candidate edge set — every prefix of its
time-descending adjacency — costing O(d²) space per vertex and
O(Σ_v d_v²) overall. On all but the smallest dataset this exceeds any
reasonable memory budget, which Figure 12 reports as OOM.

This module implements the structure honestly (it really is O(1) per
draw, the fastest option when it fits) but *checks the budget before
allocating* and raises :class:`~repro.exceptions.SimulatedOOM` when the
requirement exceeds it, so experiments reproduce the paper's OOM entries
without taking the machine down.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import EmptyCandidateSetError, SimulatedOOM
from repro.graph.temporal_graph import TemporalGraph
from repro.sampling.alias import alias_draw, build_alias_arrays_batch
from repro.sampling.counters import CostCounters

DEFAULT_BUDGET_BYTES = 512 * 1024 * 1024


def required_bytes(graph: TemporalGraph) -> int:
    """Bytes the full alias index would need: Σ_v d(d+1)/2 entries × 16 B."""
    d = graph.degrees().astype(np.float64)
    entries = float((d * (d + 1) / 2).sum())
    return int(entries * 16) + int(8 * (graph.num_vertices + 1))


class FullAliasIndex:
    """Alias tables for every (vertex, candidate-prefix-length) pair.

    Layout: vertex v's tables are concatenated prefix-length-ascending in
    flat ``prob``/``alias`` arrays; the table for prefix s starts at
    ``vbase[v] + s(s-1)/2`` and spans s entries.
    """

    __slots__ = ("indptr", "vbase", "prob", "alias")

    def __init__(self, indptr, vbase, prob, alias):
        self.indptr = indptr
        self.vbase = vbase
        self.prob = prob
        self.alias = alias

    @classmethod
    def build(
        cls,
        graph: TemporalGraph,
        weights: np.ndarray,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
    ) -> "FullAliasIndex":
        """Build all tables, or raise :class:`SimulatedOOM` if over budget."""
        need = required_bytes(graph)
        if need > budget_bytes:
            raise SimulatedOOM(need, budget_bytes, what="full alias index")
        n = graph.num_vertices
        d = graph.degrees()
        per_vertex = d * (d + 1) // 2
        vbase = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(per_vertex, out=vbase[1:])
        total = int(vbase[-1])
        prob = np.empty(total, dtype=np.float64)
        alias = np.empty(total, dtype=np.int64)
        # Group the construction by prefix length so the batched lock-step
        # builder handles all equal-width tables at once.
        max_d = int(d.max()) if n else 0
        for s in range(1, max_d + 1):
            vs = np.flatnonzero(d >= s)
            if not vs.size:
                continue
            rows = np.empty((vs.size, s), dtype=np.float64)
            for i, v in enumerate(vs):
                lo = graph.indptr[v]
                rows[i] = weights[lo : lo + s]
            bad = rows.sum(axis=1) <= 0
            if np.any(bad):
                rows[bad] = 1.0  # zero-weight prefixes are never sampled
            p, a = build_alias_arrays_batch(rows)
            dest = vbase[vs] + (s * (s - 1)) // 2
            for i, start in enumerate(dest):
                prob[start : start + s] = p[i]
                alias[start : start + s] = a[i]
        return cls(graph.indptr, vbase, prob, alias)

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError(f"vertex {v}: empty candidate set")
        start = int(self.vbase[v] + (s * (s - 1)) // 2)
        return int(alias_draw(self.prob, self.alias, rng, start, start + s, counters))

    def nbytes(self) -> int:
        return int(self.prob.nbytes + self.alias.nbytes + self.vbase.nbytes)
