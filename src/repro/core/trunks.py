"""Trunk arithmetic: partitioning and binary decomposition.

PAT partitions a vertex's time-descending edge list into equal trunks of
``trunkSize`` edges; HPAT instead keeps, for every level k, the aligned
trunks τ(k, i) covering positions [i·2^k, (i+1)·2^k). A candidate edge set
is always a *prefix* of the list, so for HPAT it decomposes into the
binary representation of its size: a prefix of length 7 is one level-2
trunk, one level-1 trunk and one level-0 trunk (7 = 4 + 2 + 1), laid end
to end — and each block is automatically aligned, because the offset in
front of a 2^k block is a sum of strictly larger powers of two
(paper Section 3.3, Figure 6).
"""

from __future__ import annotations

import math
from typing import List, Tuple


def binary_decompose(size: int) -> List[Tuple[int, int]]:
    """Decompose a prefix of ``size`` edges into aligned HPAT trunks.

    Returns ``[(level, offset), ...]`` ordered from the largest block
    (offset 0, newest edges) to the smallest, where ``offset`` is the
    block's starting position in the time-descending edge list and the
    block spans ``2**level`` edges. ``offset`` is always divisible by
    ``2**level`` (alignment), so the block is exactly the HPAT trunk
    τ(level, offset >> level).

    >>> binary_decompose(7)
    [(2, 0), (1, 4), (0, 6)]
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    out: List[Tuple[int, int]] = []
    offset = 0
    remaining = size
    while remaining:
        level = remaining.bit_length() - 1
        out.append((level, offset))
        block = 1 << level
        offset += block
        remaining -= block
    return out


def decompose_cuts(size: int) -> List[int]:
    """The cumulative block boundaries of :func:`binary_decompose`.

    For size 7 → ``[4, 6, 7]``: the ITS-over-trunks step picks the first
    boundary whose prefix weight covers the draw (Section 3.3's
    P(g1)=(0, C[4]/C[7]] etc.).
    """
    cuts: List[int] = []
    offset = 0
    remaining = size
    while remaining:
        block = 1 << (remaining.bit_length() - 1)
        offset += block
        cuts.append(offset)
        remaining -= block
    return cuts


def pat_trunk_size(degree: int, memory_limited: bool = False, min_size: int = 2) -> int:
    """The paper's trunkSize selection rule (end of Section 3.2).

    In-memory: as large as possible while ITS over the trunk prefix stays
    no cheaper than ITS inside a trunk, i.e. ``trunkSize = floor(sqrt(D))``
    per vertex. Out-of-core: as *small* as possible subject to the trunk
    prefix array fitting in memory — the caller passes
    ``memory_limited=True`` and clamps with ``min_size`` (the paper picks
    10 for twitter under 16 GB).
    """
    if degree <= 0:
        return 1
    if memory_limited:
        return max(1, int(min_size))
    return max(1, int(math.isqrt(degree)))


def num_levels(degree: int) -> int:
    """K + 1 where K = floor(log2(degree)) — HPAT level count (Eq. 5)."""
    if degree <= 0:
        return 0
    return degree.bit_length()


def level_width(degree: int, level: int) -> int:
    """Edges covered by level ``level``: floor(d / 2^k) trunks of 2^k edges."""
    block = 1 << level
    return (degree // block) * block
