"""Persistent Alias Table (PAT) — paper Section 3.2.

PAT partitions each vertex's time-descending edge list into equal trunks
of ``trunkSize`` edges, builds one alias table per *complete* trunk, and
keeps prefix sums so ITS can pick a trunk. A sampling step over a
candidate prefix of size s:

1. ITS over the trunk boundaries (O(log(s / trunkSize)) probes) chooses a
   complete trunk or determines the draw lands in the trailing partial
   trunk;
2. complete trunk → O(1) alias draw inside it (case ① in Figure 5);
   partial trunk → ITS over the ≤ trunkSize edges inside it (case ②).

Space is O(D) per vertex: edge-aligned alias arrays plus a prefix-sum
array, versus the alias method's O(D²) for all candidate sets.

Flat layout shared with HPAT: per-vertex arrays are concatenated; vertex
v's prefix-sum segment (d+1 entries) starts at ``indptr[v] + v`` and its
alias entries are edge-aligned at ``indptr[v]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import EmptyCandidateSetError
from repro.graph.temporal_graph import TemporalGraph
from repro.sampling.alias import alias_draw
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import draw_in_range, its_search


class PersistentAliasTable:
    """PAT index over a :class:`TemporalGraph` with fixed static weights.

    Build with :func:`repro.core.builder.build_pat` (or the
    :meth:`build` convenience wrapper).
    """

    __slots__ = ("indptr", "c", "prob", "alias", "trunk_sizes")

    def __init__(
        self,
        indptr: np.ndarray,
        c: np.ndarray,
        prob: np.ndarray,
        alias: np.ndarray,
        trunk_sizes: np.ndarray,
    ):
        self.indptr = indptr
        self.c = c
        self.prob = prob
        self.alias = alias
        self.trunk_sizes = trunk_sizes

    @classmethod
    def build(cls, graph: TemporalGraph, weights: np.ndarray,
              trunk_size: Optional[int] = None) -> "PersistentAliasTable":
        """Construct a PAT (see :func:`repro.core.builder.build_pat`)."""
        from repro.core.builder import build_pat

        return build_pat(graph, weights, trunk_size=trunk_size)

    # -- layout helpers ------------------------------------------------------

    def c_base(self, v: int) -> int:
        """Start of vertex v's prefix-sum segment in the flat ``c`` array."""
        return int(self.indptr[v] + v)

    def candidate_weight(self, v: int, candidate_size: int) -> float:
        """Total static weight of v's candidate prefix."""
        return float(self.c[self.c_base(v) + candidate_size])

    # -- sampling --------------------------------------------------------------

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Sample an edge index in ``[0, candidate_size)`` of vertex v.

        The returned index is a position in v's time-descending adjacency
        (0 = newest edge), distributed proportionally to the static weights.
        """
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError(f"vertex {v}: empty candidate set")
        base = self.c_base(v)
        total = self.c[base + s]
        if not (total > 0):
            raise EmptyCandidateSetError(f"vertex {v}: zero-weight candidate set")
        ts = int(self.trunk_sizes[v])
        full = s // ts
        r = draw_in_range(rng, 0.0, total)
        full_weight = self.c[base + full * ts]
        if full and r <= full_weight:
            # ITS over the complete-trunk boundaries: binary search for the
            # smallest j with C[j * ts] >= r.
            lo_j, hi_j = 0, full
            while hi_j - lo_j > 1:
                mid = (lo_j + hi_j) // 2
                if counters is not None:
                    counters.record_probe()
                if self.c[base + mid * ts] < r:
                    lo_j = mid
                else:
                    hi_j = mid
            trunk = lo_j
            edge_lo = self.indptr[v] + trunk * ts
            local = alias_draw(self.prob, self.alias, rng, edge_lo, edge_lo + ts, counters)
            return trunk * ts + int(local)
        # Case ②: the draw lands in the trailing partial trunk — ITS inside
        # it over positions [full * ts, s).
        if counters is not None:
            counters.record_probe()  # the boundary comparison above
        return its_search(self.c, r, base + full * ts, base + s, counters) - base

    # -- accounting --------------------------------------------------------------

    def nbytes(self) -> int:
        return int(
            self.c.nbytes + self.prob.nbytes + self.alias.nbytes + self.trunk_sizes.nbytes
        )

    def memory_breakdown(self) -> dict:
        return {
            "prefix_sums": int(self.c.nbytes),
            "alias_tables": int(self.prob.nbytes + self.alias.nbytes),
            "trunk_sizes": int(self.trunk_sizes.nbytes),
        }
