"""Incremental HPAT for streaming graphs (paper Section 3.5, Figure 7).

Streaming updates are batches of new edges whose timestamps are **later**
than everything already indexed (the edge-stream assumption; deletions
are out of scope, Section 4.4). Rebuilding a vertex's HPAT per batch
costs O(d log d); the paper instead keeps the old trunks intact, builds
trunks for the new arrivals only, and generates merged higher-hierarchy
trunks when the new and old structures line up — Figure 7's carry step.

We realise that as a **block forest** per vertex: the edge list is a
sequence of time-contiguous blocks (newest block first), each block a
self-contained mini-HPAT (time-descending edges, per-level alias tables,
prefix sums — exactly the static structure of
:mod:`repro.core.hpat`, per block). Appending a batch builds one new
block; first, any *front* blocks no larger than the batch are absorbed
into it (the carry), so block sizes grow geometrically front-to-back and
every edge is re-indexed O(log d) times amortised — versus O(d log d)
per batch for a from-scratch rebuild. That asymmetry is what Figure 13d
measures: for degree ≫ batch size the speedup is enormous; for degree ≲
batch size the two converge.

Sampling stays distribution-identical to a from-scratch HPAT
(property-tested): ITS chooses among the covered blocks, then within the
boundary block the candidate remainder is a *prefix* of that block's
time-descending edges, so the static binary decomposition applies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.trunks import binary_decompose
from repro.core.weights import WeightModel
from repro.exceptions import EmptyCandidateSetError, NotSupportedError
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.sampling.alias import alias_draw, build_alias_arrays_batch
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search


class _Block:
    """A mini-HPAT over one time-contiguous run of edges (any size).

    Edges are stored newest-first; ``levels[k-1]`` holds the flat alias
    tables of all aligned 2^k trunks (coverage ``(size >> k) << k``), and
    ``c`` the per-edge prefix sums — the same layout as the static HPAT,
    scoped to this block.
    """

    __slots__ = ("size", "dst", "times", "weights", "c", "levels")

    def __init__(self, dst, times, weights):
        self.size = int(dst.size)
        self.dst = dst
        self.times = times
        self.weights = weights
        self.c = build_prefix_sums(weights)
        self.levels: List[Tuple[np.ndarray, np.ndarray]] = []
        k = 1
        while (1 << k) <= self.size:
            width = 1 << k
            rows = weights[: (self.size >> k) << k].reshape(-1, width)
            sums = rows.sum(axis=1)
            if np.any(sums <= 0):
                rows = rows.copy()
                rows[sums <= 0] = 1.0
            p, a = build_alias_arrays_batch(rows)
            self.levels.append((p.ravel(), a.ravel()))
            k += 1

    @classmethod
    def merge(cls, newer: "_Block", older: "_Block") -> "_Block":
        """Concatenate two adjacent blocks and re-derive the hierarchy."""
        return cls(
            np.concatenate([newer.dst, older.dst]),
            np.concatenate([newer.times, older.times]),
            np.concatenate([newer.weights, older.weights]),
        )

    def candidate_count(self, t: float) -> int:
        """Edges of this block with time strictly greater than t."""
        return int(np.searchsorted(-self.times, -t, side="left"))

    def total_weight(self, s: int) -> float:
        return float(self.c[s])

    def sample_prefix(
        self, s: int, rng: np.random.Generator, counters: Optional[CostCounters]
    ) -> int:
        """Sample among this block's newest s edges ∝ weight (local index)."""
        total = self.c[s]
        r = draw_in_range(rng, 0.0, total)
        blocks = binary_decompose(s)
        cuts = [off + (1 << k) for k, off in blocks]
        lo_b, hi_b = -1, len(cuts) - 1
        while hi_b - lo_b > 1:
            mid = (lo_b + hi_b) // 2
            if counters is not None:
                counters.record_probe()
            if self.c[cuts[mid]] < r:
                lo_b = mid
            else:
                hi_b = mid
        if counters is not None:
            counters.record_probe()
        k, offset = blocks[hi_b]
        if k == 0:
            return offset
        prob, alias = self.levels[k - 1]
        local = alias_draw(prob, alias, rng, offset, offset + (1 << k), counters)
        return offset + int(local)

    def nbytes(self) -> int:
        n = self.dst.nbytes + self.times.nbytes + self.weights.nbytes + self.c.nbytes
        for p, a in self.levels:
            n += p.nbytes + a.nbytes
        return int(n)


class VertexIncrementalHPAT:
    """Streaming HPAT for one vertex's out-edges.

    Parameters
    ----------
    weight_model:
        Static weight definition. The per-vertex reference time for the
        time-dependent kinds is frozen at the *first* edge seen, so
        weights of already-indexed edges never change when new edges
        arrive (probability ratios are reference-invariant; see
        :mod:`repro.core.weights`).
    """

    __slots__ = ("weight_model", "blocks", "num_edges", "_t_ref", "_t_newest",
                 "merged_edges")

    def __init__(self, weight_model: WeightModel):
        self.weight_model = weight_model
        self.blocks: List[_Block] = []  # newest first
        self.num_edges = 0
        self._t_ref: Optional[float] = None
        self._t_newest: Optional[float] = None
        self.merged_edges = 0  # total edges re-indexed by carries (cost oracle)

    def append_batch(self, dst, times) -> None:
        """Append edges with times ≥ everything already present.

        ``times`` must be ascending within the batch; violating the
        stream order raises :class:`NotSupportedError` (the paper's
        engine does not support out-of-order mutation, Section 4.4).
        """
        dst = np.asarray(dst, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if dst.size == 0:
            return
        if times.size > 1 and np.any(times[:-1] > times[1:]):
            raise NotSupportedError("batch times must be ascending")
        if self._t_newest is not None and times[0] < self._t_newest:
            raise NotSupportedError(
                f"streaming updates must not precede existing edges "
                f"(got {times[0]} < {self._t_newest})"
            )
        if self._t_ref is None:
            self._t_ref = float(times[0])
        self._t_newest = float(times[-1])
        weights = self._static_weights(times, base_rank=self.num_edges)
        block = _Block(dst[::-1].copy(), times[::-1].copy(), weights[::-1].copy())
        # Carry: absorb front blocks no larger than the incoming block, so
        # sizes grow geometrically front-to-back (each absorbed edge lands
        # in a block at least twice its previous home — O(log d) amortised
        # re-index work per edge).
        while self.blocks and self.blocks[0].size <= block.size:
            absorbed = self.blocks.pop(0)
            self.merged_edges += absorbed.size + block.size
            block = _Block.merge(block, absorbed)
        self.blocks.insert(0, block)
        self.num_edges += int(dst.size)

    def _static_weights(self, times: np.ndarray, base_rank: int) -> np.ndarray:
        kind = self.weight_model.kind
        if kind == "uniform":
            return np.ones_like(times)
        if kind == "linear_rank":
            # Rank = 1-based position in stream order; stable under appends.
            return np.arange(base_rank + 1, base_rank + times.size + 1, dtype=np.float64)
        if kind == "linear_time":
            return times - self._t_ref + 1.0
        if kind == "exponential_decay":
            # Decay falls off as edges recede from the frozen reference
            # (t_ref = earliest edge): exp((t_min - t_i)/scale), matching
            # the static builder. The shared exp() fall-through below
            # carries the *growth* sign — using it for decay silently
            # inverted the bias on streaming builds.
            return np.exp((self._t_ref - times) / self.weight_model.scale)
        return np.exp((times - self._t_ref) / self.weight_model.scale)

    # -- queries ---------------------------------------------------------------

    def candidate_count(self, t: Optional[float]) -> int:
        if t is None:
            return self.num_edges
        count = 0
        for b in self.blocks:  # newest first
            c = b.candidate_count(t)
            count += c
            if c < b.size:
                break
        return count

    def sample(
        self,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> Tuple[int, float]:
        """Sample among the newest ``candidate_size`` edges ∝ static weight.

        Returns ``(destination, time)`` of the sampled edge.
        """
        s = int(candidate_size)
        if s <= 0 or s > self.num_edges:
            raise EmptyCandidateSetError(
                f"candidate size {s} invalid for {self.num_edges} edges"
            )
        # Cumulative weights over covered blocks (newest first) — the ITS
        # over trunks, lifted to the block forest.
        covered: List[Tuple[_Block, int]] = []
        cum: List[float] = [0.0]
        remaining = s
        for b in self.blocks:
            take = min(remaining, b.size)
            covered.append((b, take))
            cum.append(cum[-1] + b.total_weight(take))
            remaining -= take
            if remaining == 0:
                break
        total = cum[-1]
        if not (total > 0):
            raise EmptyCandidateSetError("zero-weight candidate set")
        r = draw_in_range(rng, 0.0, total)
        lo_b, hi_b = 0, len(covered)
        while hi_b - lo_b > 1:
            mid = (lo_b + hi_b) // 2
            if counters is not None:
                counters.record_probe()
            if cum[mid] < r:
                lo_b = mid
            else:
                hi_b = mid
        block, take = covered[lo_b]
        local = block.sample_prefix(take, rng, counters)
        return int(block.dst[local]), float(block.times[local])

    def edges_desc(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges newest-first: ``(dst, times, weights)`` — test oracle."""
        if not self.blocks:
            z = np.zeros(0)
            return z.astype(np.int64), z, z
        return (
            np.concatenate([b.dst for b in self.blocks]),
            np.concatenate([b.times for b in self.blocks]),
            np.concatenate([b.weights for b in self.blocks]),
        )

    def num_blocks(self) -> int:
        return len(self.blocks)

    def nbytes(self) -> int:
        return sum(b.nbytes() for b in self.blocks)

    # -- atomicity ---------------------------------------------------------

    def snapshot(self) -> tuple:
        """O(num_blocks) state capture for transactional appends.

        Cheap because :class:`_Block` instances are immutable once
        built — ``append_batch`` only ever pops, merges into *new*
        blocks, and inserts — so a shallow copy of the block list pins
        the entire pre-batch structure.
        """
        return (
            list(self.blocks), self.num_edges, self._t_ref, self._t_newest,
            self.merged_edges,
        )

    def restore(self, state: tuple) -> None:
        """Rewind to a :meth:`snapshot` (discards appended extents)."""
        (self.blocks, self.num_edges, self._t_ref, self._t_newest,
         self.merged_edges) = state

    def view(self) -> "VertexIncrementalHPAT":
        """A frozen copy-on-write capture for epoch-snapshot reads.

        Blocks are immutable once built and ``append_batch`` only ever
        replaces the *list*, so sharing the block objects under a
        private list pins this vertex's entire structure in
        O(num_blocks). The view answers the full query API but is
        never appended to.
        """
        frozen = VertexIncrementalHPAT.__new__(VertexIncrementalHPAT)
        frozen.weight_model = self.weight_model
        frozen.blocks = list(self.blocks)
        frozen.num_edges = self.num_edges
        frozen._t_ref = self._t_ref
        frozen._t_newest = self._t_newest
        frozen.merged_edges = self.merged_edges
        return frozen


class IncrementalHPAT:
    """Graph-level streaming HPAT: one block forest per active vertex.

    ``apply_batch`` is **atomic**: either every edge of the batch is
    indexed or none is. A failure mid-batch — a stream-order violation
    in a later vertex group, or an injected ``streaming_apply`` fault —
    rewinds every vertex already touched to its pre-batch snapshot and
    re-raises, so a sampler never observes a half-applied batch.
    """

    def __init__(self, weight_model: WeightModel,
                 graph: Optional[TemporalGraph] = None, fault_injector=None,
                 factorized: Optional[bool] = None):
        self.weight_model = weight_model
        self.vertices: Dict[int, VertexIncrementalHPAT] = {}
        self.num_edges = 0
        #: Use the BINGO-style factorized radix forest
        #: (:class:`repro.kernels.decay.DecayRadixForest`) instead of the
        #: carry-merge block forest. Defaults to on exactly when the
        #: weight factorizes (``exponential_decay``); forcing it on for
        #: any other kind raises at first vertex creation.
        self.factorized = (
            weight_model.kind == "exponential_decay"
            if factorized is None else bool(factorized)
        )
        #: Optional :class:`repro.resilience.faults.FaultInjector`
        #: evaluated at the ``streaming_apply`` site once per vertex
        #: group, so plans can fail a batch mid-apply deterministically.
        self.fault_injector = fault_injector
        #: Batches rolled back by a mid-apply failure (telemetry).
        self.rollbacks = 0
        #: Vertices touched since the last :meth:`clear_dirty` — the
        #: copy-on-write delta epoch snapshots re-pin (everything else
        #: aliases the previous epoch's frozen views).
        self._dirty: set = set()
        if graph is not None and graph.num_edges:
            self.apply_batch(graph.to_stream())

    def apply_batch(self, batch: EdgeStream) -> None:
        """Apply one time-ordered batch of new edges (paper's update unit).

        Atomic: validates and applies per vertex group, snapshotting
        each touched forest first; any failure restores every snapshot
        (and drops vertices created by this batch) before re-raising.
        """
        if not len(batch):
            return
        if batch.weight is not None:
            raise NotSupportedError(
                "the incremental index computes static weights from the "
                "weight model; user edge weights are only supported on "
                "static builds"
            )
        order = np.argsort(batch.src, kind="stable")
        src = batch.src[order]
        dst = batch.dst[order]
        times = batch.time[order]
        boundaries = np.flatnonzero(np.diff(src)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [src.size]])
        # v -> pre-batch snapshot, or None when this batch created v.
        touched: Dict[int, Optional[tuple]] = {}
        try:
            for lo, hi in zip(starts, ends):
                if self.fault_injector is not None:
                    self.fault_injector.check("streaming_apply")
                v = int(src[lo])
                vert = self.vertices.get(v)
                if vert is None:
                    touched[v] = None
                    vert = self.vertices[v] = self._new_vertex()
                else:
                    touched[v] = vert.snapshot()
                vert.append_batch(dst[lo:hi], times[lo:hi])
        except BaseException:
            for v, state in touched.items():
                if state is None:
                    self.vertices.pop(v, None)
                else:
                    self.vertices[v].restore(state)
            self.rollbacks += 1
            raise
        self.num_edges += len(batch)
        self._dirty.update(touched)

    def _new_vertex(self):
        """A fresh per-vertex index of the configured flavour."""
        if self.factorized:
            from repro.kernels.decay import DecayRadixForest

            return DecayRadixForest(self.weight_model)
        return VertexIncrementalHPAT(self.weight_model)

    def update_work(self) -> int:
        """Total edge-indexing work so far (the Figure 13d cost oracle).

        Every edge is indexed once on arrival, plus once per carry-merge
        re-index (``merged_edges``). The factorized decay forest never
        merges, so its work is exactly ``num_edges`` — the O(1)-buckets
        claim the kernel-fusion bench asserts against this oracle.
        """
        return self.num_edges + sum(
            v.merged_edges for v in self.vertices.values()
        )

    def candidate_count(self, v: int, t: Optional[float]) -> int:
        vert = self.vertices.get(v)
        return vert.candidate_count(t) if vert is not None else 0

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> Tuple[int, float]:
        vert = self.vertices.get(v)
        if vert is None:
            raise EmptyCandidateSetError(f"vertex {v} has no out-edges")
        return vert.sample(candidate_size, rng, counters)

    def nbytes(self) -> int:
        return sum(v.nbytes() for v in self.vertices.values())

    # -- durability hooks --------------------------------------------------

    def capture_vertices(self, vertex_ids) -> Dict[int, Optional[tuple]]:
        """Pre-batch snapshots of the given vertices (``None`` = absent).

        Taken *before* an apply so the caller can undo a batch whose
        durability step (WAL append) fails after the in-memory apply
        succeeded — the inverse direction of ``apply_batch``'s own
        mid-apply rollback.
        """
        captured: Dict[int, Optional[tuple]] = {}
        for v in vertex_ids:
            vert = self.vertices.get(int(v))
            captured[int(v)] = None if vert is None else vert.snapshot()
        return captured

    def restore_vertices(self, captured: Dict[int, Optional[tuple]],
                         edges_removed: int) -> None:
        """Undo an applied batch from :meth:`capture_vertices` state."""
        for v, state in captured.items():
            if state is None:
                self.vertices.pop(v, None)
            else:
                self.vertices[v].restore(state)
        self.num_edges -= int(edges_removed)
        self.rollbacks += 1

    # -- epoch snapshots ---------------------------------------------------

    def dirty_vertices(self) -> frozenset:
        """Vertices whose structure changed since :meth:`clear_dirty`."""
        return frozenset(self._dirty)

    def clear_dirty(self) -> None:
        self._dirty.clear()
