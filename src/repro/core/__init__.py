"""TEA's core contribution: hybrid-sampling index structures.

* :mod:`~repro.core.weights` — the static-weight rewrite (Equation 3)
  that removes the walker's arrival time from the transition probability;
* :mod:`~repro.core.trunks` — trunk partitioning and binary decomposition;
* :mod:`~repro.core.pat` — the Persistent Alias Table (Section 3.2);
* :mod:`~repro.core.hpat` — the Hierarchical PAT (Section 3.3);
* :mod:`~repro.core.aux_index` — O(1) trunk lookup (Section 3.4);
* :mod:`~repro.core.builder` — parallel construction (Section 4.2);
* :mod:`~repro.core.incremental` — streaming batch updates (Section 3.5);
* :mod:`~repro.core.outofcore` — disk-resident PAT (Section 4.1).
"""

from repro.core.weights import WeightModel
from repro.core.trunks import binary_decompose, pat_trunk_size
from repro.core.pat import PersistentAliasTable
from repro.core.hpat import HierarchicalPAT
from repro.core.aux_index import AuxiliaryIndex
from repro.core.incremental import IncrementalHPAT
from repro.core.outofcore import OutOfCorePAT, TrunkStore

__all__ = [
    "WeightModel",
    "binary_decompose",
    "pat_trunk_size",
    "PersistentAliasTable",
    "HierarchicalPAT",
    "AuxiliaryIndex",
    "IncrementalHPAT",
    "OutOfCorePAT",
    "TrunkStore",
]
