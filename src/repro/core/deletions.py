"""Edge deletions — the paper's second piece of future work (§4.4).

"Other cases such as deleting or changing vertices or edges are not
supported. We plan to add support for these features to TEA in the
future." This module adds that support for deletions on top of the
static HPAT, without giving up its sampling complexity:

* a deleted edge gets a **tombstone** and its stored weight is logically
  zero. Until the owning vertex is rebuilt, sampling uses *tombstone
  rejection*: draw from the stale HPAT, retry on a dead edge. Because
  live edges keep their original weights, the accepted draw follows
  exactly the live-restricted distribution (rejection preserves
  conditionals) — property-tested.
* when a vertex's dead fraction crosses ``rebuild_threshold``, its slice
  of the HPAT (prefix sums + level tables) is rebuilt **in place** with
  the dead weights at zero. The flat layout never changes — table sizes
  depend only on the (physical) degree — so a per-vertex rebuild is a
  local O(d log d) refresh, and zero-weight edges are unreachable by
  construction (the ITS boundaries give them measure zero).
* a bounded retry budget falls back to one exact live-weight scan
  (cost-accounted), so adversarially tombstone-heavy prefixes stay
  correct even just below the rebuild threshold.

Vertex deletion is edge deletion of the vertex's out-edges plus
tombstoning it as a walk target (walks simply treat it as a dead end).

**Epoch pinning.** Each deletion advances an ``epoch`` counter and is
recorded in a deletion log ``(epoch, vertex, position, original
weight)``. :meth:`TombstoneHPAT.pin` freezes the current epoch: the
returned :class:`TombstonePin` answers ``alive_count``/``sample`` as of
that epoch — edges deleted *after* the pin are treated as alive at
their original weight — while in-place vertex rebuilds (which would
destroy older epochs' reachability) are deferred until the last pin is
released. A pinned reader is bit-identical to one that ran before the
post-pin deletions happened, which is what lets walk traffic proceed
isolated from a concurrent mutation stream.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.builder import _hpat_fill_chunk, _prefix_chunk, hpat_layout
from repro.core.hpat import HierarchicalPAT
from repro.exceptions import EmptyCandidateSetError
from repro.graph.temporal_graph import TemporalGraph
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search

MAX_TOMBSTONE_RETRIES = 32


@dataclass
class DeletionStats:
    """Bookkeeping for one :class:`TombstoneHPAT`."""

    deletions: int = 0
    vertex_rebuilds: int = 0
    tombstone_retries: int = 0
    fallback_scans: int = 0
    deferred_rebuilds: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "deletions": self.deletions,
            "vertex_rebuilds": self.vertex_rebuilds,
            "tombstone_retries": self.tombstone_retries,
            "fallback_scans": self.fallback_scans,
            "deferred_rebuilds": self.deferred_rebuilds,
        }


class TombstoneHPAT:
    """HPAT with tombstone deletions and per-vertex lazy rebuilds."""

    def __init__(
        self,
        graph: TemporalGraph,
        weights: np.ndarray,
        rebuild_threshold: float = 0.25,
        with_aux_index: bool = True,
    ):
        if not (0.0 < rebuild_threshold <= 1.0):
            raise ValueError("rebuild_threshold must be in (0, 1]")
        from repro.core.builder import build_hpat

        self.graph = graph
        self.weights = np.array(weights, dtype=np.float64)  # mutable copy
        self.rebuild_threshold = float(rebuild_threshold)
        self.hpat: HierarchicalPAT = build_hpat(
            graph, self.weights, with_aux_index=with_aux_index
        )
        # Rebuilds write in place; the builder returns fresh arrays, so
        # they are writable already. Keep explicit for clarity.
        self.hpat.c.setflags(write=True)
        self.hpat.prob.setflags(write=True)
        self.hpat.alias.setflags(write=True)
        self.dead = np.zeros(graph.num_edges, dtype=bool)
        # Per-vertex sorted lists of dead positions (local indices), for
        # O(log) alive-count queries over candidate prefixes.
        self._dead_positions: Dict[int, List[int]] = {}
        self._stale_dead: Dict[int, int] = {}  # dead-but-not-rebuilt count
        self.stats = DeletionStats()
        #: Mutation epoch: advances once per accepted deletion.
        self.epoch = 0
        # Deletion log (epoch, vertex, position, original weight) —
        # what a pinned reader needs to resurrect post-pin deletions.
        self._log: List[tuple] = []
        self._active_pins = 0
        self._deferred_rebuilds: set = set()

    # -- mutation ------------------------------------------------------------

    def delete_position(self, v: int, position: int) -> None:
        """Tombstone the ``position``-th newest out-edge of vertex v."""
        d = self.graph.out_degree(v)
        if not (0 <= position < d):
            raise IndexError(f"vertex {v} has no out-edge position {position}")
        pos = int(self.graph.indptr[v]) + position
        if self.dead[pos]:
            return
        self.epoch += 1
        self._log.append((self.epoch, v, position, float(self.weights[pos])))
        self.dead[pos] = True
        self.weights[pos] = 0.0
        bisect.insort(self._dead_positions.setdefault(v, []), position)
        self._stale_dead[v] = self._stale_dead.get(v, 0) + 1
        self.stats.deletions += 1
        if self._stale_dead[v] / d >= self.rebuild_threshold:
            if self._active_pins:
                # A rebuild zeroes dead edges out of the shared level
                # tables — it would tear reachability out from under
                # every pinned epoch. Defer until the last pin releases.
                if v not in self._deferred_rebuilds:
                    self._deferred_rebuilds.add(v)
                    self.stats.deferred_rebuilds += 1
            else:
                self._rebuild_vertex(v)

    def delete_edge(self, u: int, v: int, t: float) -> bool:
        """Tombstone the edge (u, v, t); returns False if absent/already dead."""
        nbrs, times = self.graph.neighbors(u)
        matches = np.flatnonzero((nbrs == v) & (times == t))
        deleted = False
        for position in matches:
            pos = int(self.graph.indptr[u]) + int(position)
            if not self.dead[pos]:
                self.delete_position(u, int(position))
                deleted = True
        return deleted

    def delete_vertex_out_edges(self, v: int) -> int:
        """Tombstone every out-edge of v (vertex deletion as a walk source)."""
        count = 0
        for position in range(self.graph.out_degree(v)):
            pos = int(self.graph.indptr[v]) + position
            if not self.dead[pos]:
                self.delete_position(v, position)
                count += 1
        return count

    def _rebuild_vertex(self, v: int) -> None:
        """Refresh one vertex's prefix sums and level tables in place."""
        g = self.graph
        lo, hi = int(g.indptr[v]), int(g.indptr[v + 1])
        d = hi - lo
        if d == 0:
            return
        w = self.weights[lo:hi]
        # Prefix sums: segment [lo + v, hi + v + 1).
        cbase = lo + v
        self.hpat.c[cbase : cbase + d + 1] = _prefix_chunk(
            np.array([0, d], dtype=np.int64), w
        )
        # Level tables: this vertex's contiguous region of the flat arrays.
        degrees = np.array([d], dtype=np.int64)
        indptr = np.array([0, d], dtype=np.int64)
        prob, alias = _hpat_fill_chunk(degrees, indptr, np.where(w > 0, w, 0.0))
        if prob.size:
            start = self.hpat.level_table_start(v, 1)
            self.hpat.prob[start : start + prob.size] = prob
            self.hpat.alias[start : start + alias.size] = alias
        self._stale_dead[v] = 0
        self.stats.vertex_rebuilds += 1

    # -- queries ---------------------------------------------------------------

    def alive_count(self, v: int, candidate_size: int) -> int:
        """Live candidates within the newest ``candidate_size`` edges of v."""
        dead_here = self._dead_positions.get(v)
        if not dead_here:
            return int(candidate_size)
        return int(candidate_size) - bisect.bisect_left(dead_here, candidate_size)

    def is_dead(self, v: int, position: int) -> bool:
        return bool(self.dead[int(self.graph.indptr[v]) + position])

    # -- sampling --------------------------------------------------------------

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Sample a *live* edge index in ``[0, candidate_size)`` ∝ weight."""
        s = int(candidate_size)
        if self.alive_count(v, s) <= 0:
            raise EmptyCandidateSetError(
                f"vertex {v}: no live candidates in prefix of {s}"
            )
        lo = int(self.graph.indptr[v])
        for _ in range(MAX_TOMBSTONE_RETRIES):
            idx = self.hpat.sample(v, s, rng, counters)
            if not self.dead[lo + idx]:
                return idx
            self.stats.tombstone_retries += 1
            if counters is not None:
                counters.record_trial(False)
        # Exact fallback: one live-weight scan (rare; cost-accounted).
        self.stats.fallback_scans += 1
        if counters is not None:
            counters.record_scan(s)
        w = self.weights[lo : lo + s]
        prefix = build_prefix_sums(w)
        if not (prefix[s] > 0):
            raise EmptyCandidateSetError(f"vertex {v}: zero live weight")
        r = draw_in_range(rng, 0.0, prefix[s])
        return its_search(prefix, r, 0, s, counters)

    def nbytes(self) -> int:
        return int(self.hpat.nbytes() + self.weights.nbytes + self.dead.nbytes)

    # -- epoch pinning ---------------------------------------------------------

    def pin(self) -> "TombstonePin":
        """Freeze the current epoch for isolated reads.

        While any pin is alive, in-place vertex rebuilds are deferred
        (queued, replayed on last release), so the level tables a
        pinned reader rejection-samples from stay exactly as they were.
        """
        self._active_pins += 1
        return TombstonePin(self)

    def _release_pin(self) -> None:
        self._active_pins -= 1
        if self._active_pins == 0 and self._deferred_rebuilds:
            deferred, self._deferred_rebuilds = self._deferred_rebuilds, set()
            for v in sorted(deferred):
                if self._stale_dead.get(v, 0):
                    self._rebuild_vertex(v)


class TombstonePin:
    """Reads against one frozen deletion epoch (see ``TombstoneHPAT.pin``).

    Answers the same ``alive_count``/``sample`` contract as the live
    index, but as of the pin's epoch: edges deleted afterwards are
    *resurrected* — counted alive and sampled at the original weight
    recorded in the deletion log. Results are bit-identical to running
    the same reads before the post-pin deletions happened. Release the
    pin (or use it as a context manager) so deferred rebuilds can run.
    """

    __slots__ = ("_owner", "epoch", "_log_len", "_released")

    def __init__(self, owner: TombstoneHPAT):
        self._owner = owner
        self.epoch = owner.epoch
        self._log_len = len(owner._log)
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._owner._release_pin()

    def __enter__(self) -> "TombstonePin":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def _revived(self, v: int) -> Dict[int, float]:
        """position → original weight for post-pin deletions of v."""
        out: Dict[int, float] = {}
        for _epoch, u, position, w in self._owner._log[self._log_len:]:
            if u == v:
                out[position] = w
        return out

    def alive_count(self, v: int, candidate_size: int) -> int:
        s = int(candidate_size)
        alive = self._owner.alive_count(v, s)
        return alive + sum(1 for p in self._revived(v) if p < s)

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Sample a live-at-pin edge index in ``[0, candidate_size)``."""
        owner = self._owner
        s = int(candidate_size)
        revived = self._revived(v)
        if owner.alive_count(v, s) + sum(1 for p in revived if p < s) <= 0:
            raise EmptyCandidateSetError(
                f"vertex {v}: no candidates live at epoch {self.epoch} "
                f"in prefix of {s}"
            )
        lo = int(owner.graph.indptr[v])
        for _ in range(MAX_TOMBSTONE_RETRIES):
            idx = owner.hpat.sample(v, s, rng, counters)
            if not owner.dead[lo + idx] or idx in revived:
                return idx
            owner.stats.tombstone_retries += 1
            if counters is not None:
                counters.record_trial(False)
        # Exact fallback over the pin-time weights: live weights with
        # post-pin deletions patched back to their logged originals.
        owner.stats.fallback_scans += 1
        if counters is not None:
            counters.record_scan(s)
        w = owner.weights[lo : lo + s].copy()
        for position, orig in revived.items():
            if position < s:
                w[position] = orig
        prefix = build_prefix_sums(w)
        if not (prefix[s] > 0):
            raise EmptyCandidateSetError(
                f"vertex {v}: zero weight live at epoch {self.epoch}"
            )
        r = draw_in_range(rng, 0.0, prefix[s])
        return its_search(prefix, r, 0, s, counters)
