"""Static temporal edge weights — TEA's weight rewrite.

The pivotal algebraic step of the paper (Equation 3): for the exponential
temporal walk, the transition probability

    P((u, v_i, t_i)) = exp(t_i - t) / Σ_j exp(t_j - t) = exp(t_i) / Σ_j exp(t_j)

does not actually depend on the walker's arrival time ``t`` — the common
factor cancels. The same holds trivially for linear weights. TEA therefore
precomputes one *static* weight per edge and builds its alias structures
once, instead of per arrival time.

Numerically, ``exp(t_i)`` overflows for realistic timestamps, so we apply
a *per-vertex* shift: ``exp((t_i - t_max(u)) / scale)``. Shifting by a
per-vertex constant multiplies all of u's weights by the same factor and
leaves every transition probability over every candidate set of u
unchanged (candidate sets never span vertices); ``scale`` is the
application's time-decay constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.temporal_graph import TemporalGraph

KINDS = ("uniform", "linear_rank", "linear_time", "exponential",
         "exponential_decay")


@dataclass(frozen=True)
class WeightModel:
    """A named static-weight transform ``δ(u, v_i, t_i) = f(t_i)``.

    kind:
        * ``uniform`` — all weights 1 (unbiased temporal walk);
        * ``linear_rank`` — the paper's ``rank()`` variant of the linear
          temporal weight: the i-th oldest edge of a vertex gets weight i
          (1-based), so later edges are linearly preferred;
        * ``linear_time`` — weight ``t_i - t_min(u) + 1`` (the raw-time
          variant, shifted per vertex to stay positive);
        * ``exponential`` — ``exp((t_i - t_max(u)) / scale)`` (later is
          heavier: the paper's temporal walk bias);
        * ``exponential_decay`` — ``exp((t_min(u) - t_i) / scale)``
          (earlier is heavier: the recency bias of *reversed-time* views,
          used by the GNN neighborhood sampler).
    scale:
        Decay constant for the exponential kinds (ignored otherwise).
    """

    kind: str = "exponential"
    scale: float = 1.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown weight kind {self.kind!r}; choose from {KINDS}")
        if self.kind.startswith("exponential") and not (self.scale > 0):
            raise ValueError("exponential scale must be positive")

    def compute(self, graph: TemporalGraph) -> np.ndarray:
        """Per-edge static weights aligned with the graph's CSR layout.

        Edges within each vertex segment are time-descending, so for the
        monotone kinds (on unweighted graphs) the weight array is
        non-increasing per segment — the property the rejection
        baseline's prefix-max envelope uses. On weighted graphs
        (``graph.eweight`` set) every value is multiplied by the user
        weight: δ(e) = w_e · f(t_e).
        """
        out = self._temporal_part(graph)
        if graph.eweight is not None and out.size:
            out = out * graph.eweight
        return out

    def _temporal_part(self, graph: TemporalGraph) -> np.ndarray:
        m = graph.num_edges
        out = np.empty(m, dtype=np.float64)
        if m == 0:
            return out
        if self.kind == "uniform":
            out.fill(1.0)
            return out
        degrees = graph.degrees()
        if self.kind == "linear_rank":
            # Segment positions j = 0..d-1 (newest first) → rank d - j.
            pos = np.arange(m) - np.repeat(graph.indptr[:-1], degrees)
            out[:] = np.repeat(degrees, degrees) - pos
            return out
        if self.kind == "linear_time":
            seg_min = np.minimum.reduceat(
                graph.etime, np.minimum(graph.indptr[:-1], m - 1)
            )
            out[:] = graph.etime - np.repeat(seg_min, degrees) + 1.0
            return out
        if self.kind == "exponential_decay":
            seg_min = np.minimum.reduceat(
                graph.etime, np.minimum(graph.indptr[:-1], m - 1)
            )
            out[:] = np.exp((np.repeat(seg_min, degrees) - graph.etime) / self.scale)
            return out
        # exponential
        seg_max = graph.etime[np.minimum(graph.indptr[:-1], m - 1)]
        out[:] = np.exp((graph.etime - np.repeat(seg_max, degrees)) / self.scale)
        return out

    def weight_of_time(self, t: np.ndarray, t_ref: float = 0.0) -> np.ndarray:
        """The *dynamic* weight ``f(t)`` relative to a reference time.

        Used by the CTDNE-style baseline, which evaluates the weight per
        step instead of using the static rewrite. For the exponential kind
        this is ``exp((t - t_ref) / scale)`` — the un-cancelled Equation 3
        form.
        """
        t = np.asarray(t, dtype=np.float64)
        if self.kind == "uniform":
            return np.ones_like(t)
        if self.kind in ("linear_rank", "linear_time"):
            return t - t_ref + 1.0
        if self.kind == "exponential_decay":
            return np.exp((t_ref - t) / self.scale)
        return np.exp((t - t_ref) / self.scale)

    def describe(self) -> str:
        if self.kind == "exponential":
            return f"exponential(scale={self.scale:g})"
        return self.kind
