"""Hierarchical Persistent Alias Table (HPAT) — paper Section 3.3.

HPAT keeps, for every vertex u and every level k ≤ floor(log2 d), alias
tables for the aligned trunks τ(k, i) covering positions
[i·2^k, (i+1)·2^k) of u's time-descending edge list. A candidate prefix of
size s splits into the binary decomposition of s (at most log2 s aligned
trunks); sampling is:

1. ITS across those ≤ log2(s) trunk boundaries — O(log log D) probes —
   using the per-vertex prefix-sum array C (P(g_j) ∝ C[cut_j]−C[cut_{j−1}]);
2. one O(1) alias draw inside the selected trunk.

Space is O(D log D) per vertex (every level stores ≤ D table entries);
level 0 trunks are single edges whose alias table is the identity, so
they need no storage (the paper's first "ad hoc optimisation" — edges
older than every possible arrival are likewise never materialised because
they are simply never addressed).

Flat layout: ``c`` is the shared prefix-sum array (vertex v's segment
starts at ``indptr[v] + v``); level tables for k ≥ 1 are concatenated in
``prob``/``alias`` with per-(vertex, level) offsets in ``lvl_ptr``
(indexed by ``lvl_base[v] + k - 1``), so locating any trunk's table is
pure arithmetic — the lock-free precomputed positions of Section 4.2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aux_index import AuxiliaryIndex
from repro.core.trunks import binary_decompose
from repro.exceptions import EmptyCandidateSetError
from repro.graph.temporal_graph import TemporalGraph
from repro.sampling.alias import alias_draw
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import draw_in_range


class HierarchicalPAT:
    """HPAT index over a :class:`TemporalGraph` with fixed static weights.

    Build with :func:`repro.core.builder.build_hpat` (or :meth:`build`).
    ``aux`` is the optional :class:`AuxiliaryIndex`; without it the
    decomposition is recomputed per step (the paper's Figure 11 ablation).
    """

    __slots__ = ("indptr", "c", "prob", "alias", "lvl_ptr", "lvl_base", "aux")

    def __init__(
        self,
        indptr: np.ndarray,
        c: np.ndarray,
        prob: np.ndarray,
        alias: np.ndarray,
        lvl_ptr: np.ndarray,
        lvl_base: np.ndarray,
        aux: Optional[AuxiliaryIndex] = None,
    ):
        self.indptr = indptr
        self.c = c
        self.prob = prob
        self.alias = alias
        self.lvl_ptr = lvl_ptr
        self.lvl_base = lvl_base
        self.aux = aux

    @classmethod
    def build(
        cls,
        graph: TemporalGraph,
        weights: np.ndarray,
        with_aux_index: bool = True,
    ) -> "HierarchicalPAT":
        """Construct an HPAT (see :func:`repro.core.builder.build_hpat`)."""
        from repro.core.builder import build_hpat

        return build_hpat(graph, weights, with_aux_index=with_aux_index)

    # -- layout helpers ------------------------------------------------------

    def c_base(self, v: int) -> int:
        return int(self.indptr[v] + v)

    def level_table_start(self, v: int, level: int) -> int:
        """Offset of vertex v's level-``level`` tables in ``prob``/``alias``."""
        return int(self.lvl_ptr[self.lvl_base[v] + level - 1])

    def candidate_weight(self, v: int, candidate_size: int) -> float:
        return float(self.c[self.c_base(v) + candidate_size])

    # -- sampling --------------------------------------------------------------

    def sample(
        self,
        v: int,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
        use_index: bool = True,
    ) -> int:
        """Sample an edge index in ``[0, candidate_size)`` of vertex v.

        ``use_index=False`` disables the auxiliary index: the binary
        decomposition is recomputed per call (O(log D) trunk finding), the
        configuration the paper's piecewise breakdown (Figure 11) measures
        against.
        """
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError(f"vertex {v}: empty candidate set")
        base = self.c_base(v)
        total = self.c[base + s]
        if not (total > 0):
            raise EmptyCandidateSetError(f"vertex {v}: zero-weight candidate set")
        if use_index and self.aux is not None:
            levels, cuts = self.aux.lookup(s)
        else:
            blocks = binary_decompose(s)
            levels = [k for k, _ in blocks]
            cuts = [off + (1 << k) for k, off in blocks]
            if counters is not None:
                # Model the O(log D) trunk-finding the index removes: one
                # probe per level consulted while locating each trunk.
                counters.record_probe(max(1, s.bit_length() - 1))
        nblocks = len(levels)
        r = draw_in_range(rng, 0.0, total)
        # ITS over the block boundaries (≤ log2 s of them): binary search
        # for the first cut whose prefix weight covers the draw.
        lo_b, hi_b = -1, nblocks - 1
        while hi_b - lo_b > 1:
            mid = (lo_b + hi_b) // 2
            if counters is not None:
                counters.record_probe()
            if self.c[base + cuts[mid]] < r:
                lo_b = mid
            else:
                hi_b = mid
        if counters is not None:
            counters.record_probe()
        j = hi_b
        k = int(levels[j])
        cut = int(cuts[j])
        offset = cut - (1 << k)
        if k == 0:
            return offset
        start = self.level_table_start(v, k) + offset
        local = alias_draw(self.prob, self.alias, rng, start, start + (1 << k), counters)
        return offset + int(local)

    # -- accounting --------------------------------------------------------------

    def nbytes(self) -> int:
        n = int(
            self.c.nbytes
            + self.prob.nbytes
            + self.alias.nbytes
            + self.lvl_ptr.nbytes
            + self.lvl_base.nbytes
        )
        if self.aux is not None:
            n += self.aux.nbytes()
        return n

    def memory_breakdown(self) -> dict:
        out = {
            "prefix_sums": int(self.c.nbytes),
            "alias_tables": int(self.prob.nbytes + self.alias.nbytes),
            "level_offsets": int(self.lvl_ptr.nbytes + self.lvl_base.nbytes),
        }
        out["aux_index"] = int(self.aux.nbytes()) if self.aux is not None else 0
        return out
