"""BSP distributed walk engine: KnightKing's execution model, TEA's sampler.

Execution proceeds in supersteps. Each worker holds a queue of resident
walkers; in a superstep it advances every resident walker by one edge
(sampling from its *local* HPAT shard — every vertex's index lives
wholly on its owner, because PAT/HPAT are per-vertex structures), then
walkers whose new vertex belongs elsewhere are shipped as messages and
join the destination worker's queue for the next superstep. This is
exactly KnightKing's walker-centric BSP loop with the rejection sampler
swapped for TEA's hybrid sampling — the integration the paper's
Section 4.4 proposes as future work.

The cluster is simulated in-process with explicit cost accounting:

* compute: per-worker sampling steps per superstep — a superstep's
  modeled duration is its *busiest* worker (BSP barrier);
* communication: one message per cross-partition hop, charged a
  configurable per-message latency;
* modeled makespan = Σ over supersteps of (max worker steps ×
  step_cost + outgoing messages × message_cost / workers).

Sampling statistics are identical to the single-node engine (tested):
distribution depends only on the per-vertex index, which sharding does
not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import builder
from repro.distributed.partition import PARTITIONERS, edge_cut, partition_load
from repro.engines.base import Workload
from repro.graph.temporal_graph import TemporalGraph
from repro.telemetry import MemoryReport, PhaseTimer
from repro.rng import RngLike, make_rng, spawn
from repro.sampling.counters import CostCounters
from repro.telemetry import MetricsRegistry, Tracer
from repro.walks.spec import WalkSpec
from repro.walks.walker import WalkPath

DEFAULT_STEP_COST = 1.0  # model units per sampling step
DEFAULT_MESSAGE_COST = 0.2  # model units per walker migration


@dataclass
class DistributedStats:
    """Accounting for one distributed run."""

    num_workers: int
    supersteps: int = 0
    steps_per_worker: np.ndarray = field(default_factory=lambda: np.zeros(0))
    messages: int = 0
    modeled_makespan: float = 0.0
    edge_cut: int = 0
    load: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def total_steps(self) -> int:
        return int(self.steps_per_worker.sum())

    @property
    def compute_balance(self) -> float:
        """max/mean worker steps — 1.0 is perfect balance."""
        mean = self.steps_per_worker.mean() if self.steps_per_worker.size else 0.0
        if mean == 0:
            return 1.0
        return float(self.steps_per_worker.max() / mean)

    @property
    def migration_rate(self) -> float:
        """Fraction of steps that crossed a partition boundary."""
        return self.messages / self.total_steps if self.total_steps else 0.0

    def snapshot(self) -> dict:
        return {
            "workers": self.num_workers,
            "supersteps": self.supersteps,
            "total_steps": self.total_steps,
            "messages": self.messages,
            "migration_rate": round(self.migration_rate, 4),
            "compute_balance": round(self.compute_balance, 3),
            "modeled_makespan": round(self.modeled_makespan, 2),
            "edge_cut": self.edge_cut,
        }


class _Worker:
    """One simulated worker: a vertex shard plus its walker queue.

    Each worker owns a private :class:`CostCounters` *and* a private
    :class:`MetricsRegistry` — the per-worker discipline that makes the
    shared-counter thread hazard structurally impossible (see the note
    in :mod:`repro.sampling.counters`); the engine folds both at the
    barrier via their merge paths.
    """

    __slots__ = ("worker_id", "counters", "registry", "queue", "steps")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.counters = CostCounters()
        self.registry = MetricsRegistry()
        self.queue: List[int] = []  # walker ids resident this superstep
        self.steps = 0


@dataclass
class _WalkerState:
    hops: List[Tuple[int, Optional[float]]]
    remaining: int

    @property
    def vertex(self) -> int:
        return self.hops[-1][0]

    @property
    def time(self) -> Optional[float]:
        return self.hops[-1][1]

    @property
    def prev_vertex(self) -> Optional[int]:
        return self.hops[-2][0] if len(self.hops) > 1 else None


class DistributedTeaEngine:
    """Simulated multi-worker TEA (HPAT sampling inside KnightKing's BSP).

    Parameters
    ----------
    num_workers:
        Simulated cluster size.
    partitioner:
        ``"hash"``, ``"range"``, ``"degree"``, or a callable
        ``(graph, num_workers) -> owners`` array.
    step_cost / message_cost:
        Model-unit charges for a sampling step and a walker migration;
        the modeled makespan uses them (see module docstring).
    """

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        num_workers: int = 4,
        partitioner="hash",
        step_cost: float = DEFAULT_STEP_COST,
        message_cost: float = DEFAULT_MESSAGE_COST,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.graph = spec.restrict(graph)
        self.spec = spec
        self.num_workers = int(num_workers)
        if callable(partitioner):
            self._partition_fn = partitioner
            self.partitioner_name = getattr(partitioner, "__name__", "custom")
        else:
            try:
                self._partition_fn = PARTITIONERS[partitioner]
            except KeyError:
                raise ValueError(
                    f"unknown partitioner {partitioner!r}; "
                    f"choose from {sorted(PARTITIONERS)} or pass a callable"
                ) from None
            self.partitioner_name = partitioner
        self.step_cost = float(step_cost)
        self.message_cost = float(message_cost)
        self.owners: Optional[np.ndarray] = None
        self.index = None
        self.candidate_sizes: Optional[np.ndarray] = None
        self._prepared = False

    # -- preprocessing -------------------------------------------------------

    def prepare(self) -> None:
        """Partition vertices and build the (sharded) HPAT.

        The HPAT is a per-vertex structure, so one global build is
        byte-identical to concatenating per-worker shard builds; workers
        simply index into their own vertices' slices. (Tested against
        per-shard construction in the test suite.)
        """
        if self._prepared:
            return
        self.owners = self._partition_fn(self.graph, self.num_workers)
        pre = builder.preprocess(self.graph, self.spec.weight_model)
        self.index = pre.index
        self.candidate_sizes = pre.candidate_sizes
        self._prepared = True

    # -- execution -------------------------------------------------------------

    def run(self, workload: Workload, seed: RngLike = 0,
            record_paths: bool = True,
            registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None):
        """Run the workload in BSP supersteps; returns (paths, stats).

        ``registry``, when given, receives the merged per-worker
        registries plus cluster-level gauges after the run.
        """
        if registry is None:
            registry = MetricsRegistry()
        self.last_registry = registry
        tracer = tracer if tracer is not None else Tracer(enabled=True)
        timer = PhaseTimer()
        with timer.phase("prepare"), tracer.span("prepare", engine="tea-distributed"):
            self.prepare()
        rng = make_rng(seed)
        worker_rngs = spawn(rng, self.num_workers)
        workers = [_Worker(w) for w in range(self.num_workers)]
        beta = self.spec.dynamic_parameter
        beta_max = beta.beta_max if beta is not None else 1.0
        g = self.graph

        starts = workload.resolve_starts(g.num_vertices, rng)
        walkers = [
            _WalkerState(hops=[(int(u), None)], remaining=workload.max_length)
            for u in starts
        ]
        for wid, state in enumerate(walkers):
            workers[self.owners[state.vertex]].queue.append(wid)

        stats = DistributedStats(
            num_workers=self.num_workers,
            steps_per_worker=np.zeros(self.num_workers, dtype=np.int64),
            edge_cut=edge_cut(g, self.owners),
            load=partition_load(g, self.owners, self.num_workers),
        )

        with timer.phase("walk"), tracer.span(
            "walk", engine="tea-distributed", workers=self.num_workers
        ):
            while any(worker.queue for worker in workers):
                stats.supersteps += 1
                superstep_steps = np.zeros(self.num_workers, dtype=np.int64)
                outgoing: Dict[int, List[int]] = {w: [] for w in range(self.num_workers)}
                messages_this_step = 0
                for worker in workers:
                    wrng = worker_rngs[worker.worker_id]
                    queue, worker.queue = worker.queue, []
                    for wid in queue:
                        state = walkers[wid]
                        advanced = self._advance(state, wrng, worker.counters, beta, beta_max)
                        if not advanced:
                            continue  # walk finished
                        superstep_steps[worker.worker_id] += 1
                        worker.steps += 1
                        dest = int(self.owners[state.vertex])
                        if dest == worker.worker_id:
                            outgoing[dest].append(wid)
                        else:
                            messages_this_step += 1
                            worker.counters.record_io(64)  # walker state ships
                            outgoing[dest].append(wid)
                for w, arrivals in outgoing.items():
                    workers[w].queue.extend(arrivals)
                stats.steps_per_worker += superstep_steps
                stats.messages += messages_this_step
                stats.modeled_makespan += (
                    float(superstep_steps.max()) * self.step_cost
                    + messages_this_step * self.message_cost / self.num_workers
                )

        # Fold the per-worker accounts: CostCounters merge for the
        # legacy return value, registry merge for telemetry (each worker
        # publishes into its own registry first — the merge path the
        # counters module's thread-safety note prescribes).
        counters = CostCounters.merge_all(w.counters for w in workers)
        for worker in workers:
            worker.counters.publish(worker.registry)
            worker.registry.counter(
                "distributed.worker_steps", "sampling steps across workers"
            ).inc(worker.steps)
            registry.merge(worker.registry)
        for key, value in stats.snapshot().items():
            registry.gauge(f"distributed.{key}", "cluster-level run stat").set(value)
        paths = [WalkPath(hops=list(s.hops)) for s in walkers] if record_paths else []
        return paths, stats, counters, timer

    def _advance(self, state: _WalkerState, rng, counters: CostCounters,
                 beta, beta_max: float) -> bool:
        """One walk step on the owning worker; False when the walk ends."""
        if state.remaining <= 0:
            return False
        g = self.graph
        v = state.vertex
        t = state.time
        s = g.out_degree(v) if t is None else g.candidate_count(v, t)
        if s <= 0:
            return False
        counters.record_step()
        for _ in range(1_000_000):
            idx = self.index.sample(v, s, rng, counters)
            pos = int(g.indptr[v]) + idx
            v2 = int(g.nbr[pos])
            t2 = float(g.etime[pos])
            if beta is None:
                break
            b = beta(g, state.prev_vertex, v2)
            ok = rng.random() * beta_max <= b
            counters.record_trial(ok)
            if ok:
                break
        state.hops.append((v2, t2))
        state.remaining -= 1
        return True

    # -- reporting -------------------------------------------------------------

    def memory_report_per_worker(self) -> List[MemoryReport]:
        """Shard sizes: each worker holds its vertices' slice of the index."""
        self.prepare()
        g = self.graph
        reports = []
        degrees = g.degrees()
        total_index = self.index.nbytes()
        for w in range(self.num_workers):
            mine = self.owners == w
            share = degrees[mine].sum() / max(1, g.num_edges)
            report = MemoryReport()
            report.add("index_shard", int(total_index * share))
            report.add("graph_shard", int(g.nbytes() * share))
            reports.append(report)
        return reports
