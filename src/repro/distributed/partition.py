"""Vertex partitioners for the simulated cluster.

A partition assigns every vertex to one of ``num_workers`` workers; the
worker then owns that vertex's adjacency and HPAT shard, and every walk
step at the vertex executes there. Partition quality shows up two ways:

* **load balance** — per-worker edge counts bound per-superstep compute
  (KnightKing-style BSP: a superstep lasts as long as its busiest
  worker);
* **communication** — walker migrations happen whenever an edge crosses
  partitions.

Three standard strategies are provided; the distributed benchmark
ablates them.
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph


def _validate(num_vertices: int, num_workers: int) -> None:
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if num_vertices < 0:
        raise ValueError("num_vertices must be >= 0")


def hash_partition(graph: TemporalGraph, num_workers: int) -> np.ndarray:
    """Owner = vertex id modulo workers (KnightKing's default)."""
    _validate(graph.num_vertices, num_workers)
    return np.arange(graph.num_vertices, dtype=np.int64) % num_workers


def range_partition(graph: TemporalGraph, num_workers: int) -> np.ndarray:
    """Contiguous id ranges with roughly equal *edge* counts per worker.

    Walks the CSR offsets so each worker owns ≈ |E|/W edges — the
    balance that matters for sampling load, not vertex counts.
    """
    _validate(graph.num_vertices, num_workers)
    n, m = graph.num_vertices, graph.num_edges
    owners = np.zeros(n, dtype=np.int64)
    if n == 0:
        return owners
    target = max(1, m // num_workers)
    worker = 0
    edges_here = 0
    for v in range(n):
        owners[v] = worker
        edges_here += graph.out_degree(v)
        if edges_here >= target and worker < num_workers - 1:
            worker += 1
            edges_here = 0
    return owners


def degree_balanced_partition(graph: TemporalGraph, num_workers: int) -> np.ndarray:
    """Greedy longest-processing-time bin packing on vertex degrees.

    Assign vertices in decreasing degree order to the currently lightest
    worker — the classic LPT heuristic, ≤ 4/3 of optimal makespan. Best
    load balance of the three; no locality.
    """
    _validate(graph.num_vertices, num_workers)
    owners = np.zeros(graph.num_vertices, dtype=np.int64)
    loads = np.zeros(num_workers, dtype=np.int64)
    degrees = graph.degrees()
    for v in np.argsort(degrees)[::-1]:
        w = int(np.argmin(loads))
        owners[v] = w
        loads[w] += degrees[v] + 1  # +1 so isolated vertices also spread
    return owners


PARTITIONERS = {
    "hash": hash_partition,
    "range": range_partition,
    "degree": degree_balanced_partition,
}


def partition_load(graph: TemporalGraph, owners: np.ndarray, num_workers: int) -> np.ndarray:
    """Per-worker edge counts under a partition (load-balance metric)."""
    return np.bincount(owners, weights=graph.degrees().astype(np.float64),
                       minlength=num_workers).astype(np.int64)


def edge_cut(graph: TemporalGraph, owners: np.ndarray) -> int:
    """Number of edges whose endpoints live on different workers."""
    if graph.num_edges == 0:
        return 0
    src = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
    return int((owners[src] != owners[graph.nbr]).sum())
