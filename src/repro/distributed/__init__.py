"""Distributed temporal walks — the paper's stated future work.

Section 4.4: "TEA can not support distributed random walk and sampling.
One possible solution could be replacing the rejection sampling of
KnightKing by our PAT or HPAT in order to support distributed
execution." This package implements exactly that solution as a
simulated cluster: vertices are partitioned across workers, each worker
owns the HPAT shards for its vertices (construction is per-vertex and
lock-free, so sharding is clean), and walkers migrate between workers in
BSP supersteps exactly like KnightKing's walker-centric engine — with
the per-step sampler swapped for TEA's hybrid.

Everything runs in one process with explicit accounting (per-worker
steps, cross-partition messages, superstep count, modeled wall time), so
experiments about communication/computation trade-offs are deterministic
and hardware-independent.
"""

from repro.distributed.partition import (
    degree_balanced_partition,
    hash_partition,
    range_partition,
)
from repro.distributed.engine import DistributedTeaEngine, DistributedStats

__all__ = [
    "hash_partition",
    "range_partition",
    "degree_balanced_partition",
    "DistributedTeaEngine",
    "DistributedStats",
]
