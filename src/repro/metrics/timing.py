"""Deprecated shim: moved to :mod:`repro.telemetry.timing`."""

import warnings

from repro.telemetry.timing import PhaseTimer  # noqa: F401 — re-export

warnings.warn(
    "repro.metrics.timing is deprecated; use repro.telemetry.timing",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["PhaseTimer"]
