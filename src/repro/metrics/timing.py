"""Tiny phase timer used by engines and benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    >>> timer = PhaseTimer()
    >>> with timer.phase("preprocess"):
    ...     pass
    >>> "preprocess" in timer.seconds
    True
    """

    seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] = self.seconds.get(name, 0.0) + (
                time.perf_counter() - start
            )

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def snapshot(self) -> Dict[str, float]:
        out = dict(self.seconds)
        out["total"] = self.total
        return out
