"""Structure-level memory accounting (Figures 9 and 12b).

The paper compares engines by the bytes their sampling structures occupy.
We account bytes exactly (numpy ``nbytes`` of every array a structure
owns) rather than sampling process RSS, which in Python is dominated by
interpreter noise. :class:`MemoryReport` is a named bag of components
that engines fill in and benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


def format_bytes(n: int) -> str:
    """Human-readable bytes (KiB/MiB/GiB)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.2f} TiB"


@dataclass
class MemoryReport:
    """Per-component byte counts for one engine configuration."""

    components: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, nbytes: int) -> "MemoryReport":
        self.components[name] = self.components.get(name, 0) + int(nbytes)
        return self

    @property
    def total(self) -> int:
        return sum(self.components.values())

    def fraction(self, name: str) -> float:
        """Share of the total held by one component (e.g. the paper's
        observation that the HPAT index is 82.5%–91.2% of TEA's memory)."""
        total = self.total
        return self.components.get(name, 0) / total if total else 0.0

    def pretty(self) -> str:
        lines = [f"total: {format_bytes(self.total)}"]
        for name, nbytes in sorted(self.components.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name}: {format_bytes(nbytes)}")
        return "\n".join(lines)
