"""Deprecated shim: moved to :mod:`repro.telemetry.memory`."""

import warnings

from repro.telemetry.memory import (  # noqa: F401 — re-exports
    MemoryReport,
    RusageSample,
    format_bytes,
    sample_rusage,
)

warnings.warn(
    "repro.metrics.memory is deprecated; use repro.telemetry.memory",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["MemoryReport", "RusageSample", "format_bytes", "sample_rusage"]
