"""Deprecated shim: ``repro.metrics`` moved into ``repro.telemetry``.

The pre-telemetry measurement package (byte accounting, phase timers)
is consolidated into :mod:`repro.telemetry` so one layer owns every
metric API. These re-exports keep old imports working; new code should
import :class:`~repro.telemetry.memory.MemoryReport`,
:func:`~repro.telemetry.memory.format_bytes`, and
:class:`~repro.telemetry.timing.PhaseTimer` from ``repro.telemetry``.
"""

import warnings

from repro.telemetry.memory import MemoryReport, format_bytes
from repro.telemetry.timing import PhaseTimer

warnings.warn(
    "repro.metrics is deprecated; import from repro.telemetry instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["MemoryReport", "format_bytes", "PhaseTimer"]
