"""Measurement utilities: byte accounting and phase timers."""

from repro.metrics.memory import MemoryReport, format_bytes
from repro.metrics.timing import PhaseTimer

__all__ = ["MemoryReport", "format_bytes", "PhaseTimer"]
