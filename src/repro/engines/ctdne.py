"""CTDNE-style reference baseline (paper Figure 10).

CTDNE is a graph-learning reference implementation, not a walk system: at
every step it materialises the candidate list, evaluates the dynamic
weight ``exp(t_i − t)`` edge by edge at interpreter speed, accumulates
the CDF, and inverse-samples it. No preprocessing, no static-weight
rewrite, no index — the paper reports TEA up to 8,816× faster. We keep
the per-edge Python arithmetic deliberately (that *is* the baseline being
modeled); only the candidate-set binary search comes from the shared
loop.
"""

from __future__ import annotations

import bisect
import math
from typing import Optional

from repro.engines.base import Engine
from repro.exceptions import EmptyCandidateSetError
from repro.telemetry import MemoryReport


class CtdneEngine(Engine):
    """Naive per-step dynamic-weight evaluation (reference-style)."""

    name = "ctdne"

    def _prepare(self) -> None:
        # CTDNE does no preprocessing; the walk reads the graph directly.
        pass

    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        s = int(candidate_size)
        lo = int(self.graph.indptr[v])
        times = self.graph.etime
        model = self.spec.weight_model
        kind = model.kind
        t_ref = walker_time if walker_time is not None else float(times[lo])
        eweight = self.graph.eweight
        counters.record_scan(s)
        cdf = []
        acc = 0.0
        if kind == "exponential":
            inv_scale = 1.0 / model.scale
            for j in range(s):
                w = math.exp((times[lo + j] - t_ref) * inv_scale)
                if eweight is not None:
                    w *= eweight[lo + j]
                acc += w
                cdf.append(acc)
        elif kind == "uniform":
            for j in range(s):
                acc += 1.0 if eweight is None else float(eweight[lo + j])
                cdf.append(acc)
        else:  # linear kinds: rank among the candidate prefix
            for j in range(s):
                w = float(s - j)
                if eweight is not None:
                    w *= eweight[lo + j]
                acc += w
                cdf.append(acc)
        if not (acc > 0.0):
            raise EmptyCandidateSetError(f"vertex {v}: zero-weight candidate set")
        r = acc - rng.random() * acc  # draw in (0, acc]
        return bisect.bisect_left(cdf, r)

    def memory_report(self) -> MemoryReport:
        return super().memory_report()
