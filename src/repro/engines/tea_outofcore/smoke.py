"""Fast invariant check for the out-of-core engines (``make ooc-smoke``).

``python -m repro.engines.tea_outofcore.smoke`` runs the gate the
Makefile wires into ``make test`` (the ooc twin of ``scaling-smoke``):

* step parity — at ``max_length=1`` the step count is determined by the
  starts alone (every walk whose start has candidates takes exactly one
  step), so scalar and batched engines must agree *exactly*, whatever
  their RNG consumption order;
* cache sanity — at an ample budget the re-entry cache must serve a
  healthy fraction of lookups on a hub-heavy power-law graph;
* coalescing — the batched engine must finish the same workload in
  strictly fewer backing read operations than the scalar engine at an
  equal cache budget;
* prefetch conservation — ``issued == hits + wasted + in_flight``;
* determinism — two same-seed batched runs produce identical paths.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.engines.base import Workload

#: Minimum lookup hit rate expected from the re-entry cache on the
#: smoke graph at an ample budget (hubs dominate power-law walk mass).
CACHE_HIT_FLOOR = 0.3

SMOKE_CACHE_BYTES = 1 << 20


def ooc_smoke(verbose: bool = True) -> dict:
    """Run every invariant; raises ``AssertionError`` on violation."""
    from repro.engines.tea_outofcore import (
        BatchTeaOutOfCoreEngine,
        TeaOutOfCoreEngine,
    )
    from repro.graph.datasets import load_dataset
    from repro.walks.apps import exponential_walk

    graph = load_dataset("growth", scale=0.25, seed=7)
    spec = exponential_walk(scale=2.0)

    # Step parity at max_length=1: deterministic, RNG-independent.
    parity_wl = Workload(walks_per_vertex=2, max_length=1)
    scalar_steps = TeaOutOfCoreEngine(
        graph, spec, cache_bytes=SMOKE_CACHE_BYTES
    ).run(parity_wl, seed=0, record_paths=False).counters.steps
    batch_steps = BatchTeaOutOfCoreEngine(
        graph, spec, cache_bytes=SMOKE_CACHE_BYTES
    ).run(parity_wl, seed=0, record_paths=False).counters.steps
    assert batch_steps == scalar_steps, (
        f"step parity violated at max_length=1: batched took {batch_steps}, "
        f"scalar took {scalar_steps}"
    )

    # Full workload: coalescing, cache, prefetch and determinism checks.
    workload = Workload(walks_per_vertex=2, max_length=40)
    scalar = TeaOutOfCoreEngine(graph, spec, cache_bytes=SMOKE_CACHE_BYTES)
    scalar_result = scalar.run(workload, seed=0, record_paths=False)
    scalar_ops = scalar.index.store.read_ops

    batch = BatchTeaOutOfCoreEngine(
        graph, spec, cache_bytes=SMOKE_CACHE_BYTES, prefetch=True
    )
    batch_result = batch.run(workload, seed=0, record_paths=False)
    store = batch.index.store
    assert store.read_ops < scalar_ops, (
        f"coalescing failed: batched used {store.read_ops} backing reads, "
        f"scalar used {scalar_ops} at the same cache budget"
    )
    hit_rate = store.cache.stats.hit_rate
    assert hit_rate >= CACHE_HIT_FLOOR, (
        f"cache hit rate {hit_rate:.3f} below the {CACHE_HIT_FLOOR} floor"
    )
    settled = store.prefetch_hits + store.prefetch_wasted + store.prefetch_in_flight
    assert store.prefetch_issued == settled, (
        f"prefetch conservation violated: issued {store.prefetch_issued} != "
        f"hits {store.prefetch_hits} + wasted {store.prefetch_wasted} + "
        f"in_flight {store.prefetch_in_flight}"
    )

    # Determinism: same seed, same paths.
    first = BatchTeaOutOfCoreEngine(
        graph, spec, cache_bytes=SMOKE_CACHE_BYTES
    ).run(workload, seed=3)
    second = BatchTeaOutOfCoreEngine(
        graph, spec, cache_bytes=SMOKE_CACHE_BYTES
    ).run(workload, seed=3)
    assert [w.hops for w in first.paths] == [w.hops for w in second.paths], (
        "batched ooc engine is not deterministic at a fixed seed"
    )

    summary = {
        "parity_steps": int(scalar_steps),
        "scalar_read_ops": int(scalar_ops),
        "batch_read_ops": int(store.read_ops),
        "cache_hit_rate": round(hit_rate, 4),
        "prefetch_issued": int(store.prefetch_issued),
        "prefetch_hits": int(store.prefetch_hits),
        "prefetch_wasted": int(store.prefetch_wasted),
        "prefetch_in_flight": int(store.prefetch_in_flight),
        "scalar_steps": int(scalar_result.counters.steps),
        "batch_steps": int(batch_result.counters.steps),
    }
    if verbose:
        print("ooc smoke (growth@0.25)")
        for key, value in summary.items():
            print(f"  {key}: {value}")
        print(
            f"read ops {store.read_ops} < scalar {scalar_ops}; "
            f"hit rate {hit_rate:.2f}; prefetch conserved"
        )
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="out-of-core engine invariant smoke check"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    ooc_smoke(verbose=not args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
