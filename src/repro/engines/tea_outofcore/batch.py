"""Frontier-vectorised out-of-core TEA (the batched Figure 14 path).

The scalar :class:`~repro.engines.tea_outofcore.scalar.TeaOutOfCoreEngine`
pays one synchronous trunk read per walker per step. This engine
advances the whole frontier per iteration instead, which turns the I/O
pattern itself into an optimisation surface:

* every lane's range requests for the step are collected and served by
  one :meth:`TrunkStore.read_batch` call — duplicates collapse, and
  adjacent/overlapping ranges **coalesce** into single large backing
  reads (strictly fewer read operations for the same logical bytes);
* after each frontier advance the engine knows exactly which vertices
  the next iteration samples, so it predicts their trunk demand and
  hands it to the :class:`AsyncPrefetcher`, overlapping next-step I/O
  with this step's sampling compute;
* the scan-resistant segmented cache keeps hub trunks resident while
  the coalesced cold reads churn through probation only.

Sampling semantics are :meth:`OutOfCorePAT.sample` exactly — same
trunk-boundary ITS, same in-trunk alias draw, same partial-trunk search
— evaluated in numpy lockstep, so the per-step distribution matches the
scalar engine (chi-squared tested) even though the vectorised RNG
consumption order differs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.outofcore import OutOfCorePAT
from repro.engines.base import Engine
from repro.engines.batch import BatchTeaEngine
from repro.engines.tea_outofcore.prefetch import AsyncPrefetcher
from repro.engines.tea_outofcore.scalar import (
    DEFAULT_OOC_TRUNK_SIZE,
    build_ooc_index,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.telemetry import MemoryReport
from repro.sampling.counters import CostCounters
from repro.walks.spec import WalkSpec

#: Default re-entry cache budget once caching is on by default (the
#: scalar engine predates the cache and still defaults to 0 for
#: backward compatibility; the CLI threads this value to both).
DEFAULT_OOC_CACHE_BYTES = 4 << 20

#: Trunks inspected per lane when predicting next-step demand: the
#: heaviest of the first ``min(full, N)`` trunks is the likeliest ITS
#: winner. Scanning all of them would redo the sampler's work.
_PREFETCH_TRUNK_SCAN = 8


def ooc_sample_batch(
    index: OutOfCorePAT,
    vs: np.ndarray,
    ss: np.ndarray,
    rng: np.random.Generator,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Vectorised PAT-over-TrunkStore draws for (vertex, size) arrays.

    Mirrors :meth:`OutOfCorePAT.sample` case for case — complete-trunk
    ITS over the resident boundary prefix sums, alias draw inside the
    winning trunk, partial-trunk ITS over a disk slice — with every
    disk access routed through :meth:`TrunkStore.read_batch` so the
    whole frontier's ranges dedupe and coalesce. Every ``ss`` entry
    must be >= 1. Probe counts for the lockstep boundary search are
    exact; partial-trunk search probes are the usual batched
    approximation (cf. :func:`repro.engines.batch.hpat_sample_batch`).
    """
    store = index.store
    n = vs.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    ss = ss.astype(np.int64)
    ts = index.trunk_sizes[vs].astype(np.int64)
    full = ss // ts
    rem = ss - full * ts
    tb = index.tr_indptr[vs]
    cbase = (index.indptr[vs] + vs).astype(np.int64)

    # Candidate totals: trunk-aligned prefixes are resident; the rest
    # live on disk as single C entries — one coalesced batch read.
    totals = np.empty(n, dtype=np.float64)
    aligned = rem == 0
    if aligned.any():
        totals[aligned] = index.tr_prefix[tb[aligned] + full[aligned]]
    ragged = ~aligned
    if ragged.any():
        los = cbase[ragged] + ss[ragged]
        blocks, inv = store.read_batch("c", los, los + 1, counters)
        totals[ragged] = np.array([float(b[0]) for b in blocks])[inv]

    r = totals - rng.random(n) * totals  # draws in (0, total]
    full_weight = index.tr_prefix[tb + full]
    in_full = (full > 0) & (r <= full_weight)
    out = np.empty(n, dtype=np.int64)

    if in_full.any():
        rows = np.flatnonzero(in_full)
        # Trunk-boundary ITS in lockstep: the resident tr_prefix bisect
        # of the scalar path, all lanes halving together.
        lo_j = np.zeros(rows.size, dtype=np.int64)
        hi_j = full[rows].copy()
        act = (hi_j - lo_j) > 1
        while act.any():
            if counters is not None:
                counters.record_probe(int(act.sum()))
            mid = (lo_j + hi_j) // 2
            go_up = act & (index.tr_prefix[tb[rows] + mid] < r[rows])
            lo_j[go_up] = mid[go_up]
            go_dn = act & ~go_up
            hi_j[go_dn] = mid[go_dn]
            act = (hi_j - lo_j) > 1
        trunk = lo_j
        edge_lo = (index.indptr[vs[rows]] + trunk * ts[rows]).astype(np.int64)
        blocks, inv = store.read_batch(
            "pa", edge_lo, edge_lo + ts[rows], counters
        )
        widths = np.array([b[0].size for b in blocks], dtype=np.int64)
        offs = np.zeros(widths.size + 1, dtype=np.int64)
        np.cumsum(widths, out=offs[1:])
        prob_cat = np.concatenate([b[0] for b in blocks])
        alias_cat = np.concatenate([b[1] for b in blocks])
        base = offs[inv]
        w = ts[rows]
        cell = (rng.random(rows.size) * w).astype(np.int64)
        cell = np.minimum(cell, w - 1)
        take = rng.random(rows.size) < prob_cat[base + cell]
        local = np.where(take, cell, alias_cat[base + cell])
        out[rows] = trunk * ts[rows] + local
        if counters is not None:
            counters.alias_draws += rows.size
            counters.edges_evaluated += rows.size

    partial = ~in_full
    if partial.any():
        rows = np.flatnonzero(partial)
        # The draw fell past the complete trunks: ITS inside the partial
        # trunk's C slice [full·ts, s]. (rem > 0 here: aligned lanes
        # always satisfy r <= full_weight.)
        los = cbase[rows] + full[rows] * ts[rows]
        his = cbase[rows] + ss[rows] + 1
        blocks, inv = store.read_batch("c", los, his, counters)
        rr = r[rows]
        a = np.empty(rows.size, dtype=np.int64)
        for j, block in enumerate(blocks):
            sel = inv == j
            # its_search's contract: block[a] < r <= block[a+1].
            a[sel] = np.searchsorted(block, rr[sel], side="left") - 1
        out[rows] = full[rows] * ts[rows] + a
        if counters is not None:
            m = np.maximum(rem[rows], 2)
            probes = np.ceil(np.log2(m)).astype(np.int64) + 1
            counters.record_probe(int(probes.sum()))
    return out


class BatchTeaOutOfCoreEngine(BatchTeaEngine):
    """Batched frontier execution against a disk-resident PAT."""

    has_candidate_index = True
    name = "tea-ooc-batch"

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        trunk_size: int = DEFAULT_OOC_TRUNK_SIZE,
        storage_dir: Optional[str] = None,
        cache_bytes: int = DEFAULT_OOC_CACHE_BYTES,
        prefetch: bool = True,
        retry_policy=None,
        verify_checksums: bool = False,
        fault_injector=None,
        kernel_backend="auto",
    ):
        # ``kernel_backend`` is accepted (and resolved) for interface
        # parity with the in-memory engine — this engine's own kernel is
        # the trunk-store sampler below, but the scalar Engine fallbacks
        # and any future in-memory fast path run the resolved backend.
        super().__init__(graph, spec, kernel_backend=kernel_backend)
        self.trunk_size = int(trunk_size)
        self._storage_dir = storage_dir
        self._tmpdir = None
        self.cache_bytes = int(cache_bytes)
        # Prefetch warms the cache; without one it has nowhere to put
        # the blocks, so it quietly turns itself off.
        self.prefetch = bool(prefetch) and self.cache_bytes > 0
        self.retry_policy = retry_policy
        self.verify_checksums = bool(verify_checksums)
        self.fault_injector = fault_injector
        self._prefetcher: Optional[AsyncPrefetcher] = None

    def _prepare(self) -> None:
        self.index, self.candidate_sizes, self._tmpdir = build_ooc_index(
            self.graph, self.spec, self.trunk_size,
            self._storage_dir, self.cache_bytes, self.tracer,
            retry_policy=self.retry_policy,
            verify_checksums=self.verify_checksums,
            fault_injector=self.fault_injector,
        )
        # The store charges its read/decode/cache time to the engine's
        # profiler (NULL by default; the walk phase swaps in the chunk's).
        self.index.store.profiler = self.profiler
        self.weights = None
        self._maybe_build_static_keys()

    @property
    def cache_stats(self):
        """Re-entry cache hit/miss statistics (paper §4.1's optimisation)."""
        self.prepare()
        return self.index.store.cache.stats

    # -- vectorised kernel -----------------------------------------------------

    def _sample_batch(self, vs, ss, rng, counters, draw=None, lanes=None,
                      scratch=None):
        # ``draw``/``lanes``/``scratch`` are accepted for base-kernel signature
        # compatibility but unused: the out-of-core kernel draws from the
        # chunk generator directly. The parallel executor never routes
        # lane streams through this engine (workers run the in-memory
        # kernel over the shared index image), so determinism here stays
        # keyed on the per-run generator as before.
        if self._prefetcher is not None:
            # Settle outstanding predictions before sampling: they were
            # issued for exactly this round's read_batch, so waiting the
            # residual I/O turns them into cache hits instead of racing
            # the synchronous reads for the same ranges.
            self._prefetcher.drain(counters, wait=True)
            if self._prefetcher.failed:
                # The worker died (checksum failure, exhausted retries,
                # injected fault): settle its ledger and fall back to
                # synchronous reads — a persistent error then surfaces
                # on this thread instead of vanishing with the worker.
                self._prefetcher.close(counters)
                self._prefetcher = None
        return ooc_sample_batch(self.index, vs, ss, rng, counters)

    def _on_frontier_advance(self, vs: np.ndarray, ss: np.ndarray) -> None:
        if self._prefetcher is None:
            return
        index = self.index
        store = index.store
        store.begin_prefetch_generation()
        ts = index.trunk_sizes[vs].astype(np.int64)
        ss = ss.astype(np.int64)
        full = ss // ts
        rem = ss - full * ts
        cbase = (index.indptr[vs] + vs).astype(np.int64)
        tb = index.tr_indptr[vs]
        requests = []
        # Certain need: ragged candidate boundaries read C[cbase+s] for
        # the total before drawing anything.
        ragged = rem != 0
        for lo in (cbase[ragged] + ss[ragged]).tolist():
            requests.append(("c", lo, lo + 1))
        # Certain need: lanes with no complete trunk always resolve in
        # the partial slice.
        p0 = full == 0
        for lo, hi in zip(cbase[p0].tolist(), (cbase[p0] + ss[p0] + 1).tolist()):
            requests.append(("c", lo, hi))
        # Probabilistic: the heaviest of the first few complete trunks
        # is the likeliest ITS winner — warm its alias table.
        pf = full > 0
        if pf.any():
            rows = np.flatnonzero(pf)
            kmax = np.minimum(full[rows], _PREFETCH_TRUNK_SCAN)
            best = np.zeros(rows.size, dtype=np.int64)
            best_w = np.full(rows.size, -np.inf)
            for k in range(int(kmax.max())):
                act = k < kmax
                w = index.tr_prefix[tb[rows] + k + 1] - index.tr_prefix[tb[rows] + k]
                upd = act & (w > best_w)
                best_w[upd] = w[upd]
                best[upd] = k
            edge_lo = (index.indptr[vs[rows]] + best * ts[rows]).astype(np.int64)
            for lo, hi in zip(edge_lo.tolist(), (edge_lo + ts[rows]).tolist()):
                requests.append(("pa", lo, hi))
        self._prefetcher.submit(requests)

    def _run_frontier(self, starts, max_length, stop_probability, rng,
                      counters, keep_hops, frontier_hist=None,
                      profiler=None):
        if self.prefetch:
            self._prefetcher = AsyncPrefetcher(self.index.store)
            self._prefetcher.start()
        # Route the store's ooc.* phases to this kernel's profiler. The
        # prefetch worker thread never touches it: _load runs there with
        # the store's NULL default, only synchronous reads are charged.
        store = self.index.store
        prev_profiler = store.profiler
        if profiler is not None:
            store.profiler = profiler
        try:
            return super()._run_frontier(
                starts, max_length, stop_probability, rng, counters,
                keep_hops, frontier_hist, profiler=profiler,
            )
        finally:
            store.profiler = prev_profiler
            if self._prefetcher is not None:
                self._prefetcher.close(counters)
                self._prefetcher = None

    # -- reporting -------------------------------------------------------------

    def publish_telemetry(self, registry) -> None:
        """Cache + prefetch + coalescing counters, resident footprint."""
        self.index.store.publish_telemetry(registry)
        registry.gauge(
            "ooc.resident_bytes", "memory-resident trunk-boundary prefix bytes"
        ).set(self.index.resident_nbytes())
        registry.gauge("ooc.trunk_size", "configured trunk size").set(
            self.trunk_size
        )

    def memory_report(self) -> MemoryReport:
        # Skip BatchTeaEngine's HPAT breakdown: the index here is the
        # disk-backed PAT, whose resident side is the boundary prefixes.
        report = Engine.memory_report(self)
        if self.index is not None:
            report.add("resident_trunk_prefix", self.index.resident_nbytes())
            if self.index.store.cache.enabled:
                report.add("reentry_cache", self.index.store.cache.nbytes)
        return report
