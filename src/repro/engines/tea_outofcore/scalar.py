"""TEA's out-of-core mode: PAT with disk-resident trunks (Section 4.1).

When HPAT exceeds memory TEA falls back to PAT, keeps only the
trunk-boundary prefix sums resident, and loads exactly one trunk's
payload per sampling step — O(trunkSize) bytes of I/O versus
GraphWalker's O(D). The workflow mirrors GraphWalker's out-of-core loop
otherwise (the paper reuses its walk-update strategy), so the Figure 14
comparison isolates the per-step I/O volume.

``trunk_size`` defaults to the paper's memory-limited rule: small and
fixed (10 for twitter under 16 GB) so the resident prefix array is
|E| / trunkSize entries.
"""

from __future__ import annotations

import tempfile
from typing import Optional

from repro.core.builder import build_pat, search_candidate_sets
from repro.core.outofcore import OutOfCorePAT, TrunkStore
from repro.engines.base import Engine
from repro.graph.temporal_graph import TemporalGraph
from repro.telemetry import MemoryReport
from repro.walks.spec import WalkSpec

DEFAULT_OOC_TRUNK_SIZE = 10


def build_ooc_index(graph, spec, trunk_size, storage_dir, cache_bytes, tracer,
                    retry_policy=None, verify_checksums=False,
                    fault_injector=None):
    """Build and spill the PAT, returning the disk-backed index.

    The shared preparation path of both out-of-core engines (scalar and
    batched): candidate search, weights, PAT build, trunk spill to
    ``storage_dir`` (a fresh temporary directory when ``None``). Returns
    ``(index, candidate_sizes, tmpdir)`` — ``tmpdir`` is the owning
    :class:`tempfile.TemporaryDirectory` handle or ``None``, which the
    engine must keep alive for the store's lifetime.

    ``retry_policy`` / ``verify_checksums`` / ``fault_injector`` wire
    the resilience layer into the store's read path (see
    :mod:`repro.resilience`); persist always writes the per-page CRC32
    manifest, so verification is a pure read-side choice.
    """
    with tracer.span("prepare.candidate_search"):
        candidate_sizes = search_candidate_sets(graph)
    with tracer.span("prepare.weights"):
        weights = spec.weight_model.compute(graph)
    with tracer.span("prepare.index_build", structure="pat",
                     trunk_size=trunk_size):
        pat = build_pat(graph, weights, trunk_size=trunk_size)
    tmpdir = None
    directory = storage_dir
    if directory is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="tea-ooc-")
        directory = tmpdir.name
    with tracer.span("prepare.trunk_spill", cache_bytes=cache_bytes):
        store = TrunkStore.persist(
            pat, directory, cache_bytes=cache_bytes,
            retry_policy=retry_policy, verify_checksums=verify_checksums,
            fault_injector=fault_injector,
        ).open()
        index = OutOfCorePAT(pat, store)
    # The full PAT arrays are now disk-resident; the in-memory copy dies
    # with this frame.
    return index, candidate_sizes, tmpdir


class TeaOutOfCoreEngine(Engine):
    """PAT sampling against a :class:`TrunkStore` on disk."""

    has_candidate_index = True
    name = "tea-ooc"

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        trunk_size: int = DEFAULT_OOC_TRUNK_SIZE,
        storage_dir: Optional[str] = None,
        cache_bytes: int = 0,
        retry_policy=None,
        verify_checksums: bool = False,
        fault_injector=None,
    ):
        super().__init__(graph, spec)
        self.trunk_size = int(trunk_size)
        self._storage_dir = storage_dir
        self._tmpdir = None
        self.cache_bytes = int(cache_bytes)
        self.retry_policy = retry_policy
        self.verify_checksums = bool(verify_checksums)
        self.fault_injector = fault_injector
        self.index: Optional[OutOfCorePAT] = None

    def _prepare(self) -> None:
        self.index, self.candidate_sizes, self._tmpdir = build_ooc_index(
            self.graph, self.spec, self.trunk_size,
            self._storage_dir, self.cache_bytes, self.tracer,
            retry_policy=self.retry_policy,
            verify_checksums=self.verify_checksums,
            fault_injector=self.fault_injector,
        )
        # Store reads charge their ooc.* phases to the engine profiler.
        self.index.store.profiler = self.profiler

    @property
    def cache_stats(self):
        """Re-entry cache hit/miss statistics (paper §4.1's optimisation)."""
        self.prepare()
        return self.index.store.cache.stats

    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        return self.index.sample(v, candidate_size, rng, counters)

    def publish_telemetry(self, registry) -> None:
        """Re-entry cache hit/miss/bytes plus resident-footprint gauges."""
        self.index.store.publish_telemetry(registry)
        registry.gauge(
            "ooc.resident_bytes", "memory-resident trunk-boundary prefix bytes"
        ).set(self.index.resident_nbytes())
        registry.gauge("ooc.trunk_size", "configured trunk size").set(
            self.trunk_size
        )

    def memory_report(self) -> MemoryReport:
        report = super().memory_report()
        if self.index is not None:
            report.add("resident_trunk_prefix", self.index.resident_nbytes())
            if self.index.store.cache.enabled:
                report.add("reentry_cache", self.index.store.cache.nbytes)
        return report
