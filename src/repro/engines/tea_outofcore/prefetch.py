"""Async trunk prefetcher: overlap disk I/O with sampling compute.

ThunderRW's lesson (VLDB '21) applied to the disk tier: the batched
out-of-core engine knows, after advancing the frontier, which vertices
the *next* iteration will sample — so the trunk ranges they will touch
can be read while the current iteration's alias draws and β tests are
still running on the main thread.

One daemon worker thread serves a double-buffered request queue
(``maxsize=2``: the in-service batch plus one queued behind it — deeper
queues only grow the window for stale predictions). The worker touches
nothing but the read-only memory-maps (:meth:`TrunkStore._load` after
coalescing); every result is handed back to the sampling thread, which
admits it into the cache at the next :meth:`drain`. The cache and all
counters therefore stay single-threaded — the same discipline as the
parallel executor's per-worker telemetry.

Accounting is conservation-checked (tested, exported):
``prefetch.issued == prefetch.hits + prefetch.wasted + in_flight`` —
every submitted key ends in exactly one bucket: consumed by the sampler
(hit), warmed but never used (wasted), or still queued when the run
ended (in flight). Worker busy time is exported as
``ooc.io_overlap_seconds``: I/O the walk did not wait for.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Optional, Tuple

from repro.core.outofcore import _REGION_WIDTH, TrunkStore, coalesce_runs
from repro.sampling.counters import CostCounters
from repro.telemetry.clock import now as _clock_now

#: Request-queue depth: the batch in service plus one behind it.
QUEUE_DEPTH = 2

Key = Tuple[str, int, int]


class AsyncPrefetcher:
    """Thread-based read-ahead for a :class:`TrunkStore`.

    ``submit`` filters and enqueues one step's predicted ranges;
    ``drain`` (sampling thread, non-blocking) admits finished blocks
    into the cache pinned, so the coalesced miss reads of the very step
    that needs them cannot evict them first. ``close`` joins the worker
    and settles the conservation ledger on the store.
    """

    def __init__(self, store: TrunkStore):
        self.store = store
        self._requests: "queue.Queue" = queue.Queue(maxsize=QUEUE_DEPTH)
        self._results: "queue.Queue" = queue.Queue()
        self._outstanding: set = set()
        self._in_flight = 0
        self._busy_seconds = 0.0
        self._stop = False
        # Set by the worker on an unhandled error (checksum failure,
        # exhausted retries, injected fault): the engine observes it via
        # :attr:`failed` and falls back to synchronous reads — a dead
        # prefetcher must degrade, never vanish.
        self._failed = False
        self._thread: Optional[threading.Thread] = None

    @property
    def failed(self) -> bool:
        """True once the worker hit an unhandled error (fallback time)."""
        return self._failed

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._worker, name="tea-ooc-prefetch", daemon=True
        )
        self._thread.start()

    # -- sampling-thread API ---------------------------------------------------

    def submit(self, requests: Iterable[Key]) -> None:
        """Enqueue one step's predictions, skipping anything already
        resident, pending, or requested. A full queue drops the batch —
        the walk is outrunning the disk and stale predictions would only
        waste reads — but drops are *counted* (``prefetch.dropped``), so
        the accounting stays conserved and the backpressure visible."""
        if self._failed:
            return
        seen = set()
        kept = []
        for key in requests:
            if key in seen or key in self._outstanding:
                continue
            seen.add(key)
            if key in self.store.cache or key in self.store._prefetch_pending:
                continue
            kept.append(key)
        if not kept:
            return
        try:
            self._requests.put_nowait(kept)
        except queue.Full:
            self.store.note_prefetch_dropped(len(kept))
            return
        self._outstanding.update(kept)
        self.store.note_prefetch_issued(len(kept))

    def drain(
        self,
        counters: Optional[CostCounters] = None,
        wait: bool = False,
        timeout: float = 5.0,
    ) -> None:
        """Admit every finished block (sampling thread).

        Non-blocking by default. With ``wait=True`` the drain blocks
        (bounded by ``timeout``) until every outstanding key has
        settled: the submissions were predicted for the very next
        ``read_batch``, which would otherwise re-read the same trunk
        ranges synchronously while the worker's late results arrive as
        wasted duplicates. Waiting out the residual I/O makes the
        hit/wasted split a property of the access pattern, not of
        thread scheduling — the overlap win (the worker started during
        the previous step's compute) is kept either way.

        The prefetch runs are charged here — to the walk's own counters,
        because they are real backing reads issued on its behalf.
        """
        deadline = (_clock_now() + timeout) if wait else 0.0
        while True:
            try:
                kind, payload = self._results.get_nowait()
            except queue.Empty:
                if not wait or not self._outstanding or self._failed:
                    return
                remaining = deadline - _clock_now()
                if remaining <= 0:
                    return
                try:
                    kind, payload = self._results.get(
                        timeout=min(remaining, 0.05)
                    )
                except queue.Empty:
                    continue
            if kind == "skipped":
                for key in payload:
                    self._outstanding.discard(key)
                    self._in_flight += 1
                continue
            if kind == "failed":
                # Worker error: settle the batch's keys as in-flight
                # (issued, never produced) and record the failure. The
                # engine sees :attr:`failed` and reads synchronously
                # from here on — where the same error, if persistent,
                # surfaces on the sampling thread instead of vanishing.
                batch, _exc_text = payload
                for key in batch:
                    self._outstanding.discard(key)
                    self._in_flight += 1
                self.store.note_prefetch_failure()
                continue
            for region, run_lo, run_hi, items in payload:
                nbytes = (run_hi - run_lo) * _REGION_WIDTH[region]
                if counters is not None:
                    counters.record_io(nbytes)
                self.store.coalesced_hist.observe(nbytes)
                self.store.read_ops += 1
                for key, value in items:
                    self._outstanding.discard(key)
                    self.store.admit_prefetched(key, value)

    def close(self, counters: Optional[CostCounters] = None) -> None:
        """Stop the worker, admit its last results, settle the ledger."""
        if self._thread is None:
            return
        self._stop = True
        self._requests.put(None)
        self._thread.join()
        self._thread = None
        self.drain(counters)
        # Anything still unaccounted was submitted but never produced.
        in_flight = self._in_flight + len(self._outstanding)
        self._outstanding.clear()
        self._in_flight = 0
        self.store.finalize_prefetch(in_flight, self._busy_seconds)

    # -- worker thread ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            batch = self._requests.get()
            if batch is None:
                return
            if self._stop or self._failed:
                # The run is over (or the worker already failed): report
                # the keys back unread so they are settled as in-flight,
                # not silently dropped.
                self._results.put(("skipped", batch))
                continue
            try:
                injector = self.store.fault_injector
                if injector is not None:
                    injector.check("prefetch")
                t0 = _clock_now()
                out = []
                for region in ("c", "pa"):
                    ranges = sorted(
                        (lo, hi, (region, lo, hi))
                        for reg, lo, hi in batch if reg == region
                    )
                    for run_lo, run_hi, members in coalesce_runs(ranges):
                        big = self.store._load(region, run_lo, run_hi)
                        items = []
                        for key in members:
                            _, lo, hi = key
                            if region == "c":
                                value = big[lo - run_lo : hi - run_lo].copy()
                            else:
                                value = (
                                    big[0][lo - run_lo : hi - run_lo].copy(),
                                    big[1][lo - run_lo : hi - run_lo].copy(),
                                )
                            items.append((key, value))
                        out.append((region, run_lo, run_hi, items))
                self._busy_seconds += _clock_now() - t0
            except Exception as exc:  # noqa: BLE001 — a dying worker
                # thread is the silent-failure mode this guards against.
                self._failed = True
                self._results.put(("failed", (batch, repr(exc))))
                continue
            self._results.put(("done", out))
