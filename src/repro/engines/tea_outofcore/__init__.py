"""TEA's out-of-core mode (paper §4.1, Figure 14): two engines.

* :class:`TeaOutOfCoreEngine` — the scalar reference: one synchronous
  trunk read per walker step (``scalar``).
* :class:`BatchTeaOutOfCoreEngine` — the batched fast path: frontier
  vectorised sampling with coalesced reads, async prefetch and the
  scan-resistant segmented cache (``batch``, ``prefetch``).

``python -m repro.engines.tea_outofcore.smoke`` runs the parity and
cache-sanity invariants ``make ooc-smoke`` gates on.
"""

from repro.engines.tea_outofcore.batch import (
    DEFAULT_OOC_CACHE_BYTES,
    BatchTeaOutOfCoreEngine,
    ooc_sample_batch,
)
from repro.engines.tea_outofcore.prefetch import AsyncPrefetcher
from repro.engines.tea_outofcore.scalar import (
    DEFAULT_OOC_TRUNK_SIZE,
    TeaOutOfCoreEngine,
    build_ooc_index,
)

__all__ = [
    "AsyncPrefetcher",
    "BatchTeaOutOfCoreEngine",
    "DEFAULT_OOC_CACHE_BYTES",
    "DEFAULT_OOC_TRUNK_SIZE",
    "TeaOutOfCoreEngine",
    "build_ooc_index",
    "ooc_sample_batch",
]
