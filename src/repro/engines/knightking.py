"""KnightKing-strategy baseline (paper Sections 1, 2.2, 4.3).

KnightKing's signature technique is rejection sampling: it never
materialises the transition distribution; each trial picks a uniform
candidate and accepts it against the max-weight envelope. That is ideal
when weights are near-uniform, and catastrophic for exponential temporal
weights, whose skew squeezes the accept area (the paper's 11,071
edges/step in Figure 2 and the Section 3.1 expected-trials analysis).

Per the paper's complexity table (Section 4.3):

* linear/static weights → ITS (like GraphWalker);
* exponential → rejection sampling;
* node2vec → rejection sampling for the weight + rejection for β (the β
  part is shared walk-loop machinery in :class:`Engine`).

``nodes > 1`` models the paper's 8-node cluster: temporal walks are
embarrassingly parallel across walkers, so reported walk time divides by
the node count (an *ideal* scaling model — stated explicitly so Table 4
comparisons read fairly; KnightKing's real cluster also pays network
overhead we do not charge it for).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.builder import build_prefix_array
from repro.engines.base import Engine
from repro.exceptions import SamplingBudgetExceeded
from repro.graph.temporal_graph import TemporalGraph
from repro.telemetry import MemoryReport
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search
from repro.walks.spec import WalkSpec

_STATIC_KINDS = ("uniform", "linear_rank", "linear_time")
DEFAULT_MAX_TRIALS = 200_000


class KnightKingEngine(Engine):
    """Rejection-sampling baseline with modeled multi-node execution."""

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        nodes: int = 1,
        max_trials: int = DEFAULT_MAX_TRIALS,
        strict: bool = False,
    ):
        super().__init__(graph, spec)
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        self.time_divisor = float(nodes)
        self.max_trials = int(max_trials)
        self.strict = bool(strict)
        self.weights: Optional[np.ndarray] = None
        self.prefix_max: Optional[np.ndarray] = None
        self.c: Optional[np.ndarray] = None
        self.name = f"knightking-{nodes}node" if nodes > 1 else "knightking-1node"

    @property
    def _static(self) -> bool:
        return self.spec.weight_model.kind in _STATIC_KINDS

    def _prepare(self) -> None:
        with self.tracer.span("prepare.weights", kind=self.spec.weight_model.kind):
            self.weights = self.spec.weight_model.compute(self.graph)
        if self._static:
            with self.tracer.span("prepare.index_build", structure="its"):
                self.c = build_prefix_array(self.graph, self.weights)
            return
        # Per-vertex prefix maxima give the O(1) envelope for any
        # candidate prefix (weights are time-monotone per segment, but we
        # compute the true prefix max so arbitrary weights stay correct).
        with self.tracer.span("prepare.envelope_build"):
            m = self.graph.num_edges
            self.prefix_max = np.empty(m, dtype=np.float64)
            indptr = self.graph.indptr
            for v in range(self.graph.num_vertices):
                lo, hi = indptr[v], indptr[v + 1]
                if hi > lo:
                    np.maximum.accumulate(
                        self.weights[lo:hi], out=self.prefix_max[lo:hi]
                    )

    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        s = int(candidate_size)
        lo = int(self.graph.indptr[v])
        if self._static:
            base = lo + v
            total = self.c[base + s]
            r = draw_in_range(rng, 0.0, total)
            return its_search(self.c, r, base, base + s, counters) - base
        w = self.weights
        w_max = self.prefix_max[lo + s - 1]
        for _ in range(self.max_trials):
            j = int(rng.integers(0, s))
            accept = rng.random() * w_max < w[lo + j]
            counters.record_trial(accept)
            if accept:
                return j
        if self.strict:
            raise SamplingBudgetExceeded(
                f"vertex {v}: no acceptance in {self.max_trials} trials"
            )
        # Bounded fallback: exact full-scan draw, accounted as a scan.
        counters.record_scan(s)
        prefix = build_prefix_sums(w[lo : lo + s])
        r = draw_in_range(rng, 0.0, prefix[s])
        return its_search(prefix, r, 0, s, None)

    def expected_trials(self, v: int, candidate_size: int) -> float:
        """Analytic E[trials] = s · w_max / Σw for one candidate prefix."""
        self.prepare()
        lo = int(self.graph.indptr[v])
        s = int(candidate_size)
        w = self.weights[lo : lo + s]
        total = float(w.sum())
        if total <= 0:
            return float("inf")
        return s * float(w.max()) / total

    def publish_telemetry(self, registry) -> None:
        registry.gauge("engine.modeled_nodes", "modeled cluster size").set(
            self.time_divisor
        )
        registry.gauge("engine.max_trials", "rejection budget per step").set(
            self.max_trials
        )

    def memory_report(self) -> MemoryReport:
        report = super().memory_report()
        if self.weights is not None:
            report.add("weights", self.weights.nbytes)
        if self.prefix_max is not None:
            report.add("envelope", self.prefix_max.nbytes)
        if self.c is not None:
            report.add("prefix_sums", self.c.nbytes)
        return report
