"""Engine interface and the shared temporal walk loop (Algorithm 2).

Every engine implements two primitives:

* :meth:`Engine.prepare` — preprocessing (structure construction);
* :meth:`Engine.sample_edge` — one draw from a candidate prefix.

The walk loop itself — candidate tracking, the Dynamic_parameter
rejection (Algorithm 2 lines 18–22), path recording, termination — is
shared, so engine comparisons isolate exactly the sampling strategy, as
the paper's experiments do. Two loop behaviours differ by engine flag:

* ``has_candidate_index``: TEA precomputes |Γt(v)| per edge during
  preprocessing (Section 4.2), so candidate-set lookup during the walk is
  O(1); baselines binary-search the adjacency per step (Section 5.1:
  "both GraphWalker and KnightKing use binary search to search candidate
  edge sets on sampling, while TEA does not").
* ``time_divisor``: the modeled parallelism of the paper's 8-node
  KnightKing cluster (walks are embarrassingly parallel; reported wall
  time divides by node count — documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import abc
from collections import Counter as _LengthCounter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.telemetry import (
    LATENCY_BUCKETS,
    MemoryReport,
    MetricsRegistry,
    NULL_PROFILER,
    NULL_TRACER,
    PhaseTimer,
    Tracer,
    build_run_report,
)
from repro.telemetry.clock import now as _now
from repro.telemetry.events import current_run_id
from repro.walks.spec import WalkSpec
from repro.walks.walker import Walker, WalkPath

# After this many Dynamic_parameter rejections within one step, switch
# from rejection to one exact β-adjusted scan (an adaptive strategy: the
# mixture of "accepted within budget" and "exact fallback" samples the
# target distribution exactly, while bounding worst-case work for
# pathological β skews).
BETA_REJECTION_BUDGET = 16


@dataclass(frozen=True)
class Workload:
    """Walk workload: the paper's R (walks per vertex) and L (max length).

    ``start_vertices`` restricts the walk sources (Table 4 uses every
    vertex; our scaled benches subsample via ``max_walks`` to keep
    pure-Python wall times sane — the per-walk cost model is unaffected).
    ``stop_probability`` adds a geometric per-step termination chance on
    top of the length cap — the lazy/restarting walk shape PageRank-style
    applications use.
    """

    walks_per_vertex: int = 1
    max_length: int = 80
    start_vertices: Optional[Sequence[int]] = None
    max_walks: Optional[int] = None
    stop_probability: float = 0.0

    def __post_init__(self):
        if not (0.0 <= self.stop_probability < 1.0):
            raise ValueError("stop_probability must be in [0, 1)")

    def resolve_starts(self, num_vertices: int, rng: np.random.Generator) -> np.ndarray:
        if self.start_vertices is not None:
            starts = np.asarray(self.start_vertices, dtype=np.int64)
        else:
            starts = np.arange(num_vertices, dtype=np.int64)
        starts = np.tile(starts, self.walks_per_vertex)
        if self.max_walks is not None and starts.size > self.max_walks:
            starts = rng.choice(starts, size=self.max_walks, replace=False)
        return starts

    def describe(self) -> str:
        cap = f", max_walks={self.max_walks}" if self.max_walks else ""
        return f"R={self.walks_per_vertex}, L={self.max_length}{cap}"


@dataclass
class EngineResult:
    """Everything one engine run produced."""

    engine: str
    spec: str
    workload: str
    paths: List[WalkPath]
    counters: CostCounters
    timer: PhaseTimer
    memory: MemoryReport
    time_divisor: float = 1.0
    registry: Optional[MetricsRegistry] = None
    trace: Optional[Tracer] = None
    run_id: Optional[str] = None

    @property
    def num_walks(self) -> int:
        return len(self.paths)

    @property
    def total_steps(self) -> int:
        return self.counters.steps

    @property
    def prepare_seconds(self) -> float:
        return self.timer.seconds.get("prepare", 0.0)

    @property
    def walk_seconds(self) -> float:
        return self.timer.seconds.get("walk", 0.0) / self.time_divisor

    @property
    def total_seconds(self) -> float:
        """Preprocessing + walking (the paper includes preprocessing in
        TEA's reported totals — Section 5.2)."""
        return self.prepare_seconds + self.walk_seconds

    def summary(self) -> dict:
        return {
            "engine": self.engine,
            "spec": self.spec,
            "workload": self.workload,
            "walks": self.num_walks,
            "steps": self.total_steps,
            "prepare_s": round(self.prepare_seconds, 4),
            "walk_s": round(self.walk_seconds, 4),
            "total_s": round(self.total_seconds, 4),
            "edges_per_step": round(self.counters.edges_per_step, 2),
            "io_blocks": self.counters.io_blocks,
            "memory_bytes": self.memory.total,
        }

    def run_report(self, meta: Optional[dict] = None) -> dict:
        """The schema-versioned JSON run-report document for this run."""
        base = {
            "engine": self.engine,
            "spec": self.spec,
            "workload": self.workload,
            "time_divisor": self.time_divisor,
        }
        if self.run_id is not None:
            base["run_id"] = self.run_id
        if meta:
            base.update(meta)
        registry = self.registry if self.registry is not None else MetricsRegistry()
        return build_run_report(registry, self.trace, meta=base)


class Engine(abc.ABC):
    """Shared walk loop; subclasses supply preprocessing and sampling."""

    name: str = "engine"
    has_candidate_index = False
    time_divisor: float = 1.0

    def __init__(self, graph: TemporalGraph, spec: WalkSpec):
        # Edges_interval: the application may restrict the walk to a
        # temporal subgraph before any preprocessing (Algorithm 2, Main).
        self.graph = spec.restrict(graph)
        self.spec = spec
        self._prepared = False
        self.candidate_sizes: Optional[np.ndarray] = None
        # Active tracer: run() installs the caller's before preparing, so
        # _prepare implementations can emit child spans via self.tracer.
        self.tracer: Tracer = NULL_TRACER
        # Phase profiler: NULL by default (no per-phase cost). The CLI's
        # --profile attaches a real PhaseProfiler before run(); hot
        # loops receive it explicitly (never via self mid-run — the
        # thread backend shares one engine across workers).
        self.profiler = NULL_PROFILER

    # -- subclass interface -------------------------------------------------

    @abc.abstractmethod
    def _prepare(self) -> None:
        """Build sampling structures. Called once, timed as 'prepare'."""

    @abc.abstractmethod
    def sample_edge(
        self, v: int, candidate_size: int, walker_time: Optional[float],
        rng: np.random.Generator, counters: CostCounters,
    ) -> int:
        """Draw an edge index in ``[0, candidate_size)`` of vertex v.

        ``walker_time`` is the arrival time at v — engines whose weights
        are dynamic (full-scan, CTDNE) need it; static-weight engines
        ignore it.
        """

    def memory_report(self) -> MemoryReport:
        """Bytes of every structure this engine holds (Figure 9/12b)."""
        report = MemoryReport()
        report.add("graph_csr", self.graph.nbytes())
        if self.candidate_sizes is not None:
            report.add("candidate_index", self.candidate_sizes.nbytes)
        return report

    def publish_telemetry(self, registry: MetricsRegistry) -> None:
        """Engine-specific end-of-run metrics (cache stats, shard info).

        Called once by :meth:`run` after the walk phase; subclasses
        override to add their structures' telemetry on top of the
        standard sampling/io/walk metrics the shared loop emits.
        """

    # -- shared machinery ------------------------------------------------------

    def prepare(self) -> None:
        if not self._prepared:
            self._prepare()
            self._prepared = True

    def _initial_candidates(self, v: int) -> int:
        return self.graph.out_degree(v)

    def _next_candidates(
        self, edge_pos: int, v: int, t: float, counters: CostCounters
    ) -> int:
        if self.has_candidate_index and self.candidate_sizes is not None:
            return int(self.candidate_sizes[edge_pos])
        # Binary search over v's time-sorted adjacency, probe-accounted.
        d = self.graph.out_degree(v)
        if d:
            counters.record_probe(max(1, d.bit_length()))
        return self.graph.candidate_count(v, t)

    def _candidate_weights(self, v: int, s: int) -> np.ndarray:
        """Exact static weights of v's candidate prefix (any engine).

        Used by the β-fallback scan; matches the distribution every
        sampler draws from (per-vertex constant factors cancel).
        """
        g = self.graph
        lo = int(g.indptr[v])
        kind = self.spec.weight_model.kind
        if kind == "uniform":
            out = np.ones(s)
        elif kind == "linear_rank":
            d = g.out_degree(v)
            out = (d - np.arange(s)).astype(np.float64)
        else:
            times = g.etime[lo : lo + s]
            if kind == "linear_time":
                seg_min = float(g.etime[g.indptr[v + 1] - 1])
                out = times - seg_min + 1.0
            else:
                out = np.exp(
                    (times - float(g.etime[lo])) / self.spec.weight_model.scale
                )
        if g.eweight is not None:
            out = out * g.eweight[lo : lo + s]
        return out

    def _beta_exact_draw(
        self, v: int, s: int, prev: Optional[int], beta,
        rng: np.random.Generator, counters: CostCounters,
    ) -> int:
        """One exact draw ∝ weight·β over the candidate prefix (O(s))."""
        from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search

        g = self.graph
        lo = int(g.indptr[v])
        w = self._candidate_weights(v, s)
        betas = np.fromiter(
            (beta(g, prev, int(g.nbr[lo + j])) for j in range(s)),
            dtype=np.float64, count=s,
        )
        counters.record_scan(s)
        prefix = build_prefix_sums(w * betas)
        r = draw_in_range(rng, 0.0, prefix[s])
        return its_search(prefix, r, 0, s)

    def _walk_one(
        self,
        start: int,
        max_length: int,
        rng: np.random.Generator,
        counters: CostCounters,
        stop_probability: float = 0.0,
    ) -> Walker:
        # The untraced fast path. _walk_one_traced below is its
        # instrumented twin — any change to this loop body must be
        # mirrored there (the two are kept separate so the common case
        # pays zero per-step telemetry branches; the <5% overhead
        # budget in ISSUE's acceptance criteria is why).
        walker = Walker(start)
        spec = self.spec
        beta = spec.dynamic_parameter
        beta_max = beta.beta_max if beta is not None else 1.0
        v = start
        s = self._initial_candidates(v)
        while walker.num_edges < max_length and s > 0:
            if stop_probability and rng.random() < stop_probability:
                break
            counters.record_step()
            t = walker.current_time
            # Algorithm 2 lines 18–22: sample, then accept against the
            # dynamic parameter; applications without one always accept.
            accepted: Optional[Tuple[int, int, float]] = None
            for _ in range(BETA_REJECTION_BUDGET):
                idx = self.sample_edge(v, s, t, rng, counters)
                pos = int(self.graph.indptr[v]) + idx
                v2 = int(self.graph.nbr[pos])
                t2 = float(self.graph.etime[pos])
                if beta is None:
                    accepted = (pos, v2, t2)
                    break
                b = beta(self.graph, walker.previous_vertex, v2)
                ok = rng.random() * beta_max <= b
                counters.record_trial(ok)
                if ok:
                    accepted = (pos, v2, t2)
                    break
            if accepted is None:
                # Rejection budget exhausted: one exact β-adjusted scan.
                idx = self._beta_exact_draw(
                    v, s, walker.previous_vertex, beta, rng, counters
                )
                pos = int(self.graph.indptr[v]) + idx
                accepted = (pos, int(self.graph.nbr[pos]), float(self.graph.etime[pos]))
            pos, v2, t2 = accepted
            walker.advance(v2, t2)
            s = self._next_candidates(pos, v2, t2, counters)
            v = v2
        return walker

    def _walk_one_traced(
        self,
        start: int,
        max_length: int,
        rng: np.random.Generator,
        counters: CostCounters,
        trace_span,
        registry: MetricsRegistry,
        stop_probability: float = 0.0,
    ) -> Walker:
        # Instrumented twin of _walk_one: identical sampling semantics
        # (same rng call sequence), plus per-step latency and
        # trials-per-step histograms. Only tracer-sampled walks run it.
        step_hist = registry.histogram(
            "walk.step_seconds", "per-step latency (traced walks)",
            **LATENCY_BUCKETS,
        )
        trials_hist = registry.histogram(
            "sampling.trials_per_step",
            "β rejection trials per step (traced walks)",
        )
        walker = Walker(start)
        spec = self.spec
        beta = spec.dynamic_parameter
        beta_max = beta.beta_max if beta is not None else 1.0
        v = start
        s = self._initial_candidates(v)
        while walker.num_edges < max_length and s > 0:
            if stop_probability and rng.random() < stop_probability:
                break
            step_t0 = _now()
            counters.record_step()
            t = walker.current_time
            accepted: Optional[Tuple[int, int, float]] = None
            trials = 0
            for _ in range(BETA_REJECTION_BUDGET):
                idx = self.sample_edge(v, s, t, rng, counters)
                pos = int(self.graph.indptr[v]) + idx
                v2 = int(self.graph.nbr[pos])
                t2 = float(self.graph.etime[pos])
                if beta is None:
                    accepted = (pos, v2, t2)
                    break
                trials += 1
                b = beta(self.graph, walker.previous_vertex, v2)
                ok = rng.random() * beta_max <= b
                counters.record_trial(ok)
                if ok:
                    accepted = (pos, v2, t2)
                    break
            if accepted is None:
                idx = self._beta_exact_draw(
                    v, s, walker.previous_vertex, beta, rng, counters
                )
                pos = int(self.graph.indptr[v]) + idx
                accepted = (pos, int(self.graph.nbr[pos]), float(self.graph.etime[pos]))
            pos, v2, t2 = accepted
            walker.advance(v2, t2)
            s = self._next_candidates(pos, v2, t2, counters)
            v = v2
            step_hist.observe(_now() - step_t0)
            trials_hist.observe(trials)
        trace_span.set("length", walker.num_edges)
        trace_span.set("end_vertex", v)
        return walker

    def run(
        self,
        workload: Workload,
        seed: RngLike = 0,
        record_paths: bool = True,
        sink=None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> EngineResult:
        """Run the workload; returns paths plus cost/time/memory accounts.

        ``sink`` is an optional open :class:`repro.walks.sink.WalkSink`;
        completed walks stream to it (flushed in batches of 1,024, the
        paper's §4.1 policy) so huge corpora never accumulate in memory —
        pass ``record_paths=False`` alongside for constant-memory runs.

        ``registry`` collects this run's metrics (one is created when
        not supplied — every run returns a populated registry on the
        result). ``tracer`` controls span tracing: the default records
        only the two phase root spans; pass one with
        ``walk_sample_every=N`` to additionally trace 1-in-N walks with
        per-step latency histograms.
        """
        registry = registry if registry is not None else MetricsRegistry()
        tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.tracer = tracer
        profiler = self.profiler
        timer = PhaseTimer()
        with timer.phase("prepare"), tracer.span("prepare", engine=self.name), \
                profiler.phase("prepare"):
            self.prepare()
        rng = make_rng(seed)
        counters = CostCounters()
        paths: List[WalkPath] = []
        starts = workload.resolve_starts(self.graph.num_vertices, rng)
        walk_length_hist = registry.histogram(
            "walk.length", "edges per completed walk"
        )
        # Per-walk telemetry is kept off the hot path: lengths go into a
        # plain list (folded into the histogram per distinct value after
        # the loop), and the untraced variant of the loop carries no
        # sampling branch at all — short-walk workloads are dominated by
        # per-walk overhead, and the acceptance bar is <5% wall regression.
        # (max with 0: <= 0 means "never sample", matching sample_walk)
        sample_every = max(0, tracer.walk_sample_every) if tracer.enabled else 0
        lengths: List[int] = []
        lengths_append = lengths.append
        with timer.phase("walk"), tracer.span(
            "walk", engine=self.name, walks=int(starts.size)
        ), profiler.phase("walk"):
            if sample_every:
                for walk_index, u in enumerate(starts):
                    if walk_index % sample_every == 0:
                        with tracer.span(
                            "walk.one", walk=walk_index, start_vertex=int(u)
                        ) as walk_span:
                            walker = self._walk_one_traced(
                                int(u), workload.max_length, rng, counters,
                                walk_span, registry,
                                stop_probability=workload.stop_probability,
                            )
                    else:
                        walker = self._walk_one(
                            int(u), workload.max_length, rng, counters,
                            stop_probability=workload.stop_probability,
                        )
                    lengths_append(walker.num_edges)
                    if record_paths or sink is not None:
                        finished = walker.finish()
                        if record_paths:
                            paths.append(finished)
                        if sink is not None:
                            sink.append(finished)
            else:
                for u in starts:
                    walker = self._walk_one(
                        int(u), workload.max_length, rng, counters,
                        stop_probability=workload.stop_probability,
                    )
                    lengths_append(walker.num_edges)
                    if record_paths or sink is not None:
                        finished = walker.finish()
                        if record_paths:
                            paths.append(finished)
                        if sink is not None:
                            sink.append(finished)
        with profiler.phase("finalize"):
            for length, n in _LengthCounter(lengths).items():
                walk_length_hist.observe_n(length, n)
            memory = self.memory_report()
            counters.publish(registry)
            registry.counter("walk.walks", "walks executed").inc(int(starts.size))
            registry.gauge("memory.bytes", "engine structure bytes").set(memory.total)
            self.publish_telemetry(registry)
        return EngineResult(
            engine=self.name,
            spec=self.spec.describe(),
            workload=workload.describe(),
            paths=paths,
            counters=counters,
            timer=timer,
            memory=memory,
            time_divisor=self.time_divisor,
            registry=registry,
            trace=tracer,
            run_id=current_run_id(),
        )
