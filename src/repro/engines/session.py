"""Query sessions: Algorithm 2's Main loop as a service.

The paper's Main (Algorithm 2) serves *queries*: each query extracts a
temporal subgraph with ``Edges_interval``, preprocesses it, then walks.
In a serving setting many queries share windows and weight definitions,
so rebuilding per query wastes the dominant preprocessing cost.
:class:`TeaSession` keeps an LRU of prepared engines keyed by
``(time window, weight model, structure)`` — repeat queries skip
preprocessing entirely, and the cache budget bounds resident index
memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.engines.base import EngineResult, Workload
from repro.engines.batch import BatchTeaEngine
from repro.engines.tea import TeaEngine
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike
from repro.walks.spec import WalkSpec


@dataclass
class SessionStats:
    queries: int = 0
    engine_hits: int = 0
    engine_builds: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.engine_hits / self.queries if self.queries else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "engine_hits": self.engine_hits,
            "engine_builds": self.engine_builds,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 3),
        }


def _spec_key(spec: WalkSpec) -> Tuple:
    """Engines are reusable across specs that share window + weights +
    β parameters (the index depends only on window and weights, but the
    engine object carries the spec, so β parameters join the key)."""
    beta = spec.dynamic_parameter
    beta_key = None
    if beta is not None:
        beta_key = (type(beta).__name__, getattr(beta, "p", None),
                    getattr(beta, "q", None), beta.beta_max)
    return (
        spec.time_window,
        spec.weight_model.kind,
        spec.weight_model.scale,
        beta_key,
    )


class TeaSession:
    """A multi-query TEA service over one temporal graph.

    Parameters
    ----------
    max_engines:
        LRU capacity: distinct prepared (window, weights, β) engines kept
        alive simultaneously.
    vectorised:
        Use :class:`BatchTeaEngine` (default) or the scalar engine.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        max_engines: int = 8,
        vectorised: bool = True,
    ):
        if max_engines < 1:
            raise ValueError("max_engines must be >= 1")
        self.graph = graph
        self.max_engines = int(max_engines)
        self.vectorised = bool(vectorised)
        self._engines: "OrderedDict[Tuple, object]" = OrderedDict()
        self.stats = SessionStats()

    def _engine_for(self, spec: WalkSpec):
        key = _spec_key(spec)
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            self.stats.engine_hits += 1
            return engine
        cls = BatchTeaEngine if self.vectorised else TeaEngine
        engine = cls(self.graph, spec)
        engine.prepare()
        self.stats.engine_builds += 1
        self._engines[key] = engine
        while len(self._engines) > self.max_engines:
            self._engines.popitem(last=False)
            self.stats.evictions += 1
        return engine

    def query(
        self,
        spec: WalkSpec,
        workload: Workload,
        seed: RngLike = 0,
        record_paths: bool = True,
    ) -> EngineResult:
        """Run one walk query; preprocessing is cached across queries."""
        self.stats.queries += 1
        engine = self._engine_for(spec)
        return engine.run(workload, seed=seed, record_paths=record_paths)

    def resident_index_bytes(self) -> int:
        """Total bytes held by all cached engines' indices."""
        total = 0
        for engine in self._engines.values():
            if getattr(engine, "index", None) is not None:
                total += engine.index.nbytes()
        return total

    def __len__(self) -> int:
        return len(self._engines)
