"""Query sessions: Algorithm 2's Main loop as a service.

The paper's Main (Algorithm 2) serves *queries*: each query extracts a
temporal subgraph with ``Edges_interval``, preprocesses it, then walks.
In a serving setting many queries share windows and weight definitions,
so rebuilding per query wastes the dominant preprocessing cost.
:class:`TeaSession` keeps an LRU of prepared engines keyed by
``(time window, weight model, dynamic parameter)`` — repeat queries
skip preprocessing entirely, and the cache budgets (entry count and
optional resident-index bytes) bound memory.

The session is the state the :mod:`repro.serve` daemon keeps hot
between requests: prepared HPATs, warm worker pools and shm segments
(when the ``tea-parallel`` engine kind is selected) all live for the
lifetime of a cache entry, not a single query.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engines.base import EngineResult, Workload
from repro.engines.batch import BatchTeaEngine
from repro.engines.tea import TeaEngine
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike
from repro.telemetry import events
from repro.walks.spec import WalkSpec

#: Engine kinds a session can build, mirroring the CLI's ``--engine``
#: names for the in-core engines.
ENGINE_KINDS = ("tea", "tea-batch", "tea-parallel")


@dataclass
class SessionStats:
    queries: int = 0
    engine_hits: int = 0
    engine_builds: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.engine_hits / self.queries if self.queries else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "engine_hits": self.engine_hits,
            "engine_builds": self.engine_builds,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 3),
        }


def _spec_key(spec: WalkSpec) -> Tuple:
    """Engines are reusable across specs that share window + weights +
    β hook (the index depends only on window and weights, but the engine
    object carries the spec, so the dynamic parameter joins the key).

    The weight model and dynamic parameter are frozen dataclasses, so
    they key directly: two :class:`~repro.walks.spec.CustomParameter`
    instances wrapping *different* functions hash and compare as
    different entries even when their ``beta_max`` agrees — a
    name/attribute-based key would alias them onto one engine.
    ``spec.name`` is deliberately excluded: it is a label, not
    structure.
    """
    return (spec.time_window, spec.weight_model, spec.dynamic_parameter)


class TeaSession:
    """A multi-query TEA service over one temporal graph.

    Parameters
    ----------
    max_engines:
        LRU capacity: distinct prepared (window, weights, β) engines
        kept alive simultaneously.
    vectorised:
        Legacy switch between :class:`BatchTeaEngine` (default) and the
        scalar engine; ignored when ``engine`` is given.
    engine:
        Engine kind to build per cache entry: ``"tea"`` (scalar),
        ``"tea-batch"`` (vectorised frontier, the default), or
        ``"tea-parallel"`` (chunk-parallel with warm pools / shm /
        supervised retry — the serving configuration).
    engine_kwargs:
        Extra constructor arguments forwarded to the engine class
        (e.g. ``workers=4, backend="process"`` for ``tea-parallel``).
    max_bytes:
        Optional resident-index budget. After each build the LRU is
        trimmed until the cached engines' indices fit the budget — but
        the most recent engine is never evicted, so a budget smaller
        than a single index degrades to "cache exactly one engine"
        rather than thrashing to zero.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        max_engines: int = 8,
        vectorised: bool = True,
        engine: Optional[str] = None,
        engine_kwargs: Optional[Dict] = None,
        max_bytes: Optional[int] = None,
    ):
        if max_engines < 1:
            raise ValueError("max_engines must be >= 1")
        if engine is None:
            engine = "tea-batch" if vectorised else "tea"
        if engine not in ENGINE_KINDS:
            raise ValueError(
                f"unknown engine kind {engine!r}; expected one of {ENGINE_KINDS}"
            )
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.graph = graph
        self.max_engines = int(max_engines)
        self.engine_kind = engine
        self.vectorised = engine != "tea"
        self.engine_kwargs = dict(engine_kwargs or {})
        self.max_bytes = max_bytes
        self._engines: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = SessionStats()

    # -- engine cache ------------------------------------------------------

    def _build_engine(self, spec: WalkSpec):
        if self.engine_kind == "tea":
            return TeaEngine(self.graph, spec, **self.engine_kwargs)
        if self.engine_kind == "tea-batch":
            return BatchTeaEngine(self.graph, spec, **self.engine_kwargs)
        from repro.parallel.engine import ParallelBatchTeaEngine

        return ParallelBatchTeaEngine(self.graph, spec, **self.engine_kwargs)

    def _evict_lru(self, count: bool = True) -> None:
        key, engine = self._engines.popitem(last=False)
        if count:
            self.stats.evictions += 1
            events.emit("session.evict", engine_kind=self.engine_kind)
        close = getattr(engine, "close", None)
        if close is not None:
            close()

    def _trim(self) -> None:
        while len(self._engines) > self.max_engines:
            self._evict_lru()
        if self.max_bytes is not None:
            while (
                len(self._engines) > 1
                and self.resident_index_bytes() > self.max_bytes
            ):
                self._evict_lru()

    def _engine_for(self, spec: WalkSpec):
        key = _spec_key(spec)
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            self.stats.engine_hits += 1
            return engine
        engine = self._build_engine(spec)
        engine.prepare()
        self.stats.engine_builds += 1
        self._engines[key] = engine
        self._trim()
        return engine

    # -- queries -----------------------------------------------------------

    def query(
        self,
        spec: WalkSpec,
        workload: Workload,
        seed: RngLike = 0,
        record_paths: bool = True,
    ) -> EngineResult:
        """Run one walk query; preprocessing is cached across queries.

        Queries are serialised under the session lock: cached engines
        reuse per-engine scratch arenas and are not re-entrant.
        """
        with self._lock:
            self.stats.queries += 1
            engine = self._engine_for(spec)
            return engine.run(workload, seed=seed, record_paths=record_paths)

    def engine_for(self, spec: WalkSpec):
        """Fetch (building if needed) the prepared engine for ``spec``.

        The serving batcher uses this to run lane-seeded frontier calls
        directly; it counts as a query for hit-rate accounting. The
        caller must serialise its own use of the returned engine.
        """
        with self._lock:
            self.stats.queries += 1
            return self._engine_for(spec)

    # -- accounting / lifecycle --------------------------------------------

    def resident_index_bytes(self) -> int:
        """Total bytes held by all cached engines' indices."""
        total = 0
        for engine in self._engines.values():
            if getattr(engine, "index", None) is not None:
                total += engine.index.nbytes()
        return total

    def close(self) -> None:
        """Evict every cached engine, releasing pools/shm they hold."""
        with self._lock:
            while self._engines:
                self._evict_lru(count=False)

    def __enter__(self) -> "TeaSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._engines)
