"""Vectorised batch walk execution for the TEA engine.

The scalar walk loop pays interpreter overhead per step; this executor
advances an entire *frontier* of walkers per iteration with numpy,
keeping TEA's exact sampling semantics:

1. gather each active walker's candidate total from the prefix-sum
   array and draw ``r ∈ (0, total]``;
2. run the ITS-over-trunks step for all walkers simultaneously by
   scanning bit positions of the candidate sizes from high to low
   (≤ ~20 vectorised passes — the binary decomposition evaluated in
   lockstep instead of per walker);
3. one vectorised alias draw inside every selected trunk;
4. vectorised node2vec β rejection (static-adjacency membership via the
   same offset-key ``searchsorted`` trick the candidate search uses),
   re-drawing only the rejected lanes;
5. advance, retire exhausted walkers, repeat until the frontier drains.

Distribution-equivalent to :class:`~repro.engines.tea.TeaEngine`
(property-tested); typically ~10× faster per step in CPython, which is
what lets benchmarks run the paper's full R·|V| workloads.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core import builder
from repro.engines.base import Engine, EngineResult, Workload
from repro.graph.temporal_graph import TemporalGraph
from repro.metrics.memory import MemoryReport
from repro.metrics.timing import PhaseTimer
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.telemetry import MetricsRegistry, Tracer
from repro.walks.spec import WalkSpec
from repro.walks.walker import WalkPath

_MAX_BETA_ROUNDS = 16


def hpat_sample_batch(
    index,
    vs: np.ndarray,
    ss: np.ndarray,
    rng: np.random.Generator,
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """Vectorised HPAT draws for parallel arrays of (vertex, candidate size).

    The standalone form of the frontier kernel, shared by
    :class:`BatchTeaEngine` and the GNN neighborhood sampler
    (:mod:`repro.gnn`). Returns per-query edge indices local to each
    vertex's adjacency; every ``ss`` entry must be >= 1.
    """
    n = vs.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    cbase = index.indptr[vs] + vs
    totals = index.c[cbase + ss]
    r = totals - rng.random(n) * totals  # draws in (0, total]

    # ITS over trunks, bit-scan lockstep: find the block of the binary
    # decomposition whose cumulative boundary covers r.
    remaining = ss.astype(np.int64).copy()
    offset = np.zeros(n, dtype=np.int64)
    level = np.zeros(n, dtype=np.int64)
    chosen = np.zeros(n, dtype=bool)
    max_bits = int(ss.max()).bit_length()
    for k in range(max_bits - 1, -1, -1):
        block = 1 << k
        rows = np.flatnonzero((~chosen) & ((remaining & block) != 0))
        if not rows.size:
            continue
        boundary = index.c[cbase[rows] + offset[rows] + block]
        take = boundary >= r[rows]
        take_rows = rows[take]
        level[take_rows] = k
        chosen[take_rows] = True
        offset[rows[~take]] += block
        remaining[rows] -= block

    if counters is not None:
        from repro.core.aux_index import _popcount

        blocks = _popcount(ss.astype(np.int64))
        probes = np.ceil(np.log2(np.maximum(blocks, 2))).astype(np.int64) + 1
        counters.binary_search_probes += int(probes.sum())
        counters.edges_evaluated += int(probes.sum())

    # Alias draw inside each selected trunk (level 0 is the identity).
    out = offset.copy()
    deep = level > 0
    if deep.any():
        dvs = vs[deep]
        k = level[deep]
        width = np.int64(1) << k
        start = index.lvl_ptr[index.lvl_base[dvs] + k - 1] + offset[deep]
        cell = (rng.random(dvs.size) * width).astype(np.int64)
        cell = np.minimum(cell, width - 1)
        take_cell = rng.random(dvs.size) < index.prob[start + cell]
        local = np.where(take_cell, cell, index.alias[start + cell])
        out[deep] = offset[deep] + local
        if counters is not None:
            counters.alias_draws += int(deep.sum())
            counters.edges_evaluated += int(deep.sum())
    return out


class BatchTeaEngine(Engine):
    """Frontier-vectorised TEA (HPAT sampling, exact semantics)."""

    has_candidate_index = True
    name = "tea-batch"

    def __init__(self, graph: TemporalGraph, spec: WalkSpec):
        super().__init__(graph, spec)
        self.index = None
        self.weights: Optional[np.ndarray] = None
        self._static_ready = False

    def _prepare(self) -> None:
        pre = builder.preprocess(self.graph, self.spec.weight_model,
                                 tracer=self.tracer)
        self.index = pre.index
        self.weights = pre.weights
        self.candidate_sizes = pre.candidate_sizes
        from repro.walks.spec import Node2VecParameter

        if (
            isinstance(self.spec.dynamic_parameter, Node2VecParameter)
            and self.graph.num_vertices
        ):
            # Build the static adjacency and its offset-key view now so
            # the walk phase is pure array work. Custom Dynamic_parameters
            # are evaluated scalar per rejected lane instead.
            g = self.graph
            g._build_static_adjacency()
            span = np.int64(g.num_vertices)
            self._static_keys = g._static_nbr + np.repeat(
                np.arange(g._static_indptr.size - 1, dtype=np.int64) * span,
                np.diff(g._static_indptr),
            )
            self._static_ready = True

    # Scalar fallback keeps the Engine contract usable (tests, analytics).
    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        return self.index.sample(v, candidate_size, rng, counters)

    # -- vectorised kernels ----------------------------------------------------

    def _sample_batch(
        self, vs: np.ndarray, ss: np.ndarray, rng: np.random.Generator,
        counters: CostCounters,
    ) -> np.ndarray:
        """HPAT draws for parallel arrays of (vertex, candidate size).

        Delegates to the shared :func:`hpat_sample_batch` kernel.
        """
        return hpat_sample_batch(self.index, vs, ss, rng, counters)

    def _beta_batch(self, prev: np.ndarray, cand: np.ndarray) -> np.ndarray:
        """Vectorised node2vec β(prev, cand) (Equation 4).

        Membership in the static undirected adjacency is one
        ``searchsorted`` over the precomputed offset-key view: entry
        (u, v) exists iff key ``v + u·|V|`` appears.
        """
        beta = self.spec.dynamic_parameter
        out = np.full(prev.size, 1.0 / beta.p)
        undecided = cand != prev
        if undecided.any():
            u = prev[undecided]
            v = cand[undecided]
            span = np.int64(self.graph.num_vertices)
            qval = v + u * span
            keys = self._static_keys
            found = np.searchsorted(keys, qval)
            is_neighbor = (found < keys.size) & (keys[np.minimum(found, keys.size - 1)] == qval)
            out[undecided] = np.where(is_neighbor, 1.0, 1.0 / beta.q)
        return out

    # -- run ---------------------------------------------------------------------

    def run(self, workload: Workload, seed: RngLike = 0,
            record_paths: bool = True, sink=None,
            registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None) -> EngineResult:
        registry = registry if registry is not None else MetricsRegistry()
        tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.tracer = tracer
        timer = PhaseTimer()
        with timer.phase("prepare"), tracer.span("prepare", engine=self.name):
            self.prepare()
        rng = make_rng(seed)
        counters = CostCounters()
        frontier_hist = registry.histogram(
            "batch.frontier_size", "active walkers per frontier iteration"
        )
        g = self.graph
        beta = self.spec.dynamic_parameter
        beta_max = beta.beta_max if beta is not None else 1.0
        if beta is not None and g.num_vertices and g._static_indptr is None:
            g._build_static_adjacency()

        starts = workload.resolve_starts(g.num_vertices, rng).astype(np.int64)
        num = starts.size
        keep_hops = record_paths or sink is not None
        hops: List[List] = [[(int(u), None)] for u in starts] if keep_hops else []

        with timer.phase("walk"), tracer.span(
            "walk", engine=self.name, walks=num
        ):
            cur = starts.copy()
            prev = np.full(num, -1, dtype=np.int64)
            s = (g.indptr[cur + 1] - g.indptr[cur]).astype(np.int64)
            steps_left = np.full(num, workload.max_length, dtype=np.int64)
            active = (s > 0) & (steps_left > 0)
            lanes = np.flatnonzero(active)
            while lanes.size:
                frontier_hist.observe(lanes.size)
                if workload.stop_probability:
                    survive = rng.random(lanes.size) >= workload.stop_probability
                    lanes = lanes[survive]
                    if not lanes.size:
                        break
                counters.steps += lanes.size
                vs = cur[lanes]
                ss = s[lanes]
                pending = np.arange(lanes.size)
                idx_out = np.empty(lanes.size, dtype=np.int64)
                for _ in range(_MAX_BETA_ROUNDS):
                    draw = self._sample_batch(vs[pending], ss[pending], rng, counters)
                    idx_out[pending] = draw
                    if beta is None:
                        pending = pending[:0]
                        break
                    pos_try = g.indptr[vs[pending]] + draw
                    cand = g.nbr[pos_try]
                    pv = prev[lanes][pending]
                    has_prev = pv >= 0
                    b = np.full(pending.size, beta_max)
                    if has_prev.any():
                        if self._static_ready:
                            b[has_prev] = self._beta_batch(pv[has_prev], cand[has_prev])
                        else:  # custom Dynamic_parameter: scalar evaluation
                            b[has_prev] = np.fromiter(
                                (beta(g, int(p), int(c))
                                 for p, c in zip(pv[has_prev], cand[has_prev])),
                                dtype=np.float64,
                            )
                    accept = rng.random(pending.size) * beta_max <= b
                    counters.rejection_trials += pending.size
                    counters.edges_evaluated += pending.size
                    counters.rejected += int((~accept).sum())
                    pending = pending[~accept]
                    if not pending.size:
                        break
                # Rare lanes that exhausted the rejection budget fall back
                # to the exact β-adjusted scan (same as the scalar loop).
                for lane_pos in pending:
                    pv = prev[lanes][lane_pos]
                    idx_out[lane_pos] = self._beta_exact_draw(
                        int(vs[lane_pos]), int(ss[lane_pos]),
                        None if pv < 0 else int(pv), beta, rng, counters,
                    )
                pos = g.indptr[vs] + idx_out
                nxt = g.nbr[pos].astype(np.int64)
                t_next = g.etime[pos]
                s_next = self.candidate_sizes[pos].astype(np.int64)
                if keep_hops:
                    for lane, v2, t2 in zip(lanes, nxt, t_next):
                        hops[lane].append((int(v2), float(t2)))
                prev[lanes] = cur[lanes]
                cur[lanes] = nxt
                s[lanes] = s_next
                steps_left[lanes] -= 1
                still = (s_next > 0) & (steps_left[lanes] > 0)
                lanes = lanes[still]

        walk_length_hist = registry.histogram(
            "walk.length", "edges per completed walk"
        )
        for length in (workload.max_length - steps_left).tolist():
            walk_length_hist.observe(length)
        paths = []
        if keep_hops:
            for h in hops:
                walk = WalkPath(hops=h)
                if record_paths:
                    paths.append(walk)
                if sink is not None:
                    sink.append(walk)
        memory = self.memory_report()
        counters.publish(registry)
        registry.counter("walk.walks", "walks executed").inc(num)
        registry.gauge("memory.bytes", "engine structure bytes").set(memory.total)
        self.publish_telemetry(registry)
        return EngineResult(
            engine=self.name,
            spec=self.spec.describe(),
            workload=workload.describe(),
            paths=paths,
            counters=counters,
            timer=timer,
            memory=memory,
            registry=registry,
            trace=tracer,
        )

    def memory_report(self) -> MemoryReport:
        report = super().memory_report()
        if self.index is not None:
            for name, nbytes in self.index.memory_breakdown().items():
                report.add(f"index_{name}", nbytes)
        return report
