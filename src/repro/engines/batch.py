"""Vectorised batch walk execution for the TEA engine.

The scalar walk loop pays interpreter overhead per step; this executor
advances an entire *frontier* of walkers per iteration with numpy,
keeping TEA's exact sampling semantics:

1. gather each active walker's candidate total from the prefix-sum
   array and draw ``r ∈ (0, total]``;
2. run the ITS-over-trunks step for all walkers simultaneously by
   scanning bit positions of the candidate sizes from high to low
   (≤ ~20 vectorised passes — the binary decomposition evaluated in
   lockstep instead of per walker);
3. one vectorised alias draw inside every selected trunk;
4. vectorised node2vec β rejection (static-adjacency membership via the
   same offset-key ``searchsorted`` trick the candidate search uses),
   re-drawing only the rejected lanes;
5. advance, retire exhausted walkers, repeat until the frontier drains.

Distribution-equivalent to :class:`~repro.engines.tea.TeaEngine`
(property-tested); typically ~10× faster per step in CPython, which is
what lets benchmarks run the paper's full R·|V| workloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core import builder
from repro.engines.base import Engine, EngineResult, Workload
from repro.graph.temporal_graph import TemporalGraph
from repro.kernels import (
    KernelScratch,
    resolve_backend,
    sample_batch as _kernel_sample_batch,
)
from repro.rng import GeneratorLanes, LaneRng, RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.telemetry import (
    MemoryReport,
    MetricsRegistry,
    NULL_PROFILER,
    PhaseTimer,
    Tracer,
)
from repro.telemetry.events import current_run_id
from repro.walks.spec import WalkSpec
from repro.walks.walker import WalkPath

_MAX_BETA_ROUNDS = 16


@dataclass
class FrontierResult:
    """Columnar outcome of one frontier-vectorised walk batch.

    Hops are recorded per *column* (step index) into dense ``(num_walks,
    max_length)`` arrays — every lane active at iteration ``k`` has taken
    exactly ``k`` hops, so a scatter per iteration replaces the per-lane
    Python append the loop used to pay. Walk ``i``'s valid hops are
    ``hop_vertex[i, :lengths[i]]`` / ``hop_time[i, :lengths[i]]``.
    ``hop_vertex``/``hop_time`` are ``None`` when hop recording was off.
    """

    starts: np.ndarray
    lengths: np.ndarray
    hop_vertex: Optional[np.ndarray] = None
    hop_time: Optional[np.ndarray] = None

    @property
    def total_steps(self) -> int:
        return int(self.lengths.sum())

    def materialise_paths(self, record_paths: bool = True, sink=None) -> List[WalkPath]:
        """Build :class:`WalkPath` objects from the columnar arrays.

        Runs once per batch after the walk phase (never inside it);
        ``sink`` receives every walk, the returned list only fills when
        ``record_paths`` is true.
        """
        paths: List[WalkPath] = []
        if self.hop_vertex is None or (not record_paths and sink is None):
            return paths
        starts = self.starts.tolist()
        lengths = self.lengths.tolist()
        for i, (start, length) in enumerate(zip(starts, lengths)):
            hops = [(start, None)]
            if length:
                hops.extend(
                    zip(
                        self.hop_vertex[i, :length].tolist(),
                        self.hop_time[i, :length].tolist(),
                    )
                )
            walk = WalkPath(hops=hops)
            if record_paths:
                paths.append(walk)
            if sink is not None:
                sink.append(walk)
        return paths

    def observe_lengths(self, histogram) -> None:
        """Fold walk lengths into ``histogram`` one distinct value at a
        time (the ``np.unique`` twin of the scalar loop's Counter fold)."""
        values, counts = np.unique(self.lengths, return_counts=True)
        for value, n in zip(values.tolist(), counts.tolist()):
            histogram.observe_n(value, n)


def hpat_sample_batch(
    index,
    vs: np.ndarray,
    ss: np.ndarray,
    rng: np.random.Generator,
    counters: Optional[CostCounters] = None,
    *,
    draw=None,
    lanes: Optional[np.ndarray] = None,
    backend="auto",
    scratch: Optional[KernelScratch] = None,
) -> np.ndarray:
    """Vectorised HPAT draws for parallel arrays of (vertex, candidate size).

    The standalone form of the frontier kernel, shared by
    :class:`BatchTeaEngine` and the GNN neighborhood sampler
    (:mod:`repro.gnn`). Returns per-query edge indices local to each
    vertex's adjacency; every ``ss`` entry must be >= 1.

    ``draw``/``lanes`` route uniforms through a lane-draw source
    (:class:`~repro.rng.LaneRng` keyed per walk, or the bit-compatible
    :class:`~repro.rng.GeneratorLanes` default over ``rng``): row ``i``
    draws from lane ``lanes[i]``, which is what makes the parallel
    executor's output independent of chunking and scheduling.

    Since the kernel-fusion refactor this is a thin dispatcher over
    :mod:`repro.kernels`: ``backend`` names a kernel backend (or passes
    a resolved :class:`~repro.kernels.KernelBackend`), ``scratch``
    carries the reusable staging buffers across calls. All backends are
    bit-identical, so callers that ignore both keep their exact output.
    """
    return _kernel_sample_batch(
        resolve_backend(backend), index, vs, ss, rng, counters,
        draw=draw, lanes=lanes, scratch=scratch,
    )


class BatchTeaEngine(Engine):
    """Frontier-vectorised TEA (HPAT sampling, exact semantics)."""

    has_candidate_index = True
    name = "tea-batch"

    def __init__(self, graph: TemporalGraph, spec: WalkSpec,
                 kernel_backend="auto"):
        super().__init__(graph, spec)
        self.index = None
        self.weights: Optional[np.ndarray] = None
        self._static_ready = False
        self.kernel = resolve_backend(kernel_backend)

    def _prepare(self) -> None:
        pre = builder.preprocess(self.graph, self.spec.weight_model,
                                 tracer=self.tracer)
        self.index = pre.index
        self.weights = pre.weights
        self.candidate_sizes = pre.candidate_sizes
        self._maybe_build_static_keys()

    def _maybe_build_static_keys(self) -> None:
        """Precompute the node2vec offset-key adjacency view (if needed).

        Shared by every frontier-vectorised engine's ``_prepare``: with a
        :class:`Node2VecParameter` the walk phase becomes pure array
        work; custom Dynamic_parameters are evaluated scalar per rejected
        lane instead.
        """
        from repro.walks.spec import Node2VecParameter

        if (
            isinstance(self.spec.dynamic_parameter, Node2VecParameter)
            and self.graph.num_vertices
        ):
            g = self.graph
            g._build_static_adjacency()
            span = np.int64(g.num_vertices)
            self._static_keys = g._static_nbr + np.repeat(
                np.arange(g._static_indptr.size - 1, dtype=np.int64) * span,
                np.diff(g._static_indptr),
            )
            self._static_ready = True

    @classmethod
    def from_prepared(
        cls,
        graph: TemporalGraph,
        spec: WalkSpec,
        index,
        candidate_sizes: np.ndarray,
        static_keys: Optional[np.ndarray] = None,
        kernel_backend="auto",
    ) -> "BatchTeaEngine":
        """Wrap an already-built index without re-running preprocessing.

        The zero-copy entry point for parallel workers: ``graph`` must
        already be spec-restricted and ``index``/``candidate_sizes`` are
        adopted as-is (typically views over shared memory), so
        construction costs no array copies and no index build.
        """
        engine = object.__new__(cls)
        engine.graph = graph
        engine.spec = spec
        engine._prepared = True
        engine.index = index
        engine.weights = None
        engine.candidate_sizes = candidate_sizes
        engine.kernel = resolve_backend(kernel_backend)
        from repro.telemetry import NULL_TRACER

        engine.tracer = NULL_TRACER
        engine.profiler = NULL_PROFILER
        engine._static_keys = static_keys
        engine._static_ready = static_keys is not None
        return engine

    # Scalar fallback keeps the Engine contract usable (tests, analytics).
    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        return self.index.sample(v, candidate_size, rng, counters)

    # -- vectorised kernels ----------------------------------------------------

    def _sample_batch(
        self, vs: np.ndarray, ss: np.ndarray, rng: np.random.Generator,
        counters: CostCounters, draw=None, lanes: Optional[np.ndarray] = None,
        scratch: Optional[KernelScratch] = None,
    ) -> np.ndarray:
        """HPAT draws for parallel arrays of (vertex, candidate size).

        Runs the engine's resolved kernel backend; ``scratch`` (one per
        frontier run) makes steady-state iterations allocation-free.
        """
        return _kernel_sample_batch(self.kernel, self.index, vs, ss, rng,
                                    counters, draw=draw, lanes=lanes,
                                    scratch=scratch)

    def _beta_batch(self, prev: np.ndarray, cand: np.ndarray) -> np.ndarray:
        """Vectorised node2vec β(prev, cand) (Equation 4).

        Membership in the static undirected adjacency is one
        ``searchsorted`` over the precomputed offset-key view: entry
        (u, v) exists iff key ``v + u·|V|`` appears.
        """
        beta = self.spec.dynamic_parameter
        out = np.full(prev.size, 1.0 / beta.p)
        undecided = cand != prev
        if undecided.any():
            keys = self._static_keys
            if keys.size == 0:
                # Degenerate static adjacency (e.g. a graph of isolated
                # vertices plus self-loops): nothing is a neighbor, and
                # indexing ``keys[...]`` below would be out of bounds.
                out[undecided] = 1.0 / beta.q
                return out
            u = prev[undecided]
            v = cand[undecided]
            span = np.int64(self.graph.num_vertices)
            qval = v + u * span
            found = np.searchsorted(keys, qval)
            is_neighbor = (found < keys.size) & (keys[np.minimum(found, keys.size - 1)] == qval)
            out[undecided] = np.where(is_neighbor, 1.0, 1.0 / beta.q)
        return out

    def _beta_fallback_batch(
        self, vs: np.ndarray, ss: np.ndarray, prevs: np.ndarray,
        beta, draw_src, lanes: np.ndarray, counters: CostCounters,
    ) -> np.ndarray:
        """Exact β-adjusted draws for lanes that exhausted the rejection
        budget — the vectorised twin of
        :meth:`~repro.engines.base.Engine._beta_exact_draw`.

        Weight·β prefix sums are built **row-wise** over a padded
        ``(lanes, max_s)`` matrix, never as one flat cumsum: per-lane
        float accumulation order must not depend on which other lanes
        happen to share the fallback batch, or output would vary with
        chunking/scheduling. One uniform per lane (same stream
        consumption as the scalar path) turns into ``r ∈ (0, total]``
        and a per-row prefix comparison replaces the bisection.
        """
        g = self.graph
        p = vs.size
        max_s = int(ss.max())
        wb = np.zeros((p, max_s), dtype=np.float64)
        for i in range(p):
            si = int(ss[i])
            wb[i, :si] = self._candidate_weights(int(vs[i]), si)
            counters.record_scan(si)
        valid = np.arange(max_s)[None, :] < ss[:, None]
        rows, cols = np.nonzero(valid & (prevs[:, None] >= 0))
        if rows.size:
            cand = g.nbr[g.indptr[vs[rows]] + cols]
            pv = prevs[rows]
            if self._static_ready:
                bvals = self._beta_batch(pv, cand)
            else:
                bvals = np.fromiter(
                    (beta(g, int(a), int(c)) for a, c in zip(pv, cand)),
                    dtype=np.float64, count=rows.size,
                )
            wb[rows, cols] *= bvals
        # Lanes without a previous vertex keep β ≡ beta_max — a per-lane
        # constant that cancels under the normalised draw below.
        prefix = np.zeros((p, max_s + 1), dtype=np.float64)
        np.cumsum(wb, axis=1, out=prefix[:, 1:])
        totals = prefix[:, -1]
        r = totals - draw_src.uniform(lanes) * totals  # (0, total] per lane
        choice = (prefix < r[:, None]).sum(axis=1) - 1
        return np.clip(choice, 0, ss - 1)

    def _on_frontier_advance(self, vs: np.ndarray, ss: np.ndarray) -> None:
        """Hook fired after each frontier iteration with the lanes that
        stay active — ``(vertex, candidate size)`` pairs the *next*
        iteration will sample. The in-memory engine needs no lookahead;
        the out-of-core subclass predicts trunk demand here and hands it
        to the async prefetcher."""

    # -- frontier kernel ---------------------------------------------------------

    def _run_frontier(
        self,
        starts: np.ndarray,
        max_length: int,
        stop_probability: float,
        rng: np.random.Generator,
        counters: CostCounters,
        keep_hops: bool,
        frontier_hist=None,
        profiler=None,
        lane_rng=None,
        interleave: int = 1,
    ) -> FrontierResult:
        """Advance every walk in ``starts`` to completion, vectorised.

        The reusable core of this engine: the parallel executor
        (:mod:`repro.parallel`) runs exactly this kernel per chunk inside
        worker threads/processes, against the same shared index arrays.
        Hops land in columnar ``(num, max_length)`` arrays — all lanes
        active at iteration ``k`` have taken ``k`` hops, so recording is
        one scatter per iteration instead of a Python append per lane.

        ``profiler`` is passed explicitly (never read from ``self`` here)
        because the thread backend shares one engine instance across
        worker threads — each chunk profiles into its own instance.
        Phase cost is charged per frontier *iteration*, not per step, so
        the bookkeeping stays far under the <5% overhead budget.

        ``lane_rng`` substitutes counter-based per-walk streams
        (:class:`~repro.rng.LaneRng`, one lane per start) for the shared
        generator; ``interleave`` > 1 then splits the frontier into that
        many walker cohorts advanced round-robin (ThunderRW-style step
        interleaving) — bit-identical to the single-cohort pass because
        each lane's draws are keyed on its own counter, not call order.
        Without ``lane_rng`` a cohort schedule would perturb the shared
        generator's draw order, so ``interleave`` is forced to 1.
        """
        prof = profiler if profiler is not None else NULL_PROFILER
        g = self.graph
        beta = self.spec.dynamic_parameter
        beta_max = beta.beta_max if beta is not None else 1.0
        if beta is not None and g.num_vertices and g._static_indptr is None:
            g._build_static_adjacency()
        num = starts.size
        hop_vertex = hop_time = None
        if keep_hops:
            hop_vertex = np.zeros((num, max_length), dtype=np.int64)
            hop_time = np.zeros((num, max_length), dtype=np.float64)

        draw_src = lane_rng if lane_rng is not None else GeneratorLanes(rng)
        if lane_rng is None:
            interleave = 1
        # One scratch arena per frontier run: thread-safe (locals only)
        # and sized once at peak frontier width.
        scratch = KernelScratch()

        cur = starts.copy()
        prev = np.full(num, -1, dtype=np.int64)
        s = (g.indptr[cur + 1] - g.indptr[cur]).astype(np.int64)
        steps_left = np.full(num, max_length, dtype=np.int64)
        active = (s > 0) & (steps_left > 0)

        def advance(lanes: np.ndarray, iteration: int) -> np.ndarray:
            """One frontier iteration over ``lanes``; returns survivors.

            Closes over the walk-state arrays (``cur``/``prev``/``s``/
            ``steps_left``/hop columns); cohorts hold disjoint lane sets,
            so interleaved calls never touch the same rows.
            """
            with prof.phase("gather"):
                if frontier_hist is not None:
                    frontier_hist.observe(lanes.size)
                if stop_probability:
                    survive = draw_src.uniform(lanes) >= stop_probability
                    lanes = lanes[survive]
                    if not lanes.size:
                        return lanes
                counters.steps += lanes.size
                vs = cur[lanes]
                ss = s[lanes]
                pending = np.arange(lanes.size)
                idx_out = np.empty(lanes.size, dtype=np.int64)
            with prof.phase("draw"):
                for _ in range(_MAX_BETA_ROUNDS):
                    drawn = self._sample_batch(
                        vs[pending], ss[pending], rng, counters,
                        draw=draw_src, lanes=lanes[pending], scratch=scratch,
                    )
                    idx_out[pending] = drawn
                    if beta is None:
                        pending = pending[:0]
                        break
                    pos_try = g.indptr[vs[pending]] + drawn
                    cand = g.nbr[pos_try]
                    pv = prev[lanes][pending]
                    has_prev = pv >= 0
                    b = np.full(pending.size, beta_max)
                    if has_prev.any():
                        if self._static_ready:
                            b[has_prev] = self._beta_batch(pv[has_prev], cand[has_prev])
                        else:  # custom Dynamic_parameter: scalar evaluation
                            b[has_prev] = np.fromiter(
                                (beta(g, int(p), int(c))
                                 for p, c in zip(pv[has_prev], cand[has_prev])),
                                dtype=np.float64,
                            )
                    accept = draw_src.uniform(lanes[pending]) * beta_max <= b
                    counters.rejection_trials += pending.size
                    counters.edges_evaluated += pending.size
                    counters.rejected += int((~accept).sum())
                    pending = pending[~accept]
                    if not pending.size:
                        break
                # Rare lanes that exhausted the rejection budget fall back
                # to the exact β-adjusted scan, all lanes at once.
                if pending.size:
                    idx_out[pending] = self._beta_fallback_batch(
                        vs[pending], ss[pending], prev[lanes][pending],
                        beta, draw_src, lanes[pending], counters,
                    )
            with prof.phase("scatter"):
                pos = g.indptr[vs] + idx_out
                nxt = g.nbr[pos].astype(np.int64)
                t_next = g.etime[pos]
                s_next = self.candidate_sizes[pos].astype(np.int64)
                if keep_hops:
                    hop_vertex[lanes, iteration] = nxt
                    hop_time[lanes, iteration] = t_next
                prev[lanes] = cur[lanes]
                cur[lanes] = nxt
                s[lanes] = s_next
                steps_left[lanes] -= 1
                still = (s_next > 0) & (steps_left[lanes] > 0)
                lanes = lanes[still]
                if lanes.size:
                    self._on_frontier_advance(cur[lanes], s[lanes])
            return lanes

        frontier = np.flatnonzero(active)
        if interleave <= 1:
            iteration = 0
            while frontier.size:
                frontier = advance(frontier, iteration)
                iteration += 1
        else:
            # ThunderRW-style ring: split the frontier into k cohorts and
            # advance them round-robin, so cohort i+1's gather works a
            # different region of the index while cohort i's draw/scatter
            # results are still warm. Each ring entry carries its own
            # iteration count — all lanes of a cohort still share one hop
            # column per pass, preserving the columnar hop layout.
            k = max(1, min(int(interleave), int(frontier.size)))
            ring = deque(
                (part, 0) for part in np.array_split(frontier, k) if part.size
            )
            while ring:
                cohort, iteration = ring.popleft()
                with prof.phase("cohort"):
                    cohort = advance(cohort, iteration)
                if cohort.size:
                    ring.append((cohort, iteration + 1))

        return FrontierResult(
            starts=starts,
            lengths=max_length - steps_left,
            hop_vertex=hop_vertex,
            hop_time=hop_time,
        )

    # -- lane-seeded execution ---------------------------------------------------

    def run_lanes(
        self,
        starts: np.ndarray,
        seeds: np.ndarray,
        max_length: int,
        stop_probability: float = 0.0,
        keep_hops: bool = True,
        counters: Optional[CostCounters] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> FrontierResult:
        """Walk ``starts`` with explicit per-walk lane seeds.

        Walk ``i`` is advanced by a counter-based stream keyed on
        ``seeds[i]`` (:class:`~repro.rng.LaneRng`), so its sampled path
        is a pure function of ``(starts[i], seeds[i])`` — independent of
        which other walks share the frontier, their order, or how the
        caller partitions a workload into ``run_lanes`` calls. This is
        the coalescing contract the serving batcher
        (:mod:`repro.serve`) is built on: batched requests are
        bit-identical to solo runs.
        """
        self.prepare()
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        seeds = np.ascontiguousarray(seeds)
        if starts.size != seeds.size:
            raise ValueError("starts and seeds must be equal length")
        counters = counters if counters is not None else CostCounters()
        frontier_hist = (
            registry.histogram(
                "batch.frontier_size", "active walkers per frontier iteration"
            )
            if registry is not None
            else None
        )
        return self._run_frontier(
            starts, int(max_length), float(stop_probability),
            np.random.default_rng(0),  # unused: draws come from the lanes
            counters, keep_hops, frontier_hist,
            lane_rng=LaneRng(seeds),
        )

    # -- run ---------------------------------------------------------------------

    def run(self, workload: Workload, seed: RngLike = 0,
            record_paths: bool = True, sink=None,
            registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None) -> EngineResult:
        registry = registry if registry is not None else MetricsRegistry()
        tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.tracer = tracer
        profiler = self.profiler
        timer = PhaseTimer()
        with timer.phase("prepare"), tracer.span("prepare", engine=self.name), \
                profiler.phase("prepare"):
            self.prepare()
        rng = make_rng(seed)
        counters = CostCounters()
        frontier_hist = registry.histogram(
            "batch.frontier_size", "active walkers per frontier iteration"
        )
        starts = workload.resolve_starts(self.graph.num_vertices, rng).astype(np.int64)
        keep_hops = record_paths or sink is not None

        with timer.phase("walk"), tracer.span(
            "walk", engine=self.name, walks=int(starts.size)
        ), profiler.phase("walk"):
            result = self._run_frontier(
                starts, workload.max_length, workload.stop_probability,
                rng, counters, keep_hops, frontier_hist,
                profiler=profiler if profiler.enabled else None,
            )

        with profiler.phase("finalize"):
            result.observe_lengths(
                registry.histogram("walk.length", "edges per completed walk")
            )
            paths = result.materialise_paths(record_paths=record_paths, sink=sink)
            memory = self.memory_report()
            counters.publish(registry)
            registry.counter("walk.walks", "walks executed").inc(int(starts.size))
            registry.gauge("memory.bytes", "engine structure bytes").set(memory.total)
            self.publish_telemetry(registry)
        return EngineResult(
            engine=self.name,
            spec=self.spec.describe(),
            workload=workload.describe(),
            paths=paths,
            counters=counters,
            timer=timer,
            memory=memory,
            registry=registry,
            trace=tracer,
            run_id=current_run_id(),
        )

    def memory_report(self) -> MemoryReport:
        report = super().memory_report()
        if self.index is not None:
            for name, nbytes in self.index.memory_breakdown().items():
                report.add(f"index_{name}", nbytes)
        return report
