"""Random-walk engines: TEA and the paper's baselines.

* :class:`~repro.engines.tea.TeaEngine` — the paper's system, with the
  sampling structure selectable (HPAT / PAT / pure ITS / full alias) so
  the Figure 11/12 ablations are configurations, not forks;
* :class:`~repro.engines.graphwalker.GraphWalkerEngine` — full-scan
  rebuild on dynamic weights, ITS on static ones (in-memory or
  out-of-core);
* :class:`~repro.engines.knightking.KnightKingEngine` — rejection
  sampling with a max-weight envelope (1-node, or the modeled 8-node
  cluster of the paper's setup);
* :class:`~repro.engines.ctdne.CtdneEngine` — the reference
  implementation style: per-step dynamic weight evaluation in
  interpreter-speed code;
* :class:`~repro.engines.tea_outofcore.TeaOutOfCoreEngine` — PAT with
  disk-resident trunks (scalar), and
  :class:`~repro.engines.tea_outofcore.BatchTeaOutOfCoreEngine` — the
  batched fast path over the same store (coalesced reads, async
  prefetch, scan-resistant cache);
* :class:`~repro.parallel.ParallelBatchTeaEngine` — the frontier kernel
  run chunk-parallel across worker processes/threads over a shared
  prepared index (re-exported here for discoverability).

All engines share :class:`~repro.engines.base.Engine`'s walk loop
(Algorithm 2), differing only in how one edge is sampled from a candidate
set and in what they precompute.
"""

from repro.engines.base import Engine, EngineResult, Workload
from repro.engines.tea import TeaEngine
from repro.engines.batch import BatchTeaEngine
from repro.engines.graphwalker import GraphWalkerEngine
from repro.engines.knightking import KnightKingEngine
from repro.engines.ctdne import CtdneEngine
from repro.engines.tea_outofcore import (
    BatchTeaOutOfCoreEngine,
    TeaOutOfCoreEngine,
)
from repro.engines.mutable import MutableTeaEngine

# Imported last: repro.parallel builds on repro.engines.batch, which is
# already bound above, so this re-export cannot recurse.
from repro.parallel.engine import ParallelBatchTeaEngine

__all__ = [
    "Engine",
    "EngineResult",
    "Workload",
    "TeaEngine",
    "BatchTeaEngine",
    "GraphWalkerEngine",
    "KnightKingEngine",
    "CtdneEngine",
    "TeaOutOfCoreEngine",
    "BatchTeaOutOfCoreEngine",
    "MutableTeaEngine",
    "ParallelBatchTeaEngine",
]
