"""GraphWalker-strategy baseline (paper Sections 1, 4.3, 5).

GraphWalker is a static-graph out-of-core walk engine. Applied to
temporal walks (the paper's comparison):

* **static weights** (linear, uniform): it precomputes per-vertex prefix
  sums and samples by ITS — O(log D) per step;
* **dynamic weights** (exponential, node2vec): the weight depends on the
  walker's arrival time, so it *rebuilds the distribution per step* by
  scanning every candidate edge (full-scan sampling) — O(D) per step,
  the 19,046 edges/step of Figure 2.

Candidate sets are binary-searched per step (it has no candidate index).

``out_of_core=True`` models GraphWalker's disk mode (Figure 14): the
adjacency (destinations, times) resides in a disk-backed store and every
step loads the vertex's *entire* neighbor list — O(D) bytes of I/O —
before sampling, mirroring its load-then-sample design.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.builder import build_prefix_array
from repro.engines.base import Engine
from repro.graph.temporal_graph import TemporalGraph
from repro.telemetry import MemoryReport
from repro.sampling.counters import CostCounters
from repro.sampling.fullscan import full_scan_sample
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search
from repro.walks.spec import WalkSpec

_STATIC_KINDS = ("uniform", "linear_rank", "linear_time")


class GraphWalkerEngine(Engine):
    """Full-scan / ITS baseline, optionally out-of-core."""

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        out_of_core: bool = False,
        storage_dir: Optional[str] = None,
    ):
        super().__init__(graph, spec)
        self.out_of_core = bool(out_of_core)
        self._storage_dir = storage_dir
        self._tmpdir = None
        self.weights: Optional[np.ndarray] = None
        self.c: Optional[np.ndarray] = None
        self._disk_nbr = None
        self._disk_time = None
        self._disk_w = None
        self.name = "graphwalker-ooc" if out_of_core else "graphwalker"

    @property
    def _static(self) -> bool:
        return self.spec.weight_model.kind in _STATIC_KINDS

    def _prepare(self) -> None:
        with self.tracer.span("prepare.weights", kind=self.spec.weight_model.kind):
            self.weights = self.spec.weight_model.compute(self.graph)
        if self._static and not self.out_of_core:
            with self.tracer.span("prepare.index_build", structure="its"):
                self.c = build_prefix_array(self.graph, self.weights)
        if self.out_of_core:
            with self.tracer.span("prepare.adjacency_spill"):
                directory = self._storage_dir
                if directory is None:
                    self._tmpdir = tempfile.TemporaryDirectory(prefix="graphwalker-")
                    directory = self._tmpdir.name
                directory = Path(directory)
                directory.mkdir(parents=True, exist_ok=True)
                self.graph.nbr.tofile(directory / "nbr.bin")
                self.graph.etime.tofile(directory / "time.bin")
                self.weights.tofile(directory / "w.bin")
                self._disk_nbr = np.memmap(directory / "nbr.bin", dtype=np.int64, mode="r")
                self._disk_time = np.memmap(directory / "time.bin", dtype=np.float64, mode="r")
                self._disk_w = np.memmap(directory / "w.bin", dtype=np.float64, mode="r")

    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        s = int(candidate_size)
        lo = int(self.graph.indptr[v])
        if self.out_of_core:
            # Load the whole neighbor list — GraphWalker's I/O unit.
            d = self.graph.out_degree(v)
            counters.record_io(d * 24)  # dst + time + weight per edge
            w = np.asarray(self._disk_w[lo : lo + s])
            counters.record_scan(s)
            prefix = build_prefix_sums(w)
            r = draw_in_range(rng, 0.0, prefix[s])
            return its_search(prefix, r, 0, s, None)
        if self._static:
            base = lo + v
            total = self.c[base + s]
            r = draw_in_range(rng, 0.0, total)
            return its_search(self.c, r, base, base + s, counters) - base
        # Dynamic weights: rebuild the distribution by scanning candidates
        # (user edge weights, when present, multiply the temporal part).
        t_ref = walker_time if walker_time is not None else float(
            self.graph.etime[lo] if s else 0.0
        )
        d = self.graph.out_degree(v)
        ew = None if self.graph.eweight is None else self.graph.eweight[lo : lo + d]

        def weight_fn(times):
            w = self.spec.weight_model.weight_of_time(times, t_ref)
            return w if ew is None else w * ew[: times.size]

        return full_scan_sample(
            self.weights, s, rng, counters,
            weight_fn=weight_fn,
            times_time_desc=self.graph.etime[lo : lo + d],
        )

    def publish_telemetry(self, registry) -> None:
        registry.gauge(
            "engine.out_of_core", "1 when the adjacency is disk-resident"
        ).set(1 if self.out_of_core else 0)
        registry.gauge(
            "engine.static_sampling", "1 when static weights allow ITS"
        ).set(1 if self._static else 0)

    def memory_report(self) -> MemoryReport:
        report = super().memory_report()
        if self.out_of_core:
            # Disk-resident adjacency is not memory; only CSR offsets stay.
            return report
        if self.weights is not None:
            report.add("weights", self.weights.nbytes)
        if self.c is not None:
            report.add("prefix_sums", self.c.nbytes)
        return report
