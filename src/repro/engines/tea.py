"""The TEA engine (paper Sections 3–4).

Preprocessing (Section 4.2): candidate-edge-set search for every edge,
static weight computation (the Equation 3 rewrite), PAT/HPAT
construction, auxiliary index generation. Runtime (Algorithm 2): O(1)
candidate lookup via the per-edge candidate index, hybrid ITS+alias
sampling on the chosen structure, rejection only for the Dynamic
parameter (node2vec's β).

The ``structure`` knob selects the sampling index, making the paper's
ablations engine configurations:

=============  =============================  =======================
structure      per-step complexity            space
=============  =============================  =======================
``hpat``       O(log log D)  (+O(1) w/ aux)   O(D log D) per vertex
``pat``        O(log(D / trunkSize))          O(D)
``its``        O(log D)                       O(D)
``alias``      O(1)                           O(D²) → SimulatedOOM
=============  =============================  =======================
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import builder
from repro.core.alias_index import DEFAULT_BUDGET_BYTES, FullAliasIndex
from repro.core.weights import WeightModel
from repro.engines.base import Engine
from repro.graph.temporal_graph import TemporalGraph
from repro.telemetry import MemoryReport
from repro.sampling.counters import CostCounters
from repro.walks.spec import WalkSpec

STRUCTURES = ("hpat", "pat", "its", "alias")


class TeaEngine(Engine):
    """TEA with a selectable sampling structure (default HPAT + index)."""

    has_candidate_index = True

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        structure: str = "hpat",
        use_aux_index: bool = True,
        workers: int = 1,
        trunk_size: Optional[int] = None,
        alias_budget_bytes: int = DEFAULT_BUDGET_BYTES,
        index_cache_path: Optional[str] = None,
    ):
        super().__init__(graph, spec)
        if structure not in STRUCTURES:
            raise ValueError(f"structure must be one of {STRUCTURES}, got {structure!r}")
        self.structure = structure
        self.use_aux_index = bool(use_aux_index)
        self.workers = int(workers)
        self.trunk_size = trunk_size
        self.alias_budget_bytes = int(alias_budget_bytes)
        # Optional warm start: a .npz written by repro.core.persist. If
        # the file exists and matches the graph it replaces the build;
        # otherwise the freshly built index is saved there (hpat only).
        self.index_cache_path = index_cache_path
        self.index = None
        self.weights: Optional[np.ndarray] = None
        self.construction_report = None
        suffix = structure if structure != "hpat" else (
            "hpat" if use_aux_index else "hpat-noindex"
        )
        self.name = f"tea-{suffix}"

    def _prepare(self) -> None:
        if self.structure == "alias":
            with self.tracer.span("prepare.candidate_search"):
                self.candidate_sizes = builder.search_candidate_sets(self.graph, self.workers)
            with self.tracer.span("prepare.weights"):
                self.weights = self.spec.weight_model.compute(self.graph)
            with self.tracer.span("prepare.index_build", structure="alias"):
                self.index = FullAliasIndex.build(
                    self.graph, self.weights, budget_bytes=self.alias_budget_bytes
                )
            return
        if self.structure == "hpat" and self.index_cache_path is not None:
            import os

            from repro.core import persist
            from repro.exceptions import GraphFormatError

            if os.path.exists(self.index_cache_path):
                try:
                    self.index, self.candidate_sizes = persist.load_hpat(
                        self.index_cache_path,
                        self.graph,
                        weight_desc=self.spec.weight_model.describe(),
                    )
                    self.weights = self.spec.weight_model.compute(self.graph)
                    return
                except GraphFormatError:
                    pass  # stale cache: rebuild and overwrite below
        pre = builder.preprocess(
            self.graph,
            self.spec.weight_model,
            structure=self.structure,
            with_aux_index=self.use_aux_index,
            workers=self.workers,
            trunk_size=self.trunk_size,
            tracer=self.tracer,
        )
        self.index = pre.index
        self.weights = pre.weights
        self.candidate_sizes = pre.candidate_sizes
        self.construction_report = pre.report
        if self.structure == "hpat" and self.index_cache_path is not None:
            from repro.core import persist

            persist.save_hpat(
                self.index_cache_path,
                self.index,
                self.graph,
                self.candidate_sizes,
                weight_desc=self.spec.weight_model.describe(),
            )

    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        if self.structure == "hpat":
            return self.index.sample(
                v, candidate_size, rng, counters, use_index=self.use_aux_index
            )
        return self.index.sample(v, candidate_size, rng, counters)

    def publish_telemetry(self, registry) -> None:
        registry.gauge("engine.workers", "configured preprocessing workers").set(
            self.workers
        )
        if self.construction_report is not None:
            rep = self.construction_report
            registry.gauge("build.workers", "preprocessing workers").set(rep.workers)
            registry.gauge(
                "build.candidate_search_seconds", "candidate-set search time"
            ).set(rep.candidate_search_seconds)
            registry.gauge("build.weight_seconds", "weight computation time").set(
                rep.weight_seconds
            )
            registry.gauge("build.index_seconds", "PAT/HPAT/ITS build time").set(
                rep.index_build_seconds
            )
            registry.gauge("build.aux_index_seconds", "aux index build time").set(
                rep.aux_index_seconds
            )

    def memory_report(self) -> MemoryReport:
        report = super().memory_report()
        if self.index is None:
            return report
        if hasattr(self.index, "memory_breakdown"):
            for name, nbytes in self.index.memory_breakdown().items():
                report.add(f"index_{name}", nbytes)
        else:
            report.add("index", self.index.nbytes())
        return report
