"""TEA engine with edge/vertex deletion support (paper §4.4 future work).

Wraps :class:`~repro.core.deletions.TombstoneHPAT` in the standard
engine interface so walks and deletions interleave: deleted edges are
never traversed, candidate sets that are fully tombstoned become dead
ends, and everything else behaves exactly like :class:`TeaEngine`.

Reads can also be isolated from the mutation stream: :meth:`pin`
freezes the current deletion epoch and returns a handle whose walks are
bit-identical no matter how many deletions land afterwards — the
mutable-engine half of the streaming subsystem's snapshot-isolation
story (see :mod:`repro.streaming.snapshot` for the append side).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import builder
from repro.core.deletions import TombstoneHPAT, TombstonePin
from repro.engines.base import Engine
from repro.graph.temporal_graph import TemporalGraph
from repro.telemetry import MemoryReport
from repro.walks.spec import WalkSpec


class MutableTeaEngine(Engine):
    """TEA with tombstone deletions and lazy per-vertex rebuilds."""

    has_candidate_index = True
    name = "tea-mutable"

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        rebuild_threshold: float = 0.25,
    ):
        super().__init__(graph, spec)
        self.rebuild_threshold = float(rebuild_threshold)
        self.index: Optional[TombstoneHPAT] = None
        # When set, candidate/sample reads go through this pinned epoch
        # instead of the live index (see MutableEnginePin.run).
        self._pin_index: Optional[TombstonePin] = None

    def _prepare(self) -> None:
        self.candidate_sizes = builder.search_candidate_sets(self.graph)
        weights = self.spec.weight_model.compute(self.graph)
        self.index = TombstoneHPAT(
            self.graph, weights, rebuild_threshold=self.rebuild_threshold
        )

    # -- mutation ------------------------------------------------------------

    def delete_edge(self, u: int, v: int, t: float) -> bool:
        """Delete the edge (u, v, t); walks can no longer traverse it."""
        self.prepare()
        return self.index.delete_edge(u, v, t)

    def delete_vertex(self, v: int) -> int:
        """Delete all of v's out-edges (walks arriving at v dead-end)."""
        self.prepare()
        return self.index.delete_vertex_out_edges(v)

    @property
    def deletion_stats(self):
        self.prepare()
        return self.index.stats

    # -- epoch pinning -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current deletion epoch (one per accepted deletion)."""
        self.prepare()
        return self.index.epoch

    def pin(self) -> "MutableEnginePin":
        """Freeze the current epoch for isolated walk traffic.

        Walks run through the returned handle see exactly the edges
        alive now, at their current weights, however many deletions
        arrive meanwhile — and are bit-identical to running the same
        workload on the engine before those deletions. Release the
        handle (context manager) to let deferred rebuilds proceed.
        """
        self.prepare()
        return MutableEnginePin(self, self.index.pin())

    # -- engine interface --------------------------------------------------------

    def _alive_index(self):
        return self._pin_index if self._pin_index is not None else self.index

    def _initial_candidates(self, v: int) -> int:
        s = super()._initial_candidates(v)
        return s if self._alive_index().alive_count(v, s) > 0 else 0

    def _next_candidates(self, edge_pos, v, t, counters) -> int:
        s = super()._next_candidates(edge_pos, v, t, counters)
        return s if self._alive_index().alive_count(v, s) > 0 else 0

    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        return self._alive_index().sample(v, candidate_size, rng, counters)

    def memory_report(self) -> MemoryReport:
        report = super().memory_report()
        if self.index is not None:
            report.add("tombstone_index", self.index.nbytes())
        return report


class MutableEnginePin:
    """A walkable handle over one frozen deletion epoch.

    Thin adapter: :meth:`run` executes the engine's normal walk
    machinery with candidate/sample reads redirected through the
    underlying :class:`~repro.core.deletions.TombstonePin` for the
    duration of the call.
    """

    def __init__(self, engine: MutableTeaEngine, index_pin: TombstonePin):
        self._engine = engine
        self._index_pin = index_pin

    @property
    def epoch(self) -> int:
        return self._index_pin.epoch

    def run(self, workload, **kwargs):
        """Run a workload against the pinned epoch (engine ``run`` API)."""
        engine = self._engine
        previous = engine._pin_index
        engine._pin_index = self._index_pin
        try:
            return engine.run(workload, **kwargs)
        finally:
            engine._pin_index = previous

    def release(self) -> None:
        self._index_pin.release()

    def __enter__(self) -> "MutableEnginePin":
        return self

    def __exit__(self, *exc) -> None:
        self.release()
