"""TEA engine with edge/vertex deletion support (paper §4.4 future work).

Wraps :class:`~repro.core.deletions.TombstoneHPAT` in the standard
engine interface so walks and deletions interleave: deleted edges are
never traversed, candidate sets that are fully tombstoned become dead
ends, and everything else behaves exactly like :class:`TeaEngine`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import builder
from repro.core.deletions import TombstoneHPAT
from repro.engines.base import Engine
from repro.graph.temporal_graph import TemporalGraph
from repro.telemetry import MemoryReport
from repro.walks.spec import WalkSpec


class MutableTeaEngine(Engine):
    """TEA with tombstone deletions and lazy per-vertex rebuilds."""

    has_candidate_index = True
    name = "tea-mutable"

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        rebuild_threshold: float = 0.25,
    ):
        super().__init__(graph, spec)
        self.rebuild_threshold = float(rebuild_threshold)
        self.index: Optional[TombstoneHPAT] = None

    def _prepare(self) -> None:
        self.candidate_sizes = builder.search_candidate_sets(self.graph)
        weights = self.spec.weight_model.compute(self.graph)
        self.index = TombstoneHPAT(
            self.graph, weights, rebuild_threshold=self.rebuild_threshold
        )

    # -- mutation ------------------------------------------------------------

    def delete_edge(self, u: int, v: int, t: float) -> bool:
        """Delete the edge (u, v, t); walks can no longer traverse it."""
        self.prepare()
        return self.index.delete_edge(u, v, t)

    def delete_vertex(self, v: int) -> int:
        """Delete all of v's out-edges (walks arriving at v dead-end)."""
        self.prepare()
        return self.index.delete_vertex_out_edges(v)

    @property
    def deletion_stats(self):
        self.prepare()
        return self.index.stats

    # -- engine interface --------------------------------------------------------

    def _initial_candidates(self, v: int) -> int:
        s = super()._initial_candidates(v)
        return s if self.index.alive_count(v, s) > 0 else 0

    def _next_candidates(self, edge_pos, v, t, counters) -> int:
        s = super()._next_candidates(edge_pos, v, t, counters)
        return s if self.index.alive_count(v, s) > 0 else 0

    def sample_edge(self, v, candidate_size, walker_time, rng, counters):
        return self.index.sample(v, candidate_size, rng, counters)

    def memory_report(self) -> MemoryReport:
        report = super().memory_report()
        if self.index is not None:
            report.add("tombstone_index", self.index.nbytes())
        return report
