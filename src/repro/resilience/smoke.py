"""Chaos smoke: every resilience failure mode, end to end, in seconds.

``python -m repro.resilience.smoke`` runs the gate the Makefile wires
into ``make test`` (``chaos-smoke``). Each scenario injects one failure
mode through :class:`~repro.resilience.faults.FaultInjector` and
asserts the engine's *contract* under it:

* **crash** — a process worker dies hard (``os._exit``) on one chunk;
  the supervisor requeues it and the run completes **bit-identical** to
  the fault-free run;
* **hang** — a worker sleeps past the chunk timeout; the supervisor
  degrades the backend one level and still produces the bit-identical
  result, recording ``resilience.degraded``;
* **transient I/O** — trunk reads fail with
  :class:`~repro.exceptions.TransientIOError` twice; the retry policy
  backs off, succeeds, and the walk matches the fault-free run;
* **corruption** — a flipped bit in a persisted trunk page is caught by
  checksum-verified reads (:class:`~repro.exceptions.ChecksumError`)
  and located by :func:`~repro.core.outofcore.scrub_store`;
* **rollback** — a fault mid ``apply_batch`` leaves the incremental
  HPAT exactly at its pre-batch state, and the retried batch lands
  identically to a never-faulted ingest;
* **wal_crash** — the durable-ingest crash-consistency gate: the WAL
  tail is truncated at *every* byte offset (every possible
  ``os._exit`` point) and each recovery must walk bit-identically to a
  never-crashed engine holding the same durable batch prefix;
* **torn_append** — an injected ``wal_append`` failure rolls the
  already-applied batch back out of the index, so the accepted set and
  the durable set never diverge, and ``scrub_wal`` stays clean;
* **checkpoint_fault** — a failed ``checkpoint_write`` leaves the
  previous manifest and the untrimmed WAL authoritative; the retried
  checkpoint and subsequent recovery are unaffected.

All injections are seeded/selector-driven — the smoke is deterministic
apart from scheduling, and runs on the ``tiny`` synthetic dataset.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.engines.base import Workload
from repro.exceptions import ChecksumError, TransientIOError
from repro.resilience import FaultInjector, RetryPolicy

#: Chunk timeout for the hang scenario: far above a healthy tiny-graph
#: chunk (~ms), far below the injected hang.
HANG_TIMEOUT = 0.25
HANG_SECONDS = 1.0


def _hops(result):
    return [w.hops for w in result.paths]


def _smoke_graph():
    from repro.graph.datasets import load_dataset

    return load_dataset("tiny", seed=7)


def _smoke_spec():
    from repro.walks.apps import exponential_walk

    return exponential_walk(scale=2.0)


def crash_scenario(verbose: bool) -> dict:
    """(a) Crashed worker: chunks requeued, result bit-identical."""
    from repro.parallel.engine import ParallelBatchTeaEngine

    graph, spec = _smoke_graph(), _smoke_spec()
    workload = Workload(walks_per_vertex=1, max_length=15)

    def engine(injector):
        return ParallelBatchTeaEngine(
            graph, spec, workers=2, chunk_size=16, backend="process",
            retries=2, fault_injector=injector,
        )

    baseline = engine(None).run(workload, seed=0)
    injector = FaultInjector.from_plan({"rules": [
        {"site": "chunk", "kind": "worker_crash",
         "chunks": [1], "attempts": [0]},
    ]})
    chaotic = engine(injector)
    result = chaotic.run(workload, seed=0)
    assert _hops(result) == _hops(baseline), (
        "crash scenario: retried run diverged from the fault-free run"
    )
    retries = chaotic.last_events["chunk_retries"]
    assert retries >= 1, "crash scenario: no chunk was retried"
    return {"crash_chunk_retries": int(retries),
            "crash_final_backend": chaotic.last_backend}


def hang_scenario(verbose: bool) -> dict:
    """(b) Hung worker: timeout trips, backend degrades, result holds."""
    from repro.parallel.engine import ParallelBatchTeaEngine

    graph, spec = _smoke_graph(), _smoke_spec()
    workload = Workload(walks_per_vertex=1, max_length=15)

    def engine(injector):
        return ParallelBatchTeaEngine(
            graph, spec, workers=2, chunk_size=16, backend="thread",
            retries=2, chunk_timeout=HANG_TIMEOUT, fault_injector=injector,
        )

    baseline = engine(None).run(workload, seed=0)
    injector = FaultInjector.from_plan({"rules": [
        {"site": "chunk", "kind": "worker_hang",
         "chunks": [0], "attempts": [0], "seconds": HANG_SECONDS},
    ]})
    chaotic = engine(injector)
    result = chaotic.run(workload, seed=0)
    assert _hops(result) == _hops(baseline), (
        "hang scenario: degraded run diverged from the fault-free run"
    )
    degraded = chaotic.last_events["degraded"]
    assert degraded, "hang scenario: timeout did not degrade the backend"
    metric = result.registry.counter(
        "resilience.degraded",
        "backend degradations (process->thread->serial) this run",
    ).value
    assert metric >= 1, "hang scenario: resilience.degraded not recorded"
    return {"hang_degraded_to": degraded[-1],
            "hang_chunk_retries": int(chaotic.last_events["chunk_retries"])}


def transient_io_scenario(verbose: bool) -> dict:
    """(c) Transient trunk-read errors retried with backoff, then succeed."""
    from repro.engines.tea_outofcore import TeaOutOfCoreEngine

    graph, spec = _smoke_graph(), _smoke_spec()
    workload = Workload(walks_per_vertex=1, max_length=15)

    baseline = TeaOutOfCoreEngine(graph, spec).run(workload, seed=0)
    injector = FaultInjector.from_plan({"rules": [
        {"site": "trunk_read", "kind": "io_error", "max_triggers": 2},
    ]})
    policy = RetryPolicy(max_retries=3, base_delay=0.001, seed=0)
    chaotic = TeaOutOfCoreEngine(
        graph, spec, retry_policy=policy, fault_injector=injector,
    )
    result = chaotic.run(workload, seed=0)
    assert _hops(result) == _hops(baseline), (
        "transient-io scenario: retried run diverged from the fault-free run"
    )
    retries = chaotic.index.store.io_retries
    assert retries >= 1, "transient-io scenario: no retry happened"
    assert injector.total_fired == 2, (
        f"transient-io scenario: expected 2 injected faults, "
        f"got {injector.total_fired}"
    )
    return {"io_retries": int(retries)}


def corruption_scenario(verbose: bool) -> dict:
    """(d) A flipped bit on disk: verified reads raise, scrub locates it."""
    from repro.core.outofcore import TrunkStore, scrub_store
    from repro.engines.tea_outofcore import TeaOutOfCoreEngine

    graph, spec = _smoke_graph(), _smoke_spec()
    workload = Workload(walks_per_vertex=1, max_length=10)
    with tempfile.TemporaryDirectory(prefix="tea-chaos-") as tmp:
        engine = TeaOutOfCoreEngine(graph, spec, storage_dir=tmp)
        engine.run(workload, seed=0)
        engine.index.store.close()

        target = Path(tmp) / "prob.bin"
        flip_offset = min(4096, target.stat().st_size // 2)
        with open(target, "r+b") as fh:
            fh.seek(flip_offset)
            byte = fh.read(1)
            fh.seek(flip_offset)
            fh.write(bytes([byte[0] ^ 0x01]))

        report = scrub_store(tmp)
        assert not report["clean"], "corruption scenario: scrub missed the flip"
        located = [
            r for r in report["corrupt"]
            if r["file"] == "prob.bin" and r.get("page") is not None
            and r["offset_bytes"] <= flip_offset
            < r["offset_bytes"] + 8192
        ]
        assert located, (
            f"corruption scenario: scrub did not locate the corrupt page "
            f"(flip at byte {flip_offset}, report {report['corrupt']})"
        )

        store = TrunkStore(tmp, verify_checksums=True).open()
        try:
            elem = flip_offset // 8
            try:
                store._load("pa", elem, elem + 1)
            except ChecksumError:
                pass
            else:
                raise AssertionError(
                    "corruption scenario: verified read did not raise "
                    "ChecksumError on the corrupt page"
                )
        finally:
            store.close()
        return {"corrupt_pages_located": len(located),
                "scrub_pages_checked": int(report["pages_checked"])}


def rollback_scenario(verbose: bool) -> dict:
    """(e) Mid-batch streaming failure: index rewinds to pre-batch state."""
    from repro.graph.edge_stream import EdgeStream
    from repro.streaming.batch import StreamingTeaEngine

    def batches():
        first = EdgeStream([0, 1, 2, 0], [1, 2, 0, 2], [1.0, 2.0, 3.0, 4.0])
        second = EdgeStream([0, 1, 3, 2], [3, 0, 1, 1], [5.0, 6.0, 7.0, 8.0])
        return first, second

    spec = _smoke_spec()
    first, second = batches()
    engine = StreamingTeaEngine(spec)
    engine.apply_batch(first)
    before = {
        v: tuple(a.copy() for a in vert.edges_desc())
        for v, vert in engine.index.vertices.items()
    }
    edges_before = engine.num_edges

    # Fault on the second vertex group of the second batch (the apply
    # site has already been called 0 times — batch 1 ran uninjected).
    engine.index.fault_injector = FaultInjector.from_plan({"rules": [
        {"site": "streaming_apply", "kind": "io_error", "calls": [1]},
    ]})
    try:
        engine.apply_batch(second)
    except TransientIOError:
        pass
    else:
        raise AssertionError("rollback scenario: injected fault did not fire")

    assert engine.num_edges == edges_before, (
        "rollback scenario: num_edges changed despite the rollback"
    )
    assert set(engine.index.vertices) == set(before), (
        "rollback scenario: vertex set changed despite the rollback"
    )
    for v, (dst, times, weights) in before.items():
        got = engine.index.vertices[v].edges_desc()
        assert (
            np.array_equal(got[0], dst)
            and np.array_equal(got[1], times)
            and np.array_equal(got[2], weights)
        ), f"rollback scenario: vertex {v} state changed despite the rollback"
    rollbacks = engine.index.rollbacks
    assert rollbacks == 1, (
        f"rollback scenario: expected 1 rollback, got {rollbacks}"
    )

    # Retrying the batch after clearing the fault must land exactly as a
    # never-faulted ingest: atomicity means the failure left no residue.
    engine.index.fault_injector = None
    engine.apply_batch(second)
    reference = StreamingTeaEngine(spec)
    ref_first, ref_second = batches()
    reference.apply_batch(ref_first)
    reference.apply_batch(ref_second)
    assert set(engine.index.vertices) == set(reference.index.vertices)
    for v, vert in reference.index.vertices.items():
        ref = vert.edges_desc()
        got = engine.index.vertices[v].edges_desc()
        assert all(np.array_equal(g, r) for g, r in zip(got, ref)), (
            f"rollback scenario: retried ingest diverged at vertex {v}"
        )
    return {"rollbacks": int(rollbacks),
            "edges_after_retry": int(engine.num_edges)}


def _ingest_stream():
    from repro.graph.generators import temporal_powerlaw

    return temporal_powerlaw(
        num_vertices=24, num_edges=96, seed=11, time_horizon=50.0
    )


def wal_crash_scenario(verbose: bool) -> dict:
    """(f) Crash at *every* WAL byte offset: recovery matches the
    never-crashed store built from the same durable prefix, bit for bit.
    """
    import shutil

    from repro.streaming.batch import StreamingTeaEngine
    from repro.streaming.wal import SEGMENT_MAGIC, WriteAheadLog, list_segments

    spec = _smoke_spec()
    stream = _ingest_stream()
    batches = list(stream.batches(24))
    with tempfile.TemporaryDirectory(prefix="tea-wal-") as tmp:
        wal_dir = Path(tmp) / "wal"
        with StreamingTeaEngine(spec, wal_dir=wal_dir) as engine:
            for batch in batches:
                engine.apply_batch(batch, sync=True)
        segments = list_segments(wal_dir)
        assert len(segments) == 1, "scenario assumes a single tiny segment"
        _, seg_path = segments[0]
        data = seg_path.read_bytes()
        # Frame start offsets, so each truncation maps to its durable
        # prefix (number of complete frames strictly before the cut).
        frame_starts = [
            lsn[1] for lsn, _s, _d, _t in WriteAheadLog.replay(wal_dir)
        ]
        starts = sorted({int(b.src[0]) for b in batches})[:8]
        # Reference engines per durable-prefix length, built fresh
        # in memory (never crashed, never recovered).
        references = []
        for k in range(len(batches) + 1):
            ref = StreamingTeaEngine(spec)
            for batch in batches[:k]:
                ref.apply_batch(batch)
            references.append(
                [w.hops for w in ref.run_walks(starts, max_length=12, seed=3)]
            )
        checked = 0
        for cut in range(len(SEGMENT_MAGIC), len(data) + 1):
            crash_dir = Path(tmp) / f"crash-{cut}"
            crash_dir.mkdir()
            (crash_dir / seg_path.name).write_bytes(data[:cut])
            durable = sum(1 for off in frame_starts
                          if off + 8 <= cut and _frame_fits(data, off, cut))
            with StreamingTeaEngine(spec, wal_dir=crash_dir) as recovered:
                assert recovered.recovered_batches == durable, (
                    f"cut {cut}: recovered {recovered.recovered_batches} "
                    f"batches, durable prefix is {durable}"
                )
                got = [w.hops for w in
                       recovered.run_walks(starts, max_length=12, seed=3)]
            assert got == references[durable], (
                f"cut {cut}: post-recovery walks diverged from the "
                f"never-crashed store with {durable} batches"
            )
            checked += 1
            shutil.rmtree(crash_dir)
        return {"wal_crash_offsets_checked": int(checked),
                "wal_crash_batches": len(batches)}


def _frame_fits(data: bytes, off: int, cut: int) -> bool:
    """Whole frame starting at ``off`` survives a truncation at ``cut``."""
    import struct

    if off + 8 > cut:
        return False
    (length,) = struct.unpack_from("<I", data, off)
    return off + 8 + length <= cut


def torn_append_scenario(verbose: bool) -> dict:
    """(g) WAL append fails mid-ingest: the applied batch is rolled back
    out of the index (acceptance == durability), and recovery sees only
    the durable prefix.
    """
    from repro.streaming.batch import StreamingTeaEngine
    from repro.streaming.wal import scrub_wal

    spec = _smoke_spec()
    stream = _ingest_stream()
    batches = list(stream.batches(24))
    with tempfile.TemporaryDirectory(prefix="tea-torn-") as tmp:
        injector = FaultInjector.from_plan({"rules": [
            {"site": "wal_append", "kind": "io_error", "calls": [2]},
        ]})
        engine = StreamingTeaEngine(spec, wal_dir=tmp,
                                    fault_injector=injector)
        engine.apply_batch(batches[0])
        engine.apply_batch(batches[1])
        edges_before = engine.num_edges
        epoch_before = engine.epoch
        try:
            engine.apply_batch(batches[2])
        except TransientIOError:
            pass
        else:
            raise AssertionError("torn-append scenario: fault did not fire")
        assert engine.num_edges == edges_before, (
            "torn-append scenario: undurable batch left edges in the index"
        )
        assert engine.epoch == epoch_before, (
            "torn-append scenario: undurable batch advanced the epoch"
        )
        # Retry (injector exhausted) must land as if nothing happened.
        engine.apply_batch(batches[2])
        walks = [w.hops for w in engine.run_walks(
            engine.active_vertices()[:6], max_length=12, seed=5)]
        engine.close()
        report = scrub_wal(tmp)
        assert report["clean"], f"torn-append scenario: scrub found {report}"
        reference = StreamingTeaEngine(spec)
        for batch in batches[:3]:
            reference.apply_batch(batch)
        ref_walks = [w.hops for w in reference.run_walks(
            reference.active_vertices()[:6], max_length=12, seed=5)]
        assert walks == ref_walks, (
            "torn-append scenario: retried ingest diverged from clean ingest"
        )
        rollbacks = engine.index.rollbacks
        return {"torn_append_rollbacks": int(rollbacks),
                "torn_append_frames": int(report["frames_checked"])}


def checkpoint_fault_scenario(verbose: bool) -> dict:
    """(h) Checkpoint write fails: the old manifest and untrimmed WAL
    stay authoritative, and recovery is unaffected.
    """
    from repro.streaming.batch import StreamingTeaEngine
    from repro.streaming.snapshot import load_manifest

    spec = _smoke_spec()
    stream = _ingest_stream()
    batches = list(stream.batches(24))
    with tempfile.TemporaryDirectory(prefix="tea-ckpt-") as tmp:
        injector = FaultInjector.from_plan({"rules": [
            {"site": "checkpoint_write", "kind": "io_error", "calls": [0]},
        ]})
        engine = StreamingTeaEngine(spec, wal_dir=tmp,
                                    fault_injector=injector)
        for batch in batches[:2]:
            engine.apply_batch(batch)
        try:
            engine.checkpoint()
        except TransientIOError:
            pass
        else:
            raise AssertionError("checkpoint scenario: fault did not fire")
        assert load_manifest(tmp) is None, (
            "checkpoint scenario: failed checkpoint left a manifest"
        )
        # Second attempt succeeds; more ingest rides on top of it.
        manifest = engine.checkpoint()
        for batch in batches[2:]:
            engine.apply_batch(batch)
        walks = [w.hops for w in engine.run_walks(
            engine.active_vertices()[:6], max_length=12, seed=7)]
        engine.close()
        recovered = StreamingTeaEngine(spec, wal_dir=tmp)
        got = [w.hops for w in recovered.run_walks(
            recovered.active_vertices()[:6], max_length=12, seed=7)]
        recovered.close()
        assert got == walks, (
            "checkpoint scenario: recovery through a checkpoint diverged"
        )
        return {"checkpoint_epoch": int(manifest["epoch"]),
                "checkpoint_recovered_batches": int(recovered.recovered_batches)}


SCENARIOS = (
    ("crash", crash_scenario),
    ("hang", hang_scenario),
    ("transient_io", transient_io_scenario),
    ("corruption", corruption_scenario),
    ("rollback", rollback_scenario),
    ("wal_crash", wal_crash_scenario),
    ("torn_append", torn_append_scenario),
    ("checkpoint_fault", checkpoint_fault_scenario),
)


def chaos_smoke(verbose: bool = True) -> dict:
    """Run every scenario; raises ``AssertionError`` on violation."""
    summary: dict = {}
    for name, fn in SCENARIOS:
        summary.update(fn(verbose))
        if verbose:
            print(f"  {name}: ok")
    if verbose:
        print("chaos smoke (tiny)")
        for key, value in summary.items():
            print(f"  {key}: {value}")
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="resilience chaos smoke: inject every failure mode"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    chaos_smoke(verbose=not args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
