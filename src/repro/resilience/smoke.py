"""Chaos smoke: every resilience failure mode, end to end, in seconds.

``python -m repro.resilience.smoke`` runs the gate the Makefile wires
into ``make test`` (``chaos-smoke``). Each scenario injects one failure
mode through :class:`~repro.resilience.faults.FaultInjector` and
asserts the engine's *contract* under it:

* **crash** — a process worker dies hard (``os._exit``) on one chunk;
  the supervisor requeues it and the run completes **bit-identical** to
  the fault-free run;
* **hang** — a worker sleeps past the chunk timeout; the supervisor
  degrades the backend one level and still produces the bit-identical
  result, recording ``resilience.degraded``;
* **transient I/O** — trunk reads fail with
  :class:`~repro.exceptions.TransientIOError` twice; the retry policy
  backs off, succeeds, and the walk matches the fault-free run;
* **corruption** — a flipped bit in a persisted trunk page is caught by
  checksum-verified reads (:class:`~repro.exceptions.ChecksumError`)
  and located by :func:`~repro.core.outofcore.scrub_store`;
* **rollback** — a fault mid ``apply_batch`` leaves the incremental
  HPAT exactly at its pre-batch state, and the retried batch lands
  identically to a never-faulted ingest.

All injections are seeded/selector-driven — the smoke is deterministic
apart from scheduling, and runs on the ``tiny`` synthetic dataset.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.engines.base import Workload
from repro.exceptions import ChecksumError, TransientIOError
from repro.resilience import FaultInjector, RetryPolicy

#: Chunk timeout for the hang scenario: far above a healthy tiny-graph
#: chunk (~ms), far below the injected hang.
HANG_TIMEOUT = 0.25
HANG_SECONDS = 1.0


def _hops(result):
    return [w.hops for w in result.paths]


def _smoke_graph():
    from repro.graph.datasets import load_dataset

    return load_dataset("tiny", seed=7)


def _smoke_spec():
    from repro.walks.apps import exponential_walk

    return exponential_walk(scale=2.0)


def crash_scenario(verbose: bool) -> dict:
    """(a) Crashed worker: chunks requeued, result bit-identical."""
    from repro.parallel.engine import ParallelBatchTeaEngine

    graph, spec = _smoke_graph(), _smoke_spec()
    workload = Workload(walks_per_vertex=1, max_length=15)

    def engine(injector):
        return ParallelBatchTeaEngine(
            graph, spec, workers=2, chunk_size=16, backend="process",
            retries=2, fault_injector=injector,
        )

    baseline = engine(None).run(workload, seed=0)
    injector = FaultInjector.from_plan({"rules": [
        {"site": "chunk", "kind": "worker_crash",
         "chunks": [1], "attempts": [0]},
    ]})
    chaotic = engine(injector)
    result = chaotic.run(workload, seed=0)
    assert _hops(result) == _hops(baseline), (
        "crash scenario: retried run diverged from the fault-free run"
    )
    retries = chaotic.last_events["chunk_retries"]
    assert retries >= 1, "crash scenario: no chunk was retried"
    return {"crash_chunk_retries": int(retries),
            "crash_final_backend": chaotic.last_backend}


def hang_scenario(verbose: bool) -> dict:
    """(b) Hung worker: timeout trips, backend degrades, result holds."""
    from repro.parallel.engine import ParallelBatchTeaEngine

    graph, spec = _smoke_graph(), _smoke_spec()
    workload = Workload(walks_per_vertex=1, max_length=15)

    def engine(injector):
        return ParallelBatchTeaEngine(
            graph, spec, workers=2, chunk_size=16, backend="thread",
            retries=2, chunk_timeout=HANG_TIMEOUT, fault_injector=injector,
        )

    baseline = engine(None).run(workload, seed=0)
    injector = FaultInjector.from_plan({"rules": [
        {"site": "chunk", "kind": "worker_hang",
         "chunks": [0], "attempts": [0], "seconds": HANG_SECONDS},
    ]})
    chaotic = engine(injector)
    result = chaotic.run(workload, seed=0)
    assert _hops(result) == _hops(baseline), (
        "hang scenario: degraded run diverged from the fault-free run"
    )
    degraded = chaotic.last_events["degraded"]
    assert degraded, "hang scenario: timeout did not degrade the backend"
    metric = result.registry.counter(
        "resilience.degraded",
        "backend degradations (process->thread->serial) this run",
    ).value
    assert metric >= 1, "hang scenario: resilience.degraded not recorded"
    return {"hang_degraded_to": degraded[-1],
            "hang_chunk_retries": int(chaotic.last_events["chunk_retries"])}


def transient_io_scenario(verbose: bool) -> dict:
    """(c) Transient trunk-read errors retried with backoff, then succeed."""
    from repro.engines.tea_outofcore import TeaOutOfCoreEngine

    graph, spec = _smoke_graph(), _smoke_spec()
    workload = Workload(walks_per_vertex=1, max_length=15)

    baseline = TeaOutOfCoreEngine(graph, spec).run(workload, seed=0)
    injector = FaultInjector.from_plan({"rules": [
        {"site": "trunk_read", "kind": "io_error", "max_triggers": 2},
    ]})
    policy = RetryPolicy(max_retries=3, base_delay=0.001, seed=0)
    chaotic = TeaOutOfCoreEngine(
        graph, spec, retry_policy=policy, fault_injector=injector,
    )
    result = chaotic.run(workload, seed=0)
    assert _hops(result) == _hops(baseline), (
        "transient-io scenario: retried run diverged from the fault-free run"
    )
    retries = chaotic.index.store.io_retries
    assert retries >= 1, "transient-io scenario: no retry happened"
    assert injector.total_fired == 2, (
        f"transient-io scenario: expected 2 injected faults, "
        f"got {injector.total_fired}"
    )
    return {"io_retries": int(retries)}


def corruption_scenario(verbose: bool) -> dict:
    """(d) A flipped bit on disk: verified reads raise, scrub locates it."""
    from repro.core.outofcore import TrunkStore, scrub_store
    from repro.engines.tea_outofcore import TeaOutOfCoreEngine

    graph, spec = _smoke_graph(), _smoke_spec()
    workload = Workload(walks_per_vertex=1, max_length=10)
    with tempfile.TemporaryDirectory(prefix="tea-chaos-") as tmp:
        engine = TeaOutOfCoreEngine(graph, spec, storage_dir=tmp)
        engine.run(workload, seed=0)
        engine.index.store.close()

        target = Path(tmp) / "prob.bin"
        flip_offset = min(4096, target.stat().st_size // 2)
        with open(target, "r+b") as fh:
            fh.seek(flip_offset)
            byte = fh.read(1)
            fh.seek(flip_offset)
            fh.write(bytes([byte[0] ^ 0x01]))

        report = scrub_store(tmp)
        assert not report["clean"], "corruption scenario: scrub missed the flip"
        located = [
            r for r in report["corrupt"]
            if r["file"] == "prob.bin" and r.get("page") is not None
            and r["offset_bytes"] <= flip_offset
            < r["offset_bytes"] + 8192
        ]
        assert located, (
            f"corruption scenario: scrub did not locate the corrupt page "
            f"(flip at byte {flip_offset}, report {report['corrupt']})"
        )

        store = TrunkStore(tmp, verify_checksums=True).open()
        try:
            elem = flip_offset // 8
            try:
                store._load("pa", elem, elem + 1)
            except ChecksumError:
                pass
            else:
                raise AssertionError(
                    "corruption scenario: verified read did not raise "
                    "ChecksumError on the corrupt page"
                )
        finally:
            store.close()
        return {"corrupt_pages_located": len(located),
                "scrub_pages_checked": int(report["pages_checked"])}


def rollback_scenario(verbose: bool) -> dict:
    """(e) Mid-batch streaming failure: index rewinds to pre-batch state."""
    from repro.graph.edge_stream import EdgeStream
    from repro.streaming.batch import StreamingTeaEngine

    def batches():
        first = EdgeStream([0, 1, 2, 0], [1, 2, 0, 2], [1.0, 2.0, 3.0, 4.0])
        second = EdgeStream([0, 1, 3, 2], [3, 0, 1, 1], [5.0, 6.0, 7.0, 8.0])
        return first, second

    spec = _smoke_spec()
    first, second = batches()
    engine = StreamingTeaEngine(spec)
    engine.apply_batch(first)
    before = {
        v: tuple(a.copy() for a in vert.edges_desc())
        for v, vert in engine.index.vertices.items()
    }
    edges_before = engine.num_edges

    # Fault on the second vertex group of the second batch (the apply
    # site has already been called 0 times — batch 1 ran uninjected).
    engine.index.fault_injector = FaultInjector.from_plan({"rules": [
        {"site": "streaming_apply", "kind": "io_error", "calls": [1]},
    ]})
    try:
        engine.apply_batch(second)
    except TransientIOError:
        pass
    else:
        raise AssertionError("rollback scenario: injected fault did not fire")

    assert engine.num_edges == edges_before, (
        "rollback scenario: num_edges changed despite the rollback"
    )
    assert set(engine.index.vertices) == set(before), (
        "rollback scenario: vertex set changed despite the rollback"
    )
    for v, (dst, times, weights) in before.items():
        got = engine.index.vertices[v].edges_desc()
        assert (
            np.array_equal(got[0], dst)
            and np.array_equal(got[1], times)
            and np.array_equal(got[2], weights)
        ), f"rollback scenario: vertex {v} state changed despite the rollback"
    rollbacks = engine.index.rollbacks
    assert rollbacks == 1, (
        f"rollback scenario: expected 1 rollback, got {rollbacks}"
    )

    # Retrying the batch after clearing the fault must land exactly as a
    # never-faulted ingest: atomicity means the failure left no residue.
    engine.index.fault_injector = None
    engine.apply_batch(second)
    reference = StreamingTeaEngine(spec)
    ref_first, ref_second = batches()
    reference.apply_batch(ref_first)
    reference.apply_batch(ref_second)
    assert set(engine.index.vertices) == set(reference.index.vertices)
    for v, vert in reference.index.vertices.items():
        ref = vert.edges_desc()
        got = engine.index.vertices[v].edges_desc()
        assert all(np.array_equal(g, r) for g, r in zip(got, ref)), (
            f"rollback scenario: retried ingest diverged at vertex {v}"
        )
    return {"rollbacks": int(rollbacks),
            "edges_after_retry": int(engine.num_edges)}


SCENARIOS = (
    ("crash", crash_scenario),
    ("hang", hang_scenario),
    ("transient_io", transient_io_scenario),
    ("corruption", corruption_scenario),
    ("rollback", rollback_scenario),
)


def chaos_smoke(verbose: bool = True) -> dict:
    """Run every scenario; raises ``AssertionError`` on violation."""
    summary: dict = {}
    for name, fn in SCENARIOS:
        summary.update(fn(verbose))
        if verbose:
            print(f"  {name}: ok")
    if verbose:
        print("chaos smoke (tiny)")
        for key, value in summary.items():
            print(f"  {key}: {value}")
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="resilience chaos smoke: inject every failure mode"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    chaos_smoke(verbose=not args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
