"""Deterministic, seeded fault injection for chaos testing.

Every failure mode the resilience layer handles — transient I/O errors,
slow reads, corrupted trunk pages, crashed workers, hung workers — must
be reproducible in CI, or the handling code rots untested. A
:class:`FaultInjector` is built from a declarative *fault plan* and
wired into the risky layers at named **sites**:

``trunk_read``
    Every backing-store load in :class:`~repro.core.outofcore.TrunkStore`
    (both the sampling thread and the prefetch worker route through it).
``prefetch``
    The prefetch worker's batch service loop, before any read is issued.
``chunk``
    The chunk-worker entry point of the parallel executor; keyed by
    ``(chunk_id, attempt)`` so a plan can crash exactly one chunk's
    first attempt and let its retry succeed.
``streaming_apply``
    Per-vertex-group admission inside the incremental HPAT's
    ``apply_batch`` (exercises the atomic-rollback path).
``wal_append``
    The write-ahead log's record append, before any byte is written
    (exercises the apply-then-log rollback: the batch must vanish from
    the index when its durability write fails).
``wal_fsync``
    The WAL's group-commit fsync barrier, before the syscall.
``checkpoint_write``
    Checkpoint + manifest persistence, before the checkpoint file is
    written (a failed checkpoint must leave the previous manifest and
    the untrimmed WAL fully usable).

A plan is JSON (inline, or a file path) of the form::

    {"seed": 7, "rules": [
      {"site": "trunk_read", "kind": "io_error",
       "probability": 1.0, "max_triggers": 2},
      {"site": "chunk", "kind": "worker_crash", "chunks": [1]},
      {"site": "chunk", "kind": "worker_hang", "chunks": [0],
       "seconds": 2.0},
      {"site": "trunk_read", "kind": "corrupt_block", "calls": [5]}
    ]}

Determinism: firing decisions never consult wall clock or global RNG
state. Probabilistic rules hash ``(seed, site, call-or-key, rule)``
with CRC32, explicit selectors (``calls``, ``chunks``/``attempts``)
fire on exact matches, and ``max_triggers`` caps a rule per injector
instance. Sites driven from a single thread (the scalar out-of-core
read path, chunk entry, streaming apply) therefore replay bit-exactly;
sites shared with the prefetch worker are deterministic per thread but
interleave with scheduling.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import FaultPlanError, TransientIOError, WorkerCrashError
from repro.telemetry import events

SITES = ("trunk_read", "prefetch", "chunk", "streaming_apply",
         "wal_append", "wal_fsync", "checkpoint_write")
KINDS = ("io_error", "slow_read", "corrupt_block", "worker_crash", "worker_hang")

#: Default sleep for ``slow_read`` (kept tiny so chaos runs stay fast).
DEFAULT_SLOW_SECONDS = 0.01
#: Default sleep for ``worker_hang`` — long enough to trip any sane
#: chunk timeout, short enough that an abandoned worker drains quickly.
DEFAULT_HANG_SECONDS = 2.0


def _unit_hash(*parts) -> float:
    """Deterministic uniform-ish value in [0, 1) from arbitrary parts.

    CRC32 is XOR-linear, so same-length inputs differing in one
    character (e.g. adjacent seeds) would share their high bits — and
    identical firing patterns at any probability threshold. The
    murmur3 finalizer below breaks that linearity.
    """
    text = "|".join(str(p) for p in parts)
    h = zlib.crc32(text.encode("utf-8"))
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h / 2**32


def _in_forked_child() -> bool:
    return multiprocessing.parent_process() is not None


@dataclass
class FaultRule:
    """One declarative fault: where, what, when.

    Selectors compose as a conjunction: a rule fires only when the site
    matches, the explicit selectors (if given) match, the probability
    hash passes, and ``max_triggers`` is not exhausted.
    """

    site: str
    kind: str
    probability: float = 1.0
    #: Explicit per-site call indices (0-based) this rule fires on.
    calls: Optional[frozenset] = None
    #: ``chunk`` site only: chunk ids / attempt numbers to fire on.
    chunks: Optional[frozenset] = None
    attempts: frozenset = field(default_factory=lambda: frozenset({0}))
    #: Cap on total firings of this rule (``None`` = unbounded).
    max_triggers: Optional[int] = None
    #: Sleep duration for ``slow_read`` / ``worker_hang``.
    seconds: Optional[float] = None
    triggered: int = 0

    def __post_init__(self):
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.seconds is None:
            self.seconds = (
                DEFAULT_HANG_SECONDS if self.kind == "worker_hang"
                else DEFAULT_SLOW_SECONDS
            )

    def matches(self, seed: int, rule_index: int, site: str,
                call_index: int, key) -> bool:
        if site != self.site:
            return False
        if self.max_triggers is not None and self.triggered >= self.max_triggers:
            return False
        if self.chunks is not None:
            if not (isinstance(key, tuple) and len(key) == 2):
                return False
            chunk_id, attempt = key
            if chunk_id not in self.chunks or attempt not in self.attempts:
                return False
        if self.calls is not None and call_index not in self.calls:
            return False
        if self.probability >= 1.0:
            return True
        return _unit_hash(seed, site, call_index, key, rule_index) < self.probability

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultRule":
        if not isinstance(raw, dict):
            raise FaultPlanError(f"fault rule must be an object, got {raw!r}")
        known = {"site", "kind", "probability", "calls", "chunks",
                 "attempts", "max_triggers", "seconds"}
        unknown = set(raw) - known
        if unknown:
            raise FaultPlanError(f"unknown fault rule fields: {sorted(unknown)}")
        if "site" not in raw or "kind" not in raw:
            raise FaultPlanError("fault rule needs both 'site' and 'kind'")
        kwargs = dict(raw)
        for name in ("calls", "chunks"):
            if kwargs.get(name) is not None:
                kwargs[name] = frozenset(int(x) for x in kwargs[name])
        if kwargs.get("attempts") is not None:
            kwargs["attempts"] = frozenset(int(x) for x in kwargs["attempts"])
        else:
            kwargs.pop("attempts", None)
        return cls(**kwargs)


class FaultInjector:
    """Seeded injector evaluating a fault plan at instrumented sites.

    Thread-safe: the per-site call counters and trigger counts are
    guarded by a lock (the trunk-read site is polled from both the
    sampling thread and the prefetch worker). Pickling drops the lock
    and rebuilds it, so an injector can ride a
    :class:`~repro.parallel.worker.WorkerContext` into forked children.
    """

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0):
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        self._calls: Dict[str, int] = {}
        self.fired: Dict[Tuple[str, str], int] = {}
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_plan(cls, plan) -> "FaultInjector":
        """Build from a plan dict, a JSON string, or a JSON file path."""
        if isinstance(plan, (str, os.PathLike)):
            text = str(plan)
            if not text.lstrip().startswith("{"):
                path = Path(text)
                if not path.exists():
                    raise FaultPlanError(f"fault plan file not found: {text}")
                text = path.read_text()
            try:
                plan = json.loads(text)
            except ValueError as exc:
                raise FaultPlanError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(plan, dict):
            raise FaultPlanError(f"fault plan must be a JSON object, got {plan!r}")
        unknown = set(plan) - {"seed", "rules"}
        if unknown:
            raise FaultPlanError(f"unknown fault plan fields: {sorted(unknown)}")
        rules = [FaultRule.from_dict(r) for r in plan.get("rules", [])]
        return cls(rules, seed=int(plan.get("seed", 0)))

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- evaluation --------------------------------------------------------

    def check(self, site: str, key=None) -> Optional[int]:
        """Evaluate one instrumented call at ``site``.

        Side effects in order: ``slow_read``/``worker_hang`` sleep,
        ``io_error`` raises :class:`TransientIOError`, ``worker_crash``
        kills a forked child with ``os._exit`` (a *real* crash, so the
        pool breaks exactly as in production) or raises
        :class:`WorkerCrashError` in-process. Returns a deterministic
        corruption token when a ``corrupt_block`` rule fired (the
        caller flips the bit it addresses), else ``None``.
        """
        with self._lock:
            call_index = self._calls.get(site, 0)
            self._calls[site] = call_index + 1
            hits: List[FaultRule] = []
            for rule_index, rule in enumerate(self.rules):
                if rule.matches(self.seed, rule_index, site, call_index, key):
                    rule.triggered += 1
                    self.fired[(site, rule.kind)] = (
                        self.fired.get((site, rule.kind), 0) + 1
                    )
                    hits.append(rule)
        # Emitted after the lock is released: the event log is not
        # shared with the injector's lock discipline, and a slow sink
        # must never extend the critical section.
        for rule in hits:
            events.emit(
                "fault.injected", site=site, fault_kind=rule.kind,
                call_index=int(call_index),
                key=None if key is None else str(key),
            )
        corrupt_token: Optional[int] = None
        raise_io = False
        crash = False
        for rule in hits:
            if rule.kind in ("slow_read", "worker_hang"):
                time.sleep(rule.seconds)
            elif rule.kind == "corrupt_block":
                corrupt_token = zlib.crc32(
                    f"{self.seed}|{site}|{call_index}|corrupt".encode()
                )
            elif rule.kind == "io_error":
                raise_io = True
            elif rule.kind == "worker_crash":
                crash = True
        if crash:
            if _in_forked_child():
                os._exit(13)
            raise WorkerCrashError(
                f"injected worker crash at site {site!r} (key={key!r})",
                chunk_id=key[0] if isinstance(key, tuple) and key else None,
            )
        if raise_io:
            raise TransientIOError(
                f"injected transient I/O error at site {site!r} "
                f"(call {call_index}, key={key!r})"
            )
        return corrupt_token

    # -- reporting ---------------------------------------------------------

    @property
    def total_fired(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def snapshot(self) -> Dict[str, int]:
        """``site.kind -> count`` of fired faults (stable key order)."""
        with self._lock:
            return {
                f"{site}.{kind}": n
                for (site, kind), n in sorted(self.fired.items())
            }

    def publish(self, registry) -> None:
        registry.counter(
            "resilience.faults_injected", "faults fired by the injector"
        ).inc(self.total_fired)


def load_fault_injector(plan) -> Optional[FaultInjector]:
    """CLI convenience: ``None`` passes through, anything else parses."""
    if plan is None:
        return None
    return FaultInjector.from_plan(plan)
