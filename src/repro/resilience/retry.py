"""Retry with exception classification, budget, and seeded backoff.

The out-of-core read path is the only layer of the engine that touches
hardware which fails transiently (disk, network filesystems). A
:class:`RetryPolicy` wraps those reads: transient failures are retried
under a budget with exponential backoff and *seeded* jitter — the
jitter sequence is reproducible, like every other random stream in the
library — while fatal errors (corruption, programming errors) surface
immediately.

Classification is deliberately conservative: only
:class:`~repro.exceptions.TransientIOError` and :class:`OSError` with a
known-transient ``errno`` are retried. A
:class:`~repro.exceptions.ChecksumError` is *never* transient —
re-reading a corrupt page returns the same corrupt bytes.
"""

from __future__ import annotations

import errno
import threading
import time
from typing import Callable, Optional

import numpy as np

from repro.exceptions import TransientIOError

#: ``errno`` values worth retrying: interrupted, busy, out-of-resources,
#: and plain I/O errors (the classic flaky-disk signature).
TRANSIENT_ERRNOS = frozenset({
    errno.EIO, errno.EAGAIN, errno.EBUSY, errno.EINTR,
    errno.ENOBUFS, errno.ETIMEDOUT,
})


def is_transient(exc: BaseException) -> bool:
    """Default exception classifier: retry-worthy or fatal."""
    if isinstance(exc, TransientIOError):
        return True
    if isinstance(exc, OSError):
        return exc.errno in TRANSIENT_ERRNOS
    return False


class RetryPolicy:
    """Bounded retry: classify, back off with seeded jitter, give up.

    Parameters
    ----------
    max_retries:
        Additional attempts after the first failure (0 disables retry).
    base_delay / multiplier / max_delay:
        Exponential backoff: attempt ``k`` sleeps
        ``min(max_delay, base_delay * multiplier**k)`` scaled by jitter.
    jitter:
        Uniform multiplicative jitter fraction in ``[0, jitter]`` drawn
        from a generator seeded with ``seed`` (deterministic sequence).
    classify:
        Predicate deciding whether an exception is transient.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(
        self,
        max_retries: int = 3,
        base_delay: float = 0.005,
        multiplier: float = 2.0,
        max_delay: float = 0.5,
        jitter: float = 0.25,
        seed: int = 0,
        classify: Callable[[BaseException], bool] = is_transient,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = int(max_retries)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.classify = classify
        self.sleep = sleep
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter <= 0:
            return base
        with self._lock:
            u = float(self._rng.random())
        return base * (1.0 + self.jitter * u)

    def call(self, fn: Callable, *args,
             on_retry: Optional[Callable[[int, BaseException], None]] = None,
             **kwargs):
        """Invoke ``fn`` with bounded retry on transient failures.

        ``on_retry(attempt, exc)`` fires before each backoff sleep —
        the store uses it to count ``resilience.io_retries``. The final
        failure (budget exhausted or fatal class) propagates unchanged.
        """
        attempt = 0
        while True:
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:
                if attempt >= self.max_retries or not self.classify(exc):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(self.delay(attempt))
                attempt += 1
