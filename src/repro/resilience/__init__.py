"""Resilience layer: fault injection, retry policies, chaos harness.

Long-running walk systems must degrade gracefully — GraphWalker restarts
out-of-core walks, KnightKing tolerates stragglers — and this package
gives the reproduction the same posture, testably:

* :mod:`repro.resilience.faults` — a seeded, deterministic
  :class:`FaultInjector` driven by declarative JSON fault plans, hooked
  into trunk-store reads, prefetch admission, chunk-worker entry, and
  streaming batch apply;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` with
  transient/fatal classification, a retry budget, and exponential
  backoff with seeded jitter (used by the trunk store);
* :mod:`repro.resilience.smoke` — the ``make chaos-smoke`` harness
  proving the five failure modes end to end (crash retry, hang
  degradation, transient-I/O retry, checksum rejection, streaming
  rollback).

See ``docs/robustness.md`` for failure-mode semantics and the fault
plan format.
"""

from repro.resilience.faults import (
    DEFAULT_HANG_SECONDS,
    DEFAULT_SLOW_SECONDS,
    KINDS,
    SITES,
    FaultInjector,
    FaultRule,
    load_fault_injector,
)
from repro.resilience.retry import TRANSIENT_ERRNOS, RetryPolicy, is_transient

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_SLOW_SECONDS",
    "FaultInjector",
    "FaultRule",
    "KINDS",
    "RetryPolicy",
    "SITES",
    "TRANSIENT_ERRNOS",
    "is_transient",
    "load_fault_injector",
]
