"""Exception hierarchy for the TEA reproduction.

All library errors derive from :class:`TeaError` so callers can catch one
type. :class:`SimulatedOOM` deserves a note: the paper's Figure 12 reports
"OOM" for the full alias-method baseline on every dataset but the smallest,
because materialising one alias table per (vertex, candidate-set) pair costs
O(sum_v d_v^2) space. We reproduce that behaviour by *accounting* for the
bytes a structure would need before building it and raising
:class:`SimulatedOOM` when the configured budget is exceeded, instead of
actually exhausting the machine.
"""

from __future__ import annotations


class TeaError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(TeaError):
    """An edge stream or edge-list file is structurally invalid."""


class EmptyCandidateSetError(TeaError):
    """A sampler was asked to sample from an empty candidate edge set.

    Engines never raise this during a walk (they terminate the walk
    instead); it guards direct misuse of the sampler APIs.
    """


class SimulatedOOM(TeaError):
    """A data structure would exceed the configured memory budget.

    Attributes
    ----------
    required_bytes:
        Bytes the structure would need.
    budget_bytes:
        The configured budget it exceeded.
    """

    def __init__(self, required_bytes: int, budget_bytes: int, what: str = "structure"):
        self.required_bytes = int(required_bytes)
        self.budget_bytes = int(budget_bytes)
        self.what = what
        super().__init__(
            f"{what} needs {required_bytes:,} bytes but the memory budget "
            f"is {budget_bytes:,} bytes (simulated OOM)"
        )


class NotSupportedError(TeaError):
    """Operation outside the supported scope (mirrors paper section 4.4).

    The paper's engine supports edge/vertex *additions* only; deletions and
    in-place edge mutation raise this error.
    """


class SamplingBudgetExceeded(TeaError):
    """A rejection sampler exceeded its trial cap.

    Rejection sampling on exponential temporal weights can need an enormous
    number of trials (the phenomenon motivating the paper). Baseline engines
    cap trials to keep experiments bounded; by default they fall back to a
    full scan, but the strict mode raises this instead.
    """


class TransientIOError(TeaError):
    """A backing-store read failed in a way worth retrying.

    Raised for transient disk faults (and by the fault injector's
    ``io_error`` kind). :class:`repro.resilience.retry.RetryPolicy`
    classifies this — and :class:`OSError` with a transient ``errno`` —
    as retryable; everything else is fatal on first occurrence.
    """


class ChecksumError(TeaError):
    """A persisted trunk page failed its CRC32 integrity check.

    Attributes
    ----------
    path:
        The store file holding the corrupt page.
    page:
        Zero-based page index within that file.
    expected / actual:
        The stored and recomputed CRC32 values (``None`` when unknown,
        e.g. a missing checksum manifest).
    """

    def __init__(self, message: str, path=None, page=None,
                 expected=None, actual=None):
        self.path = str(path) if path is not None else None
        self.page = page
        self.expected = expected
        self.actual = actual
        super().__init__(message)


class EpochRetiredError(TeaError):
    """A pinned streaming epoch has been evicted from the retention window.

    The streaming engine keeps the newest ``retain_epochs`` views alive;
    a reader that pinned an older epoch must re-pin the current one.
    """


class WalCorruptionError(TeaError):
    """A write-ahead log is damaged beyond the torn-tail repair rule.

    A bad frame at the physical end of the *last* segment is an expected
    crash artifact and is silently truncated on open. A bad frame
    anywhere else — mid-segment, or in a segment that has a successor —
    means bytes the log previously promised durable are gone, and replay
    refuses to guess.

    Attributes
    ----------
    path:
        The segment file containing the unreadable frame.
    offset:
        Byte offset of the frame within that segment.
    """

    def __init__(self, message: str, path=None, offset=None):
        self.path = str(path) if path is not None else None
        self.offset = offset
        super().__init__(message)


class WorkerCrashError(TeaError):
    """A parallel chunk worker crashed (or hung) past its retry budget.

    Attributes
    ----------
    chunk_id:
        The chunk whose execution could not be completed.
    attempts:
        Attempts made before giving up.
    """

    def __init__(self, message: str, chunk_id=None, attempts=None):
        self.chunk_id = chunk_id
        self.attempts = attempts
        super().__init__(message)


class FaultPlanError(TeaError):
    """A declarative fault plan is malformed (unknown site/kind, bad JSON)."""


class ServeError(TeaError):
    """A serving request is invalid or cannot be completed.

    Attributes
    ----------
    status:
        The HTTP status code the daemon maps this error to (400 for
        malformed requests, 429 for admission rejection, 503 for a
        server that is shutting down).
    """

    def __init__(self, message: str, status: int = 400):
        self.status = int(status)
        super().__init__(message)
