"""Inverse transform sampling over a candidate-set prefix.

The pure-ITS strategy of the paper's Figure 12 ablation: per vertex we
keep one prefix-sum array ``C`` over the static temporal weights (time-
descending edge order), and a step over candidate set of size ``s`` draws
``r ∈ (0, C[s]]`` followed by an O(log s) binary search. No trunk
structure, minimal memory — the space/time trade-off PAT improves on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import EmptyCandidateSetError
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search


class ITSSampler:
    """ITS over one vertex's weight prefix (flat-array friendly).

    Engines keep the per-vertex ``C`` arrays concatenated edge-aligned;
    this class wraps the slice arithmetic for a single vertex so the code
    reads like the paper's description.
    """

    __slots__ = ("prefix",)

    def __init__(self, weights_time_desc: np.ndarray):
        self.prefix = build_prefix_sums(weights_time_desc)

    def sample(
        self,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Sample an edge index in ``[0, candidate_size)`` ∝ its weight."""
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError("ITS over empty candidate set")
        total = self.prefix[s]
        r = draw_in_range(rng, 0.0, total)
        return its_search(self.prefix, r, 0, s, counters)

    def candidate_weight(self, candidate_size: int) -> float:
        return float(self.prefix[candidate_size])

    def nbytes(self) -> int:
        return int(self.prefix.nbytes)
