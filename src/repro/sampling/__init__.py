"""Monte Carlo sampling primitives (paper Section 2.2).

Three classic methods — inverse transform sampling (ITS), the alias
method, and rejection sampling — plus the full-scan strategy GraphWalker
uses, all instrumented through :class:`~repro.sampling.counters.CostCounters`
so experiments can report the machine-independent "edges evaluated per
step" metric of the paper's Figure 2.
"""

from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import build_prefix_sums, its_search
from repro.sampling.its import ITSSampler
from repro.sampling.alias import (
    AliasTable,
    build_alias_arrays,
    build_alias_arrays_batch,
    alias_draw,
)
from repro.sampling.rejection import RejectionSampler
from repro.sampling.fullscan import full_scan_sample

__all__ = [
    "CostCounters",
    "build_prefix_sums",
    "its_search",
    "ITSSampler",
    "AliasTable",
    "build_alias_arrays",
    "build_alias_arrays_batch",
    "alias_draw",
    "RejectionSampler",
    "full_scan_sample",
]
