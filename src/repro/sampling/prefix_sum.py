"""Prefix-sum (CDF) arrays and instrumented binary search.

Inverse transform sampling stores the cumulative distribution
``C[i] = sum_{j<=i} w_j`` and answers a draw ``r ∈ (0, C[k]]`` with the
smallest index whose prefix exceeds r (paper Section 2.2). The search here
is hand-rolled rather than ``np.searchsorted`` so each probe can be
counted — probe counts are the paper's sampling-cost model for ITS
(O(log D) per step).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sampling.counters import CostCounters


def build_prefix_sums(weights: np.ndarray) -> np.ndarray:
    """Return ``C`` with ``C[0] = 0`` and ``C[i] = w_0 + ... + w_{i-1}``.

    Length ``len(weights) + 1`` so that the total weight of any contiguous
    block ``[a, b)`` is ``C[b] - C[a]`` — the identity PAT and HPAT use to
    turn trunk selection into pure lookups.
    """
    weights = np.asarray(weights, dtype=np.float64)
    out = np.empty(weights.size + 1, dtype=np.float64)
    out[0] = 0.0
    np.cumsum(weights, out=out[1:])
    return out


def its_search(
    prefix: np.ndarray,
    r: float,
    lo: int = 0,
    hi: Optional[int] = None,
    counters: Optional[CostCounters] = None,
) -> int:
    """Smallest ``k`` in ``[lo, hi)`` with ``prefix[k] < r <= prefix[k+1]``.

    ``prefix`` is a prefix-sum array as built by :func:`build_prefix_sums`
    (or any non-decreasing array with one more entry than there are items).
    ``r`` must lie in ``(prefix[lo], prefix[hi]]`` — i.e. be a valid ITS
    draw over items ``lo..hi-1``. Each halving probe is recorded on
    ``counters`` when given.
    """
    if hi is None:
        hi = prefix.size - 1
    a, b = int(lo), int(hi)
    if a >= b:
        raise ValueError("its_search over empty range")
    while b - a > 1:
        mid = (a + b) // 2
        if counters is not None:
            counters.record_probe()
        if prefix[mid] < r:
            a = mid
        else:
            b = mid
    if counters is not None:
        counters.record_probe()
    return a


def draw_in_range(rng: np.random.Generator, lo: float, hi: float) -> float:
    """A draw in the half-open interval ``(lo, hi]`` (ITS convention).

    Uses ``hi - U * (hi - lo)`` with ``U ∈ [0, 1)`` so the upper endpoint
    is reachable and the lower excluded, matching the strict inequality in
    the paper's ITS definition (``C[k-1] < r <= C[k]``).
    """
    return hi - rng.random() * (hi - lo)
