"""Rejection sampling with a max-weight envelope (KnightKing's strategy).

A trial draws a candidate uniformly and accepts it with probability
``w / w_max`` (paper Section 2.2, Figure 3d). The expected trial count is
``s * w_max / sum(w)`` — tiny for flat weights, catastrophic for the
exponential temporal weights of temporal walks (Section 3.1's observation:
up to ``D * exp(D) / sum exp(j)`` trials). That blow-up is the phenomenon
motivating TEA, and reproducing it faithfully requires a trial cap so
experiments stay bounded: after ``max_trials`` the sampler falls back to
one full scan (cost-accounted), or raises if ``strict``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import EmptyCandidateSetError, SamplingBudgetExceeded
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search

DEFAULT_MAX_TRIALS = 1_000_000


class RejectionSampler:
    """Rejection sampling over a vertex's time-descending weight array.

    Because candidate sets are prefixes and the standard temporal weights
    (linear rank, exponential time) are non-increasing along the
    time-descending order, the envelope max over any prefix is a
    prefix-max; we precompute it so the sampler is O(1) per trial like the
    real system (KnightKing keeps per-vertex maxima).
    """

    __slots__ = ("weights", "prefix_max", "max_trials", "strict")

    def __init__(
        self,
        weights_time_desc: np.ndarray,
        max_trials: int = DEFAULT_MAX_TRIALS,
        strict: bool = False,
    ):
        self.weights = np.asarray(weights_time_desc, dtype=np.float64)
        self.prefix_max = np.maximum.accumulate(self.weights) if self.weights.size else self.weights
        self.max_trials = int(max_trials)
        self.strict = bool(strict)

    def sample(
        self,
        candidate_size: int,
        rng: np.random.Generator,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Sample an index in ``[0, candidate_size)`` ∝ weight."""
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError("rejection sampling over empty candidate set")
        w_max = float(self.prefix_max[s - 1])
        if w_max <= 0.0:
            raise EmptyCandidateSetError("candidate set has zero total weight")
        for _ in range(self.max_trials):
            j = int(rng.integers(0, s))
            accept = rng.random() * w_max < self.weights[j]
            if counters is not None:
                counters.record_trial(accept)
            if accept:
                return j
        if self.strict:
            raise SamplingBudgetExceeded(
                f"no acceptance after {self.max_trials} trials "
                f"(candidate size {s}, envelope {w_max:g})"
            )
        # Bounded fallback: one exact full-scan draw, cost-accounted.
        if counters is not None:
            counters.record_scan(s)
        prefix = build_prefix_sums(self.weights[:s])
        r = draw_in_range(rng, 0.0, prefix[s])
        return its_search(prefix, r, 0, s, None)

    def expected_trials(self, candidate_size: int) -> float:
        """Analytic expected trial count ``s * w_max / sum(w)`` for a prefix."""
        s = int(candidate_size)
        if s <= 0:
            raise EmptyCandidateSetError("empty candidate set")
        total = float(self.weights[:s].sum())
        if total <= 0:
            return float("inf")
        return s * float(self.prefix_max[s - 1]) / total

    def nbytes(self) -> int:
        return int(self.weights.nbytes + self.prefix_max.nbytes)
