"""Walker/Vose alias tables, including a batched lock-step builder.

The alias method (paper Section 2.2) splits each item's probability mass
into pieces packed into ``n`` unit *trunk cells*, at most two pieces per
cell, so a draw is: pick a cell uniformly, then pick between its two
pieces — O(1). Construction is O(n) (Vose's algorithm).

TEA builds *many small* alias tables — one per PAT/HPAT trunk, totalling
O(|E| log D) entries. A per-table Python loop would dominate preprocessing
time, so :func:`build_alias_arrays_batch` constructs every equal-width
table of one HPAT level simultaneously: the small/large worklists of
Vose's algorithm are advanced in lock step across all rows with vectorised
numpy operations. The loop count is O(width) regardless of how many tables
are built, which makes level construction O(total entries) array work —
the Python-world analogue of the paper's parallel lock-free construction
(Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sampling.counters import CostCounters


def build_alias_arrays(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vose construction for a single table.

    Returns ``(prob, alias)``: cell ``i`` keeps item ``i`` with probability
    ``prob[i]`` and item ``alias[i]`` otherwise. Weights must be
    non-negative with a positive sum.
    """
    w = np.asarray(weights, dtype=np.float64)
    n = w.size
    if n == 0:
        raise ValueError("cannot build alias table for zero items")
    total = float(w.sum())
    if not (total > 0.0):
        raise ValueError("weights must have positive sum")
    q = list(w * (n / total))
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    small = [i for i in range(n) if q[i] < 1.0]
    large = [i for i in range(n) if q[i] >= 1.0]
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = q[s]
        alias[s] = l
        q[l] -= 1.0 - q[s]
        if q[l] < 1.0:
            small.append(l)
        else:
            large.append(l)
    # Remaining entries are numerically 1 (float drift); leave prob=1.
    return prob, alias


def build_alias_arrays_batch(weights_2d: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vose construction for ``T`` tables of equal width ``w`` at once.

    ``weights_2d`` has shape ``(T, w)``; rows with zero total are invalid.
    Returns ``(prob, alias)`` of the same shape. The algorithm runs Vose's
    small/large pairing for all rows in lock step: every iteration pops one
    small and one large cell *per active row* using vectorised gathers, so
    the Python-level loop executes at most ``w`` times however many tables
    are being built.
    """
    q = np.asarray(weights_2d, dtype=np.float64)
    if q.ndim != 2:
        raise ValueError("weights_2d must be 2-D (tables, width)")
    T, w = q.shape
    if w == 0:
        raise ValueError("zero-width alias tables are invalid")
    totals = q.sum(axis=1)
    if np.any(totals <= 0.0):
        raise ValueError("every table needs a positive weight sum")
    if w == 1:
        return np.ones((T, 1)), np.zeros((T, 1), dtype=np.int64)
    if T < w:
        # Few wide tables: the lock-step loop (w iterations) would cost
        # more than per-row O(w) construction. Typical for the top HPAT
        # levels, where only the highest-degree hubs have trunks.
        prob = np.empty((T, w), dtype=np.float64)
        alias = np.empty((T, w), dtype=np.int64)
        for i in range(T):
            prob[i], alias[i] = build_alias_arrays(q[i])
        return prob, alias
    q = q * (w / totals)[:, None]
    prob = np.ones((T, w), dtype=np.float64)
    alias = np.tile(np.arange(w, dtype=np.int64), (T, 1))

    # Per-row worklists, encoded as index stacks. stack[r, :tops[r]] holds
    # the pending cell indices for row r.
    is_small = q < 1.0
    small_stack = np.empty((T, w), dtype=np.int64)
    large_stack = np.empty((T, w), dtype=np.int64)
    small_top = np.zeros(T, dtype=np.int64)
    large_top = np.zeros(T, dtype=np.int64)
    cols = np.arange(w, dtype=np.int64)
    # Vectorised stack initialisation: positions of smalls/larges per row.
    small_counts = is_small.sum(axis=1)
    order = np.argsort(~is_small, axis=1, kind="stable")  # smalls first
    small_top[:] = small_counts
    large_top[:] = w - small_counts
    small_stack[:, :] = order  # first small_counts entries are smalls
    # Larges are order[:, small_counts:]; scatter them into the contiguous
    # front region of large_stack without a Python per-row loop.
    large_positions = order.copy()
    row_idx = np.repeat(np.arange(T), w).reshape(T, w)
    within = cols[None, :].repeat(T, axis=0)
    large_mask = within >= small_counts[:, None]
    flat_rows = row_idx[large_mask]
    flat_slot = (within[large_mask] - small_counts[flat_rows])
    large_stack[flat_rows, flat_slot] = large_positions[large_mask]

    active = (small_top > 0) & (large_top > 0)
    rows = np.flatnonzero(active)
    # Each iteration finalises one small cell per active row; a row has at
    # most w-1 such finalisations, so the loop is bounded by w-1.
    for _ in range(w - 1):
        if rows.size == 0:
            break
        st = small_top[rows] - 1
        s = small_stack[rows, st]
        lt = large_top[rows] - 1
        l = large_stack[rows, lt]
        qs = q[rows, s]
        prob[rows, s] = qs
        alias[rows, s] = l
        ql = q[rows, l] - (1.0 - qs)
        q[rows, l] = ql
        small_top[rows] = st
        went_small = ql < 1.0
        # Large cell either stays on the large stack (top unchanged — it is
        # already at position lt) or moves to the small stack.
        move = np.flatnonzero(went_small)
        if move.size:
            mrows = rows[move]
            large_top[mrows] = lt[move]
            stop = small_top[mrows]
            small_stack[mrows, stop] = l[move]
            small_top[mrows] = stop + 1
        keep = np.flatnonzero(~went_small)
        # For kept larges nothing changes: top still points above cell l.
        del keep
        still = (small_top[rows] > 0) & (large_top[rows] > 0)
        rows = rows[still]
    return prob, alias


def alias_draw(
    prob: np.ndarray,
    alias: np.ndarray,
    rng: np.random.Generator,
    lo: int = 0,
    hi: Optional[int] = None,
    counters: Optional[CostCounters] = None,
) -> int:
    """One O(1) draw from the table slice ``[lo, hi)`` of flat arrays.

    PAT/HPAT store many tables back to back in flat arrays; ``lo``/``hi``
    select one. Returns an index in ``[0, hi - lo)`` local to the table.
    """
    if hi is None:
        hi = prob.size
    n = hi - lo
    cell = int(rng.integers(0, n))
    if counters is not None:
        counters.record_alias_draw()
    if rng.random() < prob[lo + cell]:
        return cell
    return int(alias[lo + cell])


@dataclass
class AliasTable:
    """A standalone alias table over ``n`` items (weights need not be normalised)."""

    prob: np.ndarray
    alias: np.ndarray
    total_weight: float

    @classmethod
    def from_weights(cls, weights) -> "AliasTable":
        w = np.asarray(weights, dtype=np.float64)
        prob, alias = build_alias_arrays(w)
        return cls(prob=prob, alias=alias, total_weight=float(w.sum()))

    def __len__(self) -> int:
        return int(self.prob.size)

    def draw(self, rng: np.random.Generator, counters: Optional[CostCounters] = None) -> int:
        return alias_draw(self.prob, self.alias, rng, counters=counters)

    def nbytes(self) -> int:
        return int(self.prob.nbytes + self.alias.nbytes)
