"""Cost accounting shared by every sampler and engine.

The paper's headline efficiency metric (Figure 2) is the *average sampling
cost*: edges evaluated per sampling step. Wall-clock comparisons between a
C++ engine and pure Python are meaningless, so every sampler in this
library increments a :class:`CostCounters` as it works, and benchmarks
report both wall time and this model. Conventions:

* full-scan: +|Γ| edge evaluations per step (it touches every candidate);
* rejection: +1 per trial (each trial evaluates one edge's weight);
* ITS binary search: +1 per probe (each probe compares one prefix entry);
* PAT/HPAT: +1 per trunk-boundary probe, +1 for the in-trunk alias draw.

I/O counters serve the out-of-core experiments (Figure 14): a *block* is
one disk read of :data:`BLOCK_BYTES` bytes.

**Thread safety.** A ``CostCounters`` is plain mutable state with
read-modify-write increments; sharing one instance across concurrently
executing walkers silently loses updates (``+=`` is not atomic once the
GIL yields between the load and the store, and free-threaded builds
drop even that accident of protection). Every parallel path in this
repo therefore gives each worker its *own* counters and folds them with
:meth:`CostCounters.merge` (or :meth:`CostCounters.merge_all` over a
whole worker set) at the end — the distributed engine's per-worker
counters, the parallel walk executor's per-chunk counters
(:mod:`repro.parallel`), and the telemetry registry's merge path
(:meth:`publish` into per-worker
:class:`~repro.telemetry.MetricsRegistry` instances) all follow this
discipline. Do not share one instance across threads or processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

BLOCK_BYTES = 4096


@dataclass
class CostCounters:
    """Mutable tally of sampling work. Cheap to pass around; NOT
    thread-safe — use one per worker and :meth:`merge` (see the module
    docstring)."""

    steps: int = 0
    edges_evaluated: int = 0
    rejection_trials: int = 0
    rejected: int = 0
    binary_search_probes: int = 0
    alias_draws: int = 0
    io_blocks: int = 0
    io_bytes: int = 0

    def record_step(self) -> None:
        self.steps += 1

    def record_scan(self, num_edges: int) -> None:
        self.edges_evaluated += int(num_edges)

    def record_trial(self, accepted: bool) -> None:
        self.rejection_trials += 1
        self.edges_evaluated += 1
        if not accepted:
            self.rejected += 1

    def record_probe(self, n: int = 1) -> None:
        self.binary_search_probes += int(n)
        self.edges_evaluated += int(n)

    def record_alias_draw(self) -> None:
        self.alias_draws += 1
        self.edges_evaluated += 1

    def record_io(self, nbytes: int) -> None:
        nbytes = int(nbytes)
        self.io_bytes += nbytes
        self.io_blocks += -(-nbytes // BLOCK_BYTES)

    # -- derived metrics ---------------------------------------------------

    @property
    def edges_per_step(self) -> float:
        """Figure 2's metric: average edges evaluated per sampling step."""
        return self.edges_evaluated / self.steps if self.steps else 0.0

    @property
    def acceptance_ratio(self) -> float:
        """The paper's ε for rejection sampling (accepted / trials)."""
        if not self.rejection_trials:
            return 1.0
        return 1.0 - self.rejected / self.rejection_trials

    def merge(self, other: "CostCounters") -> "CostCounters":
        """Accumulate ``other`` into self (for multi-walker aggregation)."""
        self.steps += other.steps
        self.edges_evaluated += other.edges_evaluated
        self.rejection_trials += other.rejection_trials
        self.rejected += other.rejected
        self.binary_search_probes += other.binary_search_probes
        self.alias_draws += other.alias_draws
        self.io_blocks += other.io_blocks
        self.io_bytes += other.io_bytes
        return self

    @classmethod
    def merge_all(cls, parts: Iterable["CostCounters"]) -> "CostCounters":
        """Fold a worker set's counters into a fresh instance.

        Merge is associative and commutative (every field is a sum), so
        the fold is deterministic whatever order workers finished in.
        """
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    def publish(self, registry, prefix: str = "sampling") -> None:
        """Map every field onto telemetry registry counters/gauges.

        Call once per finished run (repeated publishes re-add the
        totals, which is exactly right when each worker publishes its
        own counters into its own registry before the merge).
        """
        registry.counter(f"{prefix}.steps", "sampling steps taken").inc(self.steps)
        registry.counter(
            f"{prefix}.edges_evaluated", "edges examined (Figure 2 numerator)"
        ).inc(self.edges_evaluated)
        registry.counter(
            f"{prefix}.rejection_trials", "rejection trials attempted"
        ).inc(self.rejection_trials)
        registry.counter(f"{prefix}.rejected", "rejection trials refused").inc(
            self.rejected
        )
        registry.counter(
            f"{prefix}.binary_search_probes", "prefix/boundary probes"
        ).inc(self.binary_search_probes)
        registry.counter(f"{prefix}.alias_draws", "in-trunk alias draws").inc(
            self.alias_draws
        )
        registry.counter("io.blocks", "4 KiB disk blocks loaded").inc(self.io_blocks)
        registry.counter("io.bytes", "bytes loaded from disk").inc(self.io_bytes)
        registry.gauge(
            f"{prefix}.edges_per_step", "Figure 2 metric: edges/step"
        ).set(self.edges_per_step)
        registry.gauge(
            f"{prefix}.acceptance_ratio", "rejection acceptance ratio ε"
        ).set(self.acceptance_ratio)

    def snapshot(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "steps": self.steps,
            "edges_evaluated": self.edges_evaluated,
            "edges_per_step": self.edges_per_step,
            "rejection_trials": self.rejection_trials,
            "acceptance_ratio": self.acceptance_ratio,
            "binary_search_probes": self.binary_search_probes,
            "alias_draws": self.alias_draws,
            "io_blocks": self.io_blocks,
            "io_bytes": self.io_bytes,
        }
