"""Cost accounting shared by every sampler and engine.

The paper's headline efficiency metric (Figure 2) is the *average sampling
cost*: edges evaluated per sampling step. Wall-clock comparisons between a
C++ engine and pure Python are meaningless, so every sampler in this
library increments a :class:`CostCounters` as it works, and benchmarks
report both wall time and this model. Conventions:

* full-scan: +|Γ| edge evaluations per step (it touches every candidate);
* rejection: +1 per trial (each trial evaluates one edge's weight);
* ITS binary search: +1 per probe (each probe compares one prefix entry);
* PAT/HPAT: +1 per trunk-boundary probe, +1 for the in-trunk alias draw.

I/O counters serve the out-of-core experiments (Figure 14): a *block* is
one disk read of :data:`BLOCK_BYTES` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

BLOCK_BYTES = 4096


@dataclass
class CostCounters:
    """Mutable tally of sampling work. Cheap to pass around; not thread-safe."""

    steps: int = 0
    edges_evaluated: int = 0
    rejection_trials: int = 0
    rejected: int = 0
    binary_search_probes: int = 0
    alias_draws: int = 0
    io_blocks: int = 0
    io_bytes: int = 0

    def record_step(self) -> None:
        self.steps += 1

    def record_scan(self, num_edges: int) -> None:
        self.edges_evaluated += int(num_edges)

    def record_trial(self, accepted: bool) -> None:
        self.rejection_trials += 1
        self.edges_evaluated += 1
        if not accepted:
            self.rejected += 1

    def record_probe(self, n: int = 1) -> None:
        self.binary_search_probes += int(n)
        self.edges_evaluated += int(n)

    def record_alias_draw(self) -> None:
        self.alias_draws += 1
        self.edges_evaluated += 1

    def record_io(self, nbytes: int) -> None:
        nbytes = int(nbytes)
        self.io_bytes += nbytes
        self.io_blocks += -(-nbytes // BLOCK_BYTES)

    # -- derived metrics ---------------------------------------------------

    @property
    def edges_per_step(self) -> float:
        """Figure 2's metric: average edges evaluated per sampling step."""
        return self.edges_evaluated / self.steps if self.steps else 0.0

    @property
    def acceptance_ratio(self) -> float:
        """The paper's ε for rejection sampling (accepted / trials)."""
        if not self.rejection_trials:
            return 1.0
        return 1.0 - self.rejected / self.rejection_trials

    def merge(self, other: "CostCounters") -> "CostCounters":
        """Accumulate ``other`` into self (for multi-walker aggregation)."""
        self.steps += other.steps
        self.edges_evaluated += other.edges_evaluated
        self.rejection_trials += other.rejection_trials
        self.rejected += other.rejected
        self.binary_search_probes += other.binary_search_probes
        self.alias_draws += other.alias_draws
        self.io_blocks += other.io_blocks
        self.io_bytes += other.io_bytes
        return self

    def snapshot(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "steps": self.steps,
            "edges_evaluated": self.edges_evaluated,
            "edges_per_step": self.edges_per_step,
            "rejection_trials": self.rejection_trials,
            "acceptance_ratio": self.acceptance_ratio,
            "binary_search_probes": self.binary_search_probes,
            "alias_draws": self.alias_draws,
            "io_blocks": self.io_blocks,
            "io_bytes": self.io_bytes,
        }
