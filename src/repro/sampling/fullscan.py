"""Full-scan sampling: GraphWalker's strategy on dynamic weights.

When edge weights change per step (exponential temporal weights depend on
the walker's arrival time before TEA's static-weight rewrite), GraphWalker
rebuilds the transition distribution by scanning every candidate edge,
then samples from the freshly built prefix sums (paper Sections 1, 4.3 —
O(D) per step; "19,046 edges per step" in Figure 2). This module is that
strategy, cost-accounted.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import EmptyCandidateSetError
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search


def full_scan_sample(
    weights_time_desc: np.ndarray,
    candidate_size: int,
    rng: np.random.Generator,
    counters: Optional[CostCounters] = None,
    weight_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    times_time_desc: Optional[np.ndarray] = None,
) -> int:
    """One draw that touches every candidate edge.

    With ``weight_fn`` and ``times_time_desc`` given, the weights are
    *recomputed from timestamps* for the scan — modelling engines that
    evaluate the dynamic weight per step instead of using TEA's static
    rewrite. Otherwise precomputed static weights are scanned.
    """
    s = int(candidate_size)
    if s <= 0:
        raise EmptyCandidateSetError("full scan over empty candidate set")
    if weight_fn is not None:
        if times_time_desc is None:
            raise ValueError("weight_fn requires times_time_desc")
        w = weight_fn(np.asarray(times_time_desc[:s], dtype=np.float64))
    else:
        w = weights_time_desc[:s]
    if counters is not None:
        counters.record_scan(s)
    prefix = build_prefix_sums(w)
    total = prefix[s]
    if not (total > 0):
        raise EmptyCandidateSetError("candidate set has zero total weight")
    r = draw_in_range(rng, 0.0, total)
    return its_search(prefix, r, 0, s, None)
