"""Temporal random-walk applications and the temporal-centric API.

:mod:`~repro.walks.spec` is the user-facing programming model of the
paper (Table 2, Algorithms 1–2): a walk application is a
``Dynamic_weight`` (static-izable temporal bias), an optional
``Dynamic_parameter`` (walker-state-dependent bias handled by rejection),
and an ``Edges_interval`` subgraph selection. :mod:`~repro.walks.apps`
instantiates the three applications the paper evaluates plus the
extensions its Section 5.2 sketches.
"""

from repro.walks.spec import CustomParameter, Node2VecParameter, WalkSpec
from repro.walks.apps import (
    linear_walk,
    exponential_walk,
    temporal_node2vec,
    unbiased_walk,
    APPLICATIONS,
)
from repro.walks.walker import Walker, WalkPath

__all__ = [
    "WalkSpec",
    "Node2VecParameter",
    "CustomParameter",
    "linear_walk",
    "exponential_walk",
    "temporal_node2vec",
    "unbiased_walk",
    "APPLICATIONS",
    "Walker",
    "WalkPath",
]
