"""The paper's three evaluated applications, plus the unbiased variant.

Section 2.3 defines them; Table 4 evaluates them:

* **Linear temporal weight** — δ is the edge's timing rank (CTDNE's
  linear variant applied to DeepWalk);
* **Exponential temporal weight** — δ = exp(t_i − t), cancelled to
  exp(t_i) (CTDNE, CAW, EHNA);
* **Temporal node2vec** — exponential weight × node2vec's β(p, q)
  dynamic parameter (EHNA);
* **Unbiased** — uniform weights (Section 2.3's note that TEA supports
  unbiased walks by assigning uniform weights).

``exp_scale`` controls the exponential decay constant in *time units* of
the dataset. The paper uses raw exp(t) on KONECT's second-resolution
timestamps; on our synthetic horizons a configurable scale keeps the
skew in the regime the paper observes (rejection trial counts in the
10²–10⁴ band of Figure 2) while remaining finite in float64.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.weights import WeightModel
from repro.walks.spec import Node2VecParameter, WalkSpec

DEFAULT_EXP_SCALE = 25.0


def linear_walk(time_window: Optional[Tuple[float, float]] = None) -> WalkSpec:
    """Linear temporal weight random walk (rank variant)."""
    return WalkSpec(
        name="linear",
        weight_model=WeightModel(kind="linear_rank"),
        time_window=time_window,
    )


def exponential_walk(
    scale: float = DEFAULT_EXP_SCALE,
    time_window: Optional[Tuple[float, float]] = None,
) -> WalkSpec:
    """Exponential temporal weight random walk (Equation 3)."""
    return WalkSpec(
        name="exponential",
        weight_model=WeightModel(kind="exponential", scale=scale),
        time_window=time_window,
    )


def temporal_node2vec(
    p: float = 0.5,
    q: float = 2.0,
    scale: float = DEFAULT_EXP_SCALE,
    time_window: Optional[Tuple[float, float]] = None,
) -> WalkSpec:
    """Temporal node2vec (Equation 4): exponential weight + β rejection.

    Defaults p=0.5, q=2 follow the paper's evaluation setup (Section 5.1).
    """
    return WalkSpec(
        name="node2vec",
        weight_model=WeightModel(kind="exponential", scale=scale),
        dynamic_parameter=Node2VecParameter(p=p, q=q),
        time_window=time_window,
    )


def unbiased_walk(time_window: Optional[Tuple[float, float]] = None) -> WalkSpec:
    """Unbiased temporal walk: uniform over the candidate edge set."""
    return WalkSpec(
        name="unbiased",
        weight_model=WeightModel(kind="uniform"),
        time_window=time_window,
    )


APPLICATIONS: Dict[str, WalkSpec] = {
    "linear": linear_walk(),
    "exponential": exponential_walk(),
    "node2vec": temporal_node2vec(),
    "unbiased": unbiased_walk(),
}
