"""The temporal-centric programming model (paper Section 4.1, Table 2).

A temporal random-walk application is specified by three user hooks:

``Dynamic_weight``
    The temporal bias ``f(t)`` of an edge. TEA's key requirement is that
    after the per-vertex cancellation of Equation 3 the weight is a pure
    function of the edge's own timestamp — that is what makes the
    PAT/HPAT structures buildable once. Expressed here as a
    :class:`~repro.core.weights.WeightModel`.

``Dynamic_parameter``
    A bias that *does* depend on walker state (node2vec's β of Equation 4
    depends on the previous vertex). It cannot be baked into a static
    index, so the runtime applies it by rejection on top of the hybrid
    sampler (Algorithm 2 lines 18–22): sample an edge from the static
    distribution, accept with probability β / β_max. Applications without
    such a parameter simply always accept.

``Edges_interval``
    Subgraph (snapshot) selection: restrict the walk to edges in a time
    window before preprocessing. Maps to
    :meth:`repro.graph.edge_stream.EdgeStream.interval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

from repro.core.weights import WeightModel
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph


class DynamicParameter(Protocol):
    """Walker-state-dependent bias β(previous, candidate) ∈ (0, beta_max]."""

    beta_max: float

    def __call__(
        self, graph: TemporalGraph, prev_vertex: Optional[int], candidate_vertex: int
    ) -> float: ...


@dataclass(frozen=True)
class Node2VecParameter:
    """node2vec's β (Equation 4): 1/p if returning, 1 if common neighbor,
    1/q otherwise — evaluated against the *static* adjacency, as in
    node2vec on static graphs.
    """

    p: float = 0.5
    q: float = 2.0

    @property
    def beta_max(self) -> float:
        return max(1.0 / self.p, 1.0, 1.0 / self.q)

    def __call__(
        self, graph: TemporalGraph, prev_vertex: Optional[int], candidate_vertex: int
    ) -> float:
        if prev_vertex is None:
            return self.beta_max  # first hop: no previous vertex, accept
        if candidate_vertex == prev_vertex:
            return 1.0 / self.p
        if graph.has_static_edge(prev_vertex, candidate_vertex):
            return 1.0
        return 1.0 / self.q


@dataclass(frozen=True)
class CustomParameter:
    """User-defined Dynamic_parameter (Table 2's extension point).

    Wraps any function ``f(graph, prev_vertex, candidate_vertex) ->
    float`` in ``(0, beta_max]``. The runtime applies it by rejection
    exactly like node2vec's β, so any walker-state-dependent bias that
    admits an upper bound plugs straight into every engine.

    >>> teleport_averse = CustomParameter(
    ...     fn=lambda g, prev, cand: 0.5 if prev == cand else 1.0,
    ...     beta_max=1.0,
    ...     name="discourage-returns",
    ... )
    """

    fn: object
    beta_max: float = 1.0
    name: str = "custom"
    # Mirror Node2VecParameter's attributes so describe() stays uniform.
    p: float = float("nan")
    q: float = float("nan")

    def __post_init__(self):
        if not callable(self.fn):
            raise TypeError("fn must be callable")
        if not (self.beta_max > 0):
            raise ValueError("beta_max must be positive")

    def __call__(
        self, graph: TemporalGraph, prev_vertex: Optional[int], candidate_vertex: int
    ) -> float:
        if prev_vertex is None:
            return self.beta_max
        return self.fn(graph, prev_vertex, candidate_vertex)


@dataclass(frozen=True)
class WalkSpec:
    """A complete temporal random-walk application.

    Attributes
    ----------
    name:
        Label used by benchmarks and reports.
    weight_model:
        The ``Dynamic_weight`` hook in static form.
    dynamic_parameter:
        The ``Dynamic_parameter`` hook, or ``None`` when the application
        has no walker-state bias (the runtime then skips the rejection
        loop entirely — "we simply return Accepted", Section 4.1).
    time_window:
        Optional ``Edges_interval`` bounds applied before preprocessing.
    """

    name: str
    weight_model: WeightModel
    dynamic_parameter: Optional[DynamicParameter] = None
    time_window: Optional[Tuple[float, float]] = None

    def edges_interval(self, stream: EdgeStream) -> EdgeStream:
        """Apply the application's time window (identity if none)."""
        if self.time_window is None:
            return stream
        return stream.interval(*self.time_window)

    def restrict(self, graph: TemporalGraph) -> TemporalGraph:
        """Graph-level convenience around :meth:`edges_interval`."""
        if self.time_window is None:
            return graph
        return TemporalGraph.from_stream(
            self.edges_interval(graph.to_stream()), num_vertices=graph.num_vertices
        )

    @property
    def has_dynamic_parameter(self) -> bool:
        return self.dynamic_parameter is not None

    def describe(self) -> str:
        parts = [self.name, self.weight_model.describe()]
        beta = self.dynamic_parameter
        if isinstance(beta, Node2VecParameter):
            parts.append(f"beta(p={beta.p}, q={beta.q})")
        elif beta is not None:
            parts.append(f"beta({getattr(beta, 'name', 'custom')})")
        if self.time_window is not None:
            parts.append(f"window={self.time_window}")
        return ", ".join(parts)
