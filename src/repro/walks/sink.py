"""Walk output sinks: buffered persistence of completed walks.

Paper §4.1: "TEA stores the completed random walks the same as
GraphWalker, that is, we flush the completed ones to disk when the
number of them reaches 1,024." :class:`WalkSink` implements that policy
(threshold configurable) over two formats:

* **text** — one walk per line, ``v0 v1@t1 v2@t2 ...`` (human-greppable,
  what embedding pipelines consume);
* **binary** — a compact framed format (`.twalks`): per walk a length
  prefix, then vertex ids and times.

Engines accept a sink via :meth:`repro.engines.base.Engine.run`'s
``sink`` argument; paths flow to disk instead of accumulating in memory,
which is what makes R·|V| corpus generation feasible on big workloads.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import GraphFormatError
from repro.walks.walker import WalkPath

PathLike = Union[str, os.PathLike]

DEFAULT_FLUSH_THRESHOLD = 1024  # the paper's (and GraphWalker's) constant
_MAGIC = b"TWLK\x01"


class WalkSink:
    """Buffered walk writer with GraphWalker's flush-at-1024 policy."""

    def __init__(
        self,
        path: PathLike,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        binary: Optional[bool] = None,
    ):
        if flush_threshold <= 0:
            raise ValueError("flush_threshold must be positive")
        self.path = Path(path)
        self.flush_threshold = int(flush_threshold)
        self.binary = (
            self.path.suffix == ".twalks" if binary is None else bool(binary)
        )
        self._buffer: List[WalkPath] = []
        self._file = None
        self.walks_written = 0
        self.flushes = 0

    # -- context management --------------------------------------------------

    def __enter__(self) -> "WalkSink":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    def open(self) -> "WalkSink":
        mode = "wb" if self.binary else "w"
        self._file = open(self.path, mode)
        if self.binary:
            self._file.write(_MAGIC)
        return self

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None

    # -- writing ---------------------------------------------------------------

    def append(self, path: WalkPath) -> None:
        """Buffer one completed walk; flush at the threshold."""
        if self._file is None:
            raise RuntimeError("sink is not open")
        self._buffer.append(path)
        if len(self._buffer) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        if self.binary:
            self._flush_binary()
        else:
            self._flush_text()
        self.walks_written += len(self._buffer)
        self.flushes += 1
        self._buffer.clear()

    def _flush_text(self) -> None:
        lines = []
        for walk in self._buffer:
            parts = [str(walk.hops[0][0])]
            # repr() round-trips float64 exactly; %g would truncate and
            # break strict-equality validation against the graph.
            parts.extend(f"{v}@{t!r}" for v, t in walk.hops[1:])
            lines.append(" ".join(parts))
        self._file.write("\n".join(lines) + "\n")

    def _flush_binary(self) -> None:
        for walk in self._buffer:
            n = len(walk.hops)
            np.asarray([n], dtype=np.int32).tofile(self._file)
            np.asarray([v for v, _ in walk.hops], dtype=np.int64).tofile(self._file)
            times = [t if t is not None else np.nan for _, t in walk.hops]
            np.asarray(times, dtype=np.float64).tofile(self._file)


def read_walks(path: PathLike) -> Iterator[WalkPath]:
    """Stream walks back from a file written by :class:`WalkSink`."""
    path = Path(path)
    if path.suffix == ".twalks":
        yield from _read_binary(path)
    else:
        yield from _read_text(path)


def _read_text(path: Path) -> Iterator[WalkPath]:
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            hops = []
            for i, token in enumerate(line.split()):
                if i == 0:
                    hops.append((int(token), None))
                    continue
                try:
                    v, t = token.split("@")
                    hops.append((int(v), float(t)))
                except ValueError as exc:
                    raise GraphFormatError(f"{path}:{lineno}: bad hop {token!r}") from exc
            yield WalkPath(hops=hops)


def _read_binary(path: Path) -> Iterator[WalkPath]:
    with open(path, "rb") as f:
        if f.read(len(_MAGIC)) != _MAGIC:
            raise GraphFormatError(f"{path}: not a .twalks file")
        while True:
            header = np.fromfile(f, dtype=np.int32, count=1)
            if header.size == 0:
                return
            n = int(header[0])
            vs = np.fromfile(f, dtype=np.int64, count=n)
            ts = np.fromfile(f, dtype=np.float64, count=n)
            if vs.size != n or ts.size != n:
                raise GraphFormatError(f"{path}: truncated walk record")
            hops = [
                (int(v), None if np.isnan(t) else float(t))
                for v, t in zip(vs, ts)
            ]
            yield WalkPath(hops=hops)


def validate_corpus(graph, path: PathLike) -> Tuple[int, list]:
    """Check every walk in a corpus file against a graph.

    Returns ``(num_walks, problems)`` where each problem is a
    ``(walk_index, reason)`` pair. A walk is valid when every hop is a
    real edge of ``graph`` and the arrival times strictly increase — the
    temporal-path contract every engine guarantees (useful when corpora
    are produced elsewhere or graphs have drifted since generation).
    """
    from repro.graph.validate import is_temporal_path

    problems = []
    count = 0
    for i, walk in enumerate(read_walks(path)):
        count += 1
        if not walk.hops:
            problems.append((i, "empty walk"))
            continue
        first_vertex = walk.hops[0][0]
        if not (0 <= first_vertex < graph.num_vertices):
            problems.append((i, f"start vertex {first_vertex} out of range"))
            continue
        if not is_temporal_path(graph, walk.hops):
            problems.append((i, "not a temporal path of the graph"))
    return count, problems
