"""Walker state and recorded paths.

A temporal walk is a sequence of (vertex, arrival-time) hops; the start
vertex has no arrival time (``None``), matching the paper's definition of
a temporal path P = e1·e2·…·e_{n−1} with strictly increasing times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

Hop = Tuple[int, Optional[float]]


@dataclass
class WalkPath:
    """One finished temporal walk."""

    hops: List[Hop]

    @property
    def vertices(self) -> List[int]:
        return [v for v, _ in self.hops]

    @property
    def times(self) -> List[Optional[float]]:
        return [t for _, t in self.hops]

    def __len__(self) -> int:
        return len(self.hops)

    @property
    def num_edges(self) -> int:
        return max(0, len(self.hops) - 1)


@dataclass
class Walker:
    """Mutable walk state: current and previous (vertex, time)."""

    start_vertex: int
    hops: List[Hop] = field(default_factory=list)

    def __post_init__(self):
        if not self.hops:
            self.hops.append((self.start_vertex, None))

    @property
    def current_vertex(self) -> int:
        return self.hops[-1][0]

    @property
    def current_time(self) -> Optional[float]:
        return self.hops[-1][1]

    @property
    def previous_vertex(self) -> Optional[int]:
        """The vertex before the current one (node2vec's w), if any."""
        if len(self.hops) < 2:
            return None
        return self.hops[-2][0]

    def advance(self, vertex: int, time: float) -> None:
        self.hops.append((vertex, time))

    def finish(self) -> WalkPath:
        return WalkPath(hops=list(self.hops))

    @property
    def num_edges(self) -> int:
        return len(self.hops) - 1
