"""Temporal GNN mini-batch sampling atop TEA (paper §4.4).

"The training of temporal graph neural networks on large graphs ...
could benefit from TEA. Particularly, sampling is one of the most
expensive steps for training a GNN. Since TEA could accelerate sampling
by orders of magnitude, the impacts on GNN training for temporal graphs
would be enormous."

This package realises that: TGN/TGAT-style temporal neighborhood
sampling — for a batch of (node, time) queries, draw k temporal
neighbors per hop, biased by the application's temporal weights, over L
hops — served by the same HPAT structures and the vectorised frontier
kernel the walk engine uses. The output is padded block arrays in the
layout GNN frameworks consume.
"""

from repro.gnn.sampler import NeighborBlock, TemporalNeighborSampler

__all__ = ["NeighborBlock", "TemporalNeighborSampler"]
