"""Temporal neighborhood sampling for GNN mini-batches.

The TGN/TGAT access pattern: given a batch of (node, time) queries —
typically the endpoints of training interactions — gather, for each
query, up to ``k`` edges *earlier than* the query time (a model must not
see the future), optionally biased toward recent interactions; recurse
for multi-hop blocks.

Note the direction flip relative to walks: a walk samples edges *later*
than the arrival time (Γt), while GNN aggregation conditions on the
*past*. Both are prefix/suffix queries on the time-sorted adjacency; we
reuse the walk machinery by building the index over the **reversed-time
view** of the graph: negating timestamps turns "edges before t" into
"edges after −t", and recency bias becomes exactly the exponential
temporal weight. One graph transform, zero new sampling code — every
draw goes through the vectorised HPAT kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core import builder
from repro.core.weights import WeightModel
from repro.engines.batch import hpat_sample_batch
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters


@dataclass
class NeighborBlock:
    """One hop of sampled temporal neighborhoods (padded arrays).

    For ``B`` queries and fanout ``k``:

    * ``seeds`` (B,), ``seed_times`` (B,) — the queried (node, time) pairs;
    * ``neighbors`` (B, k) — sampled neighbor ids (padding where masked);
    * ``times`` (B, k) — interaction times of the sampled edges;
    * ``mask`` (B, k) — True where a real sample exists (queries whose
      node has no earlier interactions produce all-False rows).

    Sampling is with replacement (the TGN convention — repeated draws of
    a dominant recent interaction are signal, not error).
    """

    seeds: np.ndarray
    seed_times: np.ndarray
    neighbors: np.ndarray
    times: np.ndarray
    mask: np.ndarray

    @property
    def fanout(self) -> int:
        return int(self.neighbors.shape[1])

    def flatten_frontier(self):
        """(nodes, times) of all real samples — the next hop's queries."""
        return self.neighbors[self.mask], self.times[self.mask]


class TemporalNeighborSampler:
    """HPAT-served temporal neighborhood sampler.

    Parameters
    ----------
    graph:
        The interaction graph (edge u→v at t means they interacted at t;
        for undirected interaction data, materialise both directions —
        :func:`repro.graph.generators.temporal_bipartite` already does).
    recency_scale:
        Exponential recency bias: an edge at age Δ before the query time
        carries weight exp(−Δ / recency_scale). ``None`` samples the
        past uniformly.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        recency_scale: Optional[float] = None,
        seed: RngLike = None,
        kernel_backend="auto",
    ):
        from repro.kernels import KernelScratch, resolve_backend

        self.graph = graph
        self.recency_scale = recency_scale
        self.kernel = resolve_backend(kernel_backend)
        self._scratch = KernelScratch()
        # Reversed-time view: negate timestamps so "before t" becomes a
        # candidate prefix, and exp(t'/scale) on negated times equals
        # exp(-(t - t_i)/scale) recency decay on real times.
        src = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
        self._rev = TemporalGraph.from_stream(
            EdgeStream(src, graph.nbr, -graph.etime, weight=graph.eweight),
            num_vertices=graph.num_vertices,
        )
        # In reversed-time coordinates t' = -t, recency weight
        # exp(-(t_query - t_i)/scale) ∝ exp(t_i/scale) = exp(-t'/scale):
        # a *decay* in the reversed key, hence the decay kind.
        model = (
            WeightModel("uniform")
            if recency_scale is None
            else WeightModel("exponential_decay", scale=float(recency_scale))
        )
        pre = builder.preprocess(self._rev, model, with_aux_index=True)
        self._index = pre.index
        self._rng = make_rng(seed)
        self.counters = CostCounters()

    # -- queries -----------------------------------------------------------

    def num_earlier_interactions(self, node: int, t: float) -> int:
        """How many of ``node``'s interactions happened strictly before t."""
        return self._rev.candidate_count(node, -float(t))

    def sample_neighbors(
        self,
        nodes: Sequence[int],
        times: Sequence[float],
        k: int,
        rng: Optional[np.random.Generator] = None,
    ) -> NeighborBlock:
        """Sample up to ``k`` pre-``t`` neighbors per (node, time) query."""
        if k <= 0:
            raise ValueError("fanout k must be positive")
        rng = rng or self._rng
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if nodes.shape != times.shape or nodes.ndim != 1:
            raise ValueError("nodes and times must be equal-length 1-D")
        B = nodes.size
        neighbors = np.zeros((B, k), dtype=np.int64)
        out_times = np.zeros((B, k), dtype=np.float64)
        mask = np.zeros((B, k), dtype=bool)

        # Candidate sizes in the reversed view ("strictly before t") —
        # one vectorised searchsorted for the whole batch.
        sizes = self._rev.candidate_counts_batch(nodes, -times)
        live = np.flatnonzero(sizes > 0)
        if live.size:
            self.counters.steps += int(live.size) * k
            vs = np.repeat(nodes[live], k)
            ss = np.repeat(sizes[live], k)
            draws = hpat_sample_batch(self._index, vs, ss, rng, self.counters,
                                      backend=self.kernel,
                                      scratch=self._scratch)
            pos = self._rev.indptr[vs] + draws
            neighbors[live] = self._rev.nbr[pos].reshape(-1, k)
            out_times[live] = -self._rev.etime[pos].reshape(-1, k)
            mask[live] = True
        return NeighborBlock(
            seeds=nodes, seed_times=times,
            neighbors=neighbors, times=out_times, mask=mask,
        )

    def sample_blocks(
        self,
        seed_nodes: Sequence[int],
        seed_times: Sequence[float],
        fanouts: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> List[NeighborBlock]:
        """Multi-hop blocks, innermost hop first in the returned list.

        Hop ``i+1`` queries the (neighbor, interaction-time) frontier of
        hop ``i`` — times shrink monotonically (the no-future-peeking
        guarantee, asserted by tests).
        """
        rng = rng or self._rng
        blocks: List[NeighborBlock] = []
        nodes = np.asarray(seed_nodes, dtype=np.int64)
        times = np.asarray(seed_times, dtype=np.float64)
        for k in fanouts:
            block = self.sample_neighbors(nodes, times, int(k), rng)
            blocks.append(block)
            nodes, times = block.flatten_frontier()
            if nodes.size == 0:
                break
        return blocks

    def nbytes(self) -> int:
        return int(self._rev.nbytes() + self._index.nbytes())
