"""Random-number utilities.

Everything stochastic in the library flows through a
:class:`numpy.random.Generator` so experiments are reproducible from a
single seed. :func:`make_rng` is the one place seeds are interpreted;
:func:`spawn` derives independent child generators for parallel work
(construction threads, per-walker streams) without seed collisions.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` child seeds from ``rng`` (the transportable half of
    :func:`spawn`).

    Parallel executors ship these integers to workers instead of
    generator objects: worker ``i`` reconstructs
    ``np.random.default_rng(int(seeds[i]))``, so results are keyed by
    task index — independent of which worker runs the task or in what
    order tasks complete.
    """
    return rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Used for parallel construction and multi-walker experiments; children
    are independent of each other and of subsequent draws from ``rng``.
    """
    return [np.random.default_rng(int(s)) for s in spawn_seeds(rng, n)]


# ---------------------------------------------------------------------------
# Counter-based per-lane streams
# ---------------------------------------------------------------------------
#
# A chunk-parallel (or step-interleaved) executor cannot key randomness
# on a shared Generator: the values a lane sees would then depend on
# which other lanes happened to draw in the same vectorised call — i.e.
# on chunk boundaries, cohort membership, and scheduling. LaneRng keys
# every draw on (lane seed, lane draw ordinal) instead, using the
# splitmix64 sequence: lane i's k-th uniform is
# ``finalize(seed_i + k·γ) / 2^64``. Grouping lanes into chunks or
# cohorts only changes *which draws share a numpy call*, never their
# values — the bit-determinism contract of repro.parallel.

_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_M2 = np.uint64(0x94D049BB133111EB)
_U53_INV = float(2.0 ** -53)


def _splitmix64(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorised over a uint64 array."""
    z = (z ^ (z >> np.uint64(30))) * _SM64_M1
    z = (z ^ (z >> np.uint64(27))) * _SM64_M2
    return z ^ (z >> np.uint64(31))


class LaneRng:
    """Independent counter-based uniform streams, one per lane.

    ``seeds`` assigns lane ``i`` its stream key (typically the per-walk
    seeds of a :class:`~repro.parallel.chunks.ChunkPlan` slice). Each
    :meth:`uniform` call advances only the named lanes' counters, so a
    lane's stream consumption depends exclusively on its own history —
    the property that makes walks invariant under chunking, worker
    count, backend, scheduling order, and step interleaving.
    """

    __slots__ = ("_key", "_ctr")

    def __init__(self, seeds: np.ndarray):
        self._key = np.ascontiguousarray(seeds).astype(np.uint64)
        self._ctr = np.zeros(self._key.size, dtype=np.uint64)

    @property
    def num_lanes(self) -> int:
        return int(self._key.size)

    def uniform(self, lanes: np.ndarray) -> np.ndarray:
        """Next uniform in ``[0, 1)`` for each (distinct) lane in ``lanes``."""
        self._ctr[lanes] += np.uint64(1)
        z = _splitmix64(self._key[lanes] + self._ctr[lanes] * _SM64_GAMMA)
        return (z >> np.uint64(11)).astype(np.float64) * _U53_INV

    def uniform_block(self, lanes: np.ndarray, k: int) -> np.ndarray:
        """``k`` consecutive uniforms per lane, shape ``(k, lanes.size)``.

        Row ``j`` is bit-identical to the ``j``-th of ``k`` successive
        :meth:`uniform` calls over the same lanes — the fused kernels
        draw their per-stage uniforms in one block without perturbing
        any lane's stream (property-tested).
        """
        base = self._ctr[lanes]
        self._ctr[lanes] = base + np.uint64(k)
        steps = np.arange(1, k + 1, dtype=np.uint64)[:, None]
        z = _splitmix64(
            self._key[lanes][None, :] + (base[None, :] + steps) * _SM64_GAMMA
        )
        return (z >> np.uint64(11)).astype(np.float64) * _U53_INV

    def scalar(self, lane: int) -> "LaneStream":
        """A Generator-shaped view of one lane (``.random()`` only)."""
        return LaneStream(self, int(lane))


class LaneStream:
    """Scalar adapter over one :class:`LaneRng` lane.

    Implements just enough of the :class:`numpy.random.Generator`
    surface (``random()`` with no size) for the scalar sampling
    fallbacks (:func:`repro.sampling.prefix_sum.draw_in_range`).
    """

    __slots__ = ("_owner", "_lane")

    def __init__(self, owner: LaneRng, lane: int):
        self._owner = owner
        self._lane = np.array([lane], dtype=np.int64)

    def random(self) -> float:
        return float(self._owner.uniform(self._lane)[0])


class GeneratorLanes:
    """A shared :class:`~numpy.random.Generator` behind the lane-draw API.

    Bit-compatible with the pre-lane frontier kernel: ``uniform(lanes)``
    is exactly ``rng.random(lanes.size)`` — one vectorised draw whose
    values depend on global call order — and :meth:`scalar` hands back
    the shared generator itself. Standalone engine runs and the GNN
    sampler use this adapter; only the parallel executor substitutes
    :class:`LaneRng` to decouple draws from scheduling.
    """

    __slots__ = ("_rng",)

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def uniform(self, lanes: np.ndarray) -> np.ndarray:
        return self._rng.random(lanes.size)

    def uniform_block(self, lanes: np.ndarray, k: int) -> np.ndarray:
        """``k`` successive :meth:`uniform` calls, stacked — implemented
        literally as such so the legacy generator consumes its bit
        stream in exactly the pre-fusion order (bit-compat contract)."""
        return np.stack([self.uniform(lanes) for _ in range(k)])

    def scalar(self, lane: int) -> np.random.Generator:
        return self._rng
