"""Random-number utilities.

Everything stochastic in the library flows through a
:class:`numpy.random.Generator` so experiments are reproducible from a
single seed. :func:`make_rng` is the one place seeds are interpreted;
:func:`spawn` derives independent child generators for parallel work
(construction threads, per-walker streams) without seed collisions.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` child seeds from ``rng`` (the transportable half of
    :func:`spawn`).

    Parallel executors ship these integers to workers instead of
    generator objects: worker ``i`` reconstructs
    ``np.random.default_rng(int(seeds[i]))``, so results are keyed by
    task index — independent of which worker runs the task or in what
    order tasks complete.
    """
    return rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Used for parallel construction and multi-walker experiments; children
    are independent of each other and of subsequent draws from ``rng``.
    """
    return [np.random.default_rng(int(s)) for s in spawn_seeds(rng, n)]
