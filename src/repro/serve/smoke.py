"""Serving smoke: parity + rejection + clean shutdown in < 30 s.

Run with ``make serve-smoke`` (gated in ``make test``). Boots a real
daemon on a loopback port and checks the three properties the serving
layer must never lose:

1. **Batching parity** — a staged 4-request batch returns walks
   bit-identical to the same queries run solo;
2. **Admission control** — with the batcher paused and the queue full,
   excess requests get 429 and the conservation identity
   ``received == served + rejected + failed`` holds;
3. **Clean shutdown** — ``close()`` joins every thread within its
   bound and reports it.
"""

from __future__ import annotations

import threading
import time

from repro.graph.generators import temporal_powerlaw
from repro.graph.temporal_graph import TemporalGraph
from repro.serve import ServeClient, WalkService


def _stage_batch(service: WalkService, client: ServeClient, requests):
    """Park ``requests`` together, then release them as one batch."""
    service.batcher.pause()
    results = {}

    def _go(idx, kwargs):
        results[idx] = client.walk(**kwargs)

    threads = [
        threading.Thread(target=_go, args=(idx, kwargs))
        for idx, kwargs in enumerate(requests)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + 10.0
    while service.queue.depth() < len(requests):
        if time.monotonic() > deadline:
            raise AssertionError("requests never queued")
        time.sleep(0.005)
    service.batcher.resume()
    for t in threads:
        t.join(timeout=30.0)
    assert len(results) == len(requests), "a staged request never resolved"
    return results


def main() -> None:
    graph = TemporalGraph.from_stream(
        temporal_powerlaw(
            num_vertices=80, num_edges=1600, alpha=0.8,
            time_horizon=200.0, seed=11,
        )
    )
    service = WalkService(
        graph, engine="tea-batch", batch_window_ms=2.0, queue_depth=4
    ).start()
    client = ServeClient(port=service.port)
    try:
        assert client.healthz()["status"] == "ok"

        # 1. batching parity: staged batch vs solo runs, bit-identical.
        queries = [
            dict(starts=[3 + i], walks_per_vertex=3, seed=700 + i, max_length=8)
            for i in range(4)
        ]
        batched = _stage_batch(service, client, queries)
        assert all(r["batched_with"] == 4 for r in batched.values()), (
            "staged requests did not coalesce"
        )
        for idx, kwargs in enumerate(queries):
            solo = client.walk(**kwargs)
            assert solo["walks"] == batched[idx]["walks"], "walk parity broken"
            assert solo["times"] == batched[idx]["times"], "time parity broken"
            assert solo["lengths"] == batched[idx]["lengths"]

        # 2. admission control: overfill the paused queue, expect 429s.
        service.batcher.pause()
        statuses = []

        def _push(i):
            status, _ = client.post(
                "/walk", {"starts": [i], "seed": i, "max_length": 4}
            )
            statuses.append(status)

        threads = [threading.Thread(target=_push, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10.0
        while service.queue.depth() < service.queue.max_depth:
            if time.monotonic() > deadline:
                raise AssertionError("queue never filled")
            time.sleep(0.005)
        # Parked submits hold the depth at max; stragglers must reject.
        while len(statuses) < 8 - service.queue.max_depth:
            if time.monotonic() > deadline:
                raise AssertionError("rejections never arrived")
            time.sleep(0.005)
        service.batcher.resume()
        for t in threads:
            t.join(timeout=30.0)
        assert statuses.count(429) == 8 - service.queue.max_depth, statuses
        assert statuses.count(200) == service.queue.max_depth, statuses

        counters = client.stats()["counters"]
        assert counters["received"] == (
            counters["served"] + counters["rejected"] + counters["failed"]
        ), counters
        assert counters["rejected"] >= 4
        assert "tea_serve_received" in client.metrics()
    finally:
        # 3. clean shutdown with a bounded join.
        clean = service.close(timeout=10.0)
    assert clean, "shutdown did not join within its bound"
    print(
        "serve smoke OK: parity x4, "
        f"rejected={counters['rejected']}, served={counters['served']}, "
        "shutdown clean"
    )


if __name__ == "__main__":
    main()
