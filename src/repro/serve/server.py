"""The `repro serve` daemon: HTTP front-end over the batching core.

Stdlib-only serving: a :class:`~http.server.ThreadingHTTPServer` parks
each POSTed query in the bounded :class:`~repro.serve.batcher.
RequestQueue` and blocks the handler thread on the request's event;
the single :class:`~repro.serve.batcher.Batcher` thread coalesces and
executes. GET endpoints expose health, Prometheus metrics, and a JSON
stats snapshot.

Endpoints
---------
``POST /walk``        run temporal random walks (paths + lengths)
``POST /recommend``   walks aggregated into a visit-count top-k
``POST /gnn/sample``  temporal neighbor blocks (per-request, inline)
``GET  /healthz``     liveness + uptime
``GET  /metrics``     Prometheus text exposition
``GET  /stats``       session/queue/counter snapshot (JSON)

With a streaming engine attached (``streaming=`` / ``repro serve
--streaming-app``) four more come up, backed by
:class:`~repro.serve.streaming.StreamService`:

``POST /stream/ingest``     append an edge batch, advancing the epoch
``POST /stream/walk``       walk a pinned (or the newest) epoch view
``POST /stream/recommend``  same walks, aggregated into a top-k
``GET  /stream/epoch``      current epoch / edge count / durability

Every query gets its own 16-hex request id which doubles as the event
log ``run_id`` for its ``serve.request``/``serve.response`` span — one
id per request regardless of how the batcher groups them.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.engines.session import TeaSession
from repro.exceptions import ServeError, TeaError
from repro.graph.temporal_graph import TemporalGraph
from repro.serve.batcher import Batcher, PendingRequest, RequestQueue
from repro.serve.executor import BatchExecutor
from repro.serve.protocol import WalkRequest
from repro.serve.streaming import StreamService
from repro.telemetry import events
from repro.telemetry.clock import monotonic, now
from repro.telemetry.exporters import to_prometheus
from repro.telemetry.registry import LATENCY_BUCKETS, MetricsRegistry


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Small JSON requests/responses over keep-alive: Nagle + delayed
    # ACK would add multi-ms stalls per roundtrip on loopback.
    disable_nagle_algorithm = True

    # The service object rides on the server instance.
    @property
    def service(self) -> "WalkService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # silence stderr chatter
        pass

    # -- helpers -----------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length", 0))
        try:
            return json.loads(self.rfile.read(length) or b"null")
        except (ValueError, UnicodeDecodeError):
            raise ServeError("request body is not valid JSON")

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.service
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "uptime_seconds": round(service.uptime_seconds(), 3),
                "engine": service.session.engine_kind,
            })
        elif self.path == "/metrics":
            self._send_text(
                200, to_prometheus(service.registry), "text/plain; version=0.0.4"
            )
        elif self.path == "/stats":
            self._send_json(200, service.stats())
        elif self.path == "/stream/epoch":
            if service.stream is None:
                self._send_json(404, {"error": "no streaming engine attached"})
            else:
                self._send_json(200, service.stream.epoch_info())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/walk":
            self._serve_walk("walk")
        elif self.path == "/recommend":
            self._serve_walk("recommend")
        elif self.path == "/gnn/sample":
            self._serve_gnn()
        elif self.path == "/stream/ingest":
            self._serve_stream("ingest")
        elif self.path == "/stream/walk":
            self._serve_stream("walk")
        elif self.path == "/stream/recommend":
            self._serve_stream("recommend")
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def _serve_walk(self, kind: str) -> None:
        service = self.service
        t0 = now()
        request_id = events.new_run_id()
        try:
            request = WalkRequest.from_json(self._read_json(), kind=kind)
            pending = PendingRequest(
                request=request, request_id=request_id, spec=request.spec()
            )
        except ServeError as exc:
            self._finish(request_id, exc.status, {"error": str(exc)}, t0, kind)
            return
        events.emit(
            "serve.request",
            run_id=request_id,
            endpoint=kind,
            app=request.app,
            num_walks=request.num_walks,
        )
        if not service.queue.submit(pending):
            self._finish(
                request_id, 429, {"error": "queue full", "run_id": request_id},
                t0, kind,
            )
            return
        if not pending.done.wait(service.request_timeout):
            self._finish(
                request_id, 504, {"error": "request timed out", "run_id": request_id},
                t0, kind,
            )
            return
        if pending.error is not None:
            status = pending.error.status if isinstance(pending.error, ServeError) \
                else 500
            self._finish(
                request_id, status,
                {"error": str(pending.error), "run_id": request_id}, t0, kind,
            )
            return
        self._finish(request_id, 200, pending.response, t0, kind)

    def _serve_gnn(self) -> None:
        service = self.service
        t0 = now()
        request_id = events.new_run_id()
        events.emit("serve.request", run_id=request_id, endpoint="gnn_sample")
        try:
            response = service.executor.gnn_sample(self._read_json())
        except ServeError as exc:
            self._finish(request_id, exc.status, {"error": str(exc)}, t0, "gnn")
            return
        except TeaError as exc:
            self._finish(request_id, 500, {"error": str(exc)}, t0, "gnn")
            return
        response["run_id"] = request_id
        service.gnn_served.inc()
        self._finish(request_id, 200, response, t0, "gnn")

    def _serve_stream(self, verb: str) -> None:
        """Streaming endpoints run inline: ingest must not be coalesced
        (it mutates), and pinned-view walks are lock-free reads."""
        service = self.service
        endpoint = f"stream_{verb}"
        t0 = now()
        request_id = events.new_run_id()
        events.emit("serve.request", run_id=request_id, endpoint=endpoint)
        if service.stream is None:
            self._finish(
                request_id, 404, {"error": "no streaming engine attached"},
                t0, endpoint,
            )
            return
        try:
            payload = self._read_json()
            if verb == "ingest":
                response = service.stream.ingest(payload)
            else:
                response = service.stream.walk(payload, kind=verb)
        except ServeError as exc:
            self._finish(
                request_id, exc.status, {"error": str(exc)}, t0, endpoint
            )
            return
        except TeaError as exc:
            self._finish(request_id, 500, {"error": str(exc)}, t0, endpoint)
            return
        response["run_id"] = request_id
        self._finish(request_id, 200, response, t0, endpoint)

    def _finish(
        self, request_id: str, status: int, payload: dict, t0: float, kind: str
    ) -> None:
        self.service.latency.observe(now() - t0)
        events.emit(
            "serve.response", run_id=request_id, endpoint=kind, status=status
        )
        self._send_json(status, payload)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Batched serving resolves many responses at once; the reconnect
    # burst that follows must not overflow the listen backlog (the
    # stdlib default of 5 turns dropped SYNs into 1 s retransmit
    # stalls).
    request_queue_size = 128

    def __init__(self, addr, handler, service: "WalkService"):
        super().__init__(addr, handler)
        self.service = service


class WalkService:
    """A complete walk-serving daemon over one prepared temporal graph.

    Composes the hot-state session, bounded queue, coalescing batcher,
    and HTTP front-end; usable as a context manager (``with
    WalkService(graph) as svc: ...``) which guarantees the bounded-join
    shutdown path.

    ``batching=False`` degrades the batcher to one-request batches
    (identical execution path, no coalescing) — the serving benchmark's
    control arm.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        engine: str = "tea-batch",
        engine_kwargs: Optional[dict] = None,
        max_engines: int = 8,
        max_bytes: Optional[int] = None,
        queue_depth: int = 64,
        batch_window_ms: float = 2.0,
        max_batch: int = 64,
        batching: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = 60.0,
        registry: Optional[MetricsRegistry] = None,
        streaming=None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        # Optional live-ingest lane: a StreamingTeaEngine served through
        # the /stream/* endpoints (epoch-pinned reads, serialised writes).
        self.stream = (
            StreamService(streaming, registry=self.registry)
            if streaming is not None else None
        )
        self.session = TeaSession(
            graph,
            max_engines=max_engines,
            engine=engine,
            engine_kwargs=engine_kwargs,
            max_bytes=max_bytes,
        )
        self.batching = bool(batching)
        if not self.batching:
            max_batch = 1
            batch_window_ms = 0.0
        self.queue = RequestQueue(max_depth=queue_depth, registry=self.registry)
        self.executor = BatchExecutor(self.session, registry=self.registry)
        self.batcher = Batcher(
            self.queue,
            self.executor,
            batch_window_ms=batch_window_ms,
            max_batch=max_batch,
            registry=self.registry,
        )
        self.latency = self.registry.histogram(
            "serve.latency_seconds", "request latency (admission to response)",
            **LATENCY_BUCKETS,
        )
        self.gnn_served = self.registry.counter(
            "serve.gnn_served", "GNN sample requests answered 200"
        )
        self.request_timeout = float(request_timeout)
        self.host = host
        self._requested_port = int(port)
        self.port: Optional[int] = None
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WalkService":
        if self._httpd is not None:
            raise ServeError("service already started", status=500)
        self._httpd = _Server((self.host, self._requested_port), _Handler, self)
        self.port = self._httpd.server_address[1]
        self.batcher.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        self._started_at = monotonic()
        events.emit(
            "serve.start",
            host=self.host,
            port=self.port,
            engine=self.session.engine_kind,
            batching=self.batching,
        )
        return self

    def close(self, timeout: float = 10.0) -> bool:
        """Bounded shutdown; True iff every thread joined in time."""
        clean = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout)
            clean = clean and not self._thread.is_alive()
            self._thread = None
        if self.batcher.is_alive():
            clean = self.batcher.stop(timeout) and clean
        else:
            self.queue.close()
        if self.stream is not None:
            self.stream.close()
        self.session.close()
        events.emit("serve.stop", clean=clean)
        return clean

    def __enter__(self) -> "WalkService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return monotonic() - self._started_at

    def stats(self) -> dict:
        reg = self.registry
        streaming = (
            None if self.stream is None else self.stream.epoch_info()
        )
        return {
            "streaming": streaming,
            "engine": self.session.engine_kind,
            "batching": self.batching,
            "session": self.session.stats.snapshot(),
            "resident_index_bytes": self.session.resident_index_bytes(),
            "cached_engines": len(self.session),
            "queue_depth": self.queue.depth(),
            "counters": {
                name: reg.counter_value(f"serve.{name}")
                for name in (
                    "received", "served", "rejected", "failed",
                    "batches", "coalesced", "retries", "gnn_served",
                )
            },
        }
