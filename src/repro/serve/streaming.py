"""Live-ingest serving: the daemon's bridge to a streaming engine.

:class:`StreamService` wraps one :class:`~repro.streaming.batch.
StreamingTeaEngine` for the HTTP front-end. Writes (``/stream/ingest``)
are serialised under a lock — the incremental HPAT is a single-mutator
structure — while reads (``/stream/walk``, ``/stream/recommend``) pin
an immutable :class:`~repro.streaming.snapshot.EpochView` and run
outside the lock: a view's arrays are frozen at publish time, so any
number of handler threads may walk them while the next batch applies.

That pin is the serving-side isolation contract: a request carrying
``"epoch": N`` gets bit-identical walks no matter how much ingest has
happened since epoch N was published (within the engine's retention
window; older epochs answer 410). Requests without an epoch pin the
newest view — never a half-applied batch.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.exceptions import (
    EpochRetiredError,
    GraphFormatError,
    NotSupportedError,
    ServeError,
)
from repro.serve.protocol import MAX_WALKS_PER_REQUEST, SERVE_SCHEMA
from repro.telemetry.registry import MetricsRegistry


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ServeError(message)


class StreamService:
    """Validated JSON handlers over one streaming engine."""

    def __init__(self, engine, registry: Optional[MetricsRegistry] = None):
        self.engine = engine
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._ingested = self.registry.counter(
            "serve.stream_edges", "edges accepted via /stream/ingest"
        )
        self._walked = self.registry.counter(
            "serve.stream_walks", "walks served from pinned epochs"
        )

    # -- GET /stream/epoch -------------------------------------------------

    def epoch_info(self) -> dict:
        with self._lock:
            view = self.engine.pin()
            return {
                "schema": SERVE_SCHEMA,
                "epoch": int(view.epoch),
                "num_edges": int(view.num_edges),
                "retained_epochs": len(self.engine._views),
                "durable": bool(self.engine.durable),
            }

    # -- POST /stream/ingest -----------------------------------------------

    def ingest(self, payload) -> dict:
        _require(isinstance(payload, dict), "request body must be a JSON object")
        columns = []
        for key in ("src", "dst", "time"):
            col = payload.get(key)
            _require(
                isinstance(col, (list, tuple)) and len(col) > 0,
                f"'{key}' must be a non-empty list",
            )
            _require(
                all(isinstance(x, (int, float)) and not isinstance(x, bool)
                    for x in col),
                f"'{key}' entries must be numbers",
            )
            columns.append(col)
        src, dst, times = columns
        _require(
            len(src) == len(dst) == len(times),
            "'src', 'dst' and 'time' must have equal lengths",
        )
        sync = payload.get("sync")
        _require(
            sync is None or isinstance(sync, bool),
            "'sync' must be a boolean when given",
        )
        with self._lock:
            try:
                out = self.engine.add_multiple_edges(src, dst, times, sync=sync)
            except (GraphFormatError, NotSupportedError) as exc:
                # Malformed columns or a stream-order violation: the
                # batch was rejected atomically — the client's fault.
                raise ServeError(str(exc))
        self._ingested.inc(out["edges"])
        return {
            "schema": SERVE_SCHEMA,
            "kind": "stream_ingest",
            "edges": int(out["edges"]),
            "epoch": int(out["epoch"]),
            "num_edges": int(out["num_edges"]),
        }

    # -- POST /stream/walk | /stream/recommend -----------------------------

    def walk(self, payload, kind: str) -> dict:
        _require(isinstance(payload, dict), "request body must be a JSON object")
        starts = payload.get("starts")
        _require(
            isinstance(starts, (list, tuple)) and len(starts) > 0,
            "'starts' must be a non-empty list of vertex ids",
        )
        _require(
            all(isinstance(v, int) and not isinstance(v, bool) and v >= 0
                for v in starts),
            "'starts' entries must be non-negative integers",
        )
        _require(
            len(starts) <= MAX_WALKS_PER_REQUEST,
            f"request exceeds {MAX_WALKS_PER_REQUEST} walks",
        )
        max_length = payload.get("max_length", 20)
        _require(isinstance(max_length, int) and max_length >= 1,
                 "'max_length' must be >= 1")
        seed = payload.get("seed", 0)
        _require(isinstance(seed, int), "'seed' must be an integer")
        epoch = payload.get("epoch")
        _require(epoch is None or isinstance(epoch, int),
                 "'epoch' must be an integer when given")
        top_k = payload.get("top_k", 5)
        _require(isinstance(top_k, int) and top_k >= 1, "'top_k' must be >= 1")
        with self._lock:
            try:
                view = self.engine.pin(epoch)
            except EpochRetiredError as exc:
                raise ServeError(str(exc), status=410)
        # Outside the lock: the view is immutable, ingest may proceed.
        paths = view.run_walks(starts, max_length=max_length, seed=seed)
        self._walked.inc(len(paths))
        response = {
            "schema": SERVE_SCHEMA,
            "kind": f"stream_{kind}",
            "epoch": int(view.epoch),
            "num_edges": int(view.num_edges),
            "num_walks": len(paths),
            "lengths": [p.num_edges for p in paths],
            "walks": [[int(v) for v in p.vertices] for p in paths],
            "times": [[float(t) for t in p.times[1:]] for p in paths],
        }
        if kind == "recommend":
            response["recommendations"] = self._recommend(
                paths, set(starts), top_k
            )
        return response

    @staticmethod
    def _recommend(paths, exclude, top_k: int) -> list:
        """Visit-count top-k, starts excluded, vertex-id tie-break."""
        counts: dict = {}
        for path in paths:
            for vertex in path.vertices[1:]:
                if vertex in exclude:
                    continue
                counts[vertex] = counts.get(vertex, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [[vertex, count] for vertex, count in ranked[:top_k]]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self.engine.close()
