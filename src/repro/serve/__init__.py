"""Walk-as-a-service: the `repro serve` daemon.

Long-lived serving over one prepared temporal graph: a bounded request
queue with admission control, a coalescing batcher that merges
concurrent compatible queries into single lane-seeded frontier runs
(bit-identical to solo execution), and a stdlib HTTP front-end. See
``docs/serving.md``.
"""

from repro.serve.batcher import Batcher, PendingRequest, RequestQueue
from repro.serve.client import ServeClient
from repro.serve.executor import BatchExecutor
from repro.serve.protocol import SERVE_SCHEMA, WalkRequest, build_spec
from repro.serve.server import WalkService
from repro.serve.streaming import StreamService

__all__ = [
    "Batcher",
    "BatchExecutor",
    "PendingRequest",
    "RequestQueue",
    "ServeClient",
    "SERVE_SCHEMA",
    "StreamService",
    "WalkRequest",
    "WalkService",
    "build_spec",
]
