"""Request queue, admission control, and the coalescing batcher.

The daemon's concurrency model is deliberately simple: HTTP handler
threads *park* requests in a bounded :class:`RequestQueue` and block on
a per-request event; one :class:`Batcher` thread drains the queue,
groups compatible requests by :meth:`~repro.serve.protocol.WalkRequest.
batch_key`, and hands each group to the executor as a single frontier
run. Walk engines are not re-entrant (shared scratch arenas), so a
single consumer is both the safety argument and the batching
opportunity — everything that queues up while one batch runs coalesces
into the next.

Admission control is the queue bound: a full queue rejects at submit
time (the HTTP layer maps this to 429) rather than buffering unbounded
work. Telemetry conservation is the invariant the stress tests assert:

    serve.received == serve.served + serve.rejected + serve.failed

``received``/``rejected`` are counted inside the queue lock (handler
threads race on submit); ``served``/``failed`` only ever move in the
batcher thread.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

from repro.serve.protocol import WalkRequest
from repro.telemetry import events
from repro.telemetry.clock import monotonic
from repro.telemetry.registry import MetricsRegistry
from repro.walks.spec import WalkSpec


@dataclass
class PendingRequest:
    """A parked request: the handler thread waits on ``done``."""

    request: WalkRequest
    request_id: str
    spec: WalkSpec
    done: threading.Event = field(default_factory=threading.Event)
    response: Optional[dict] = None
    error: Optional[BaseException] = None

    def batch_key(self):
        return self.request.batch_key(self.spec)

    def resolve(self, response: Optional[dict], error: Optional[BaseException]):
        self.response = response
        self.error = error
        self.done.set()


class RequestQueue:
    """Bounded FIFO with atomic admission accounting."""

    def __init__(self, max_depth: int = 64, registry: Optional[MetricsRegistry] = None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = int(max_depth)
        self._cond = threading.Condition()
        self._items: "deque[PendingRequest]" = deque()
        self._closed = False
        self._paused = False
        registry = registry if registry is not None else MetricsRegistry()
        self._received = registry.counter(
            "serve.received", "requests that reached admission control"
        )
        self._rejected = registry.counter(
            "serve.rejected", "requests rejected by admission control (429)"
        )
        self._depth = registry.gauge("serve.queue_depth", "parked requests", agg="max")

    def submit(self, pending: PendingRequest) -> bool:
        """Admit or reject; both outcomes counted under the lock."""
        with self._cond:
            self._received.inc()
            if self._closed or len(self._items) >= self.max_depth:
                self._rejected.inc()
                return False
            self._items.append(pending)
            self._depth.set(len(self._items))
            self._cond.notify()
            return True

    def take(
        self, max_items: int, linger_s: float = 0.0, timeout: float = 0.2
    ) -> List[PendingRequest]:
        """Pop up to ``max_items``, blocking up to ``timeout`` for the
        first arrival then lingering ``linger_s`` to let stragglers
        coalesce (the wait releases the lock, so submits land).

        A paused queue never hands out items: the flag is checked under
        the same lock as :meth:`submit`, so once :meth:`pause` returns,
        requests park deterministically until :meth:`resume` — tests
        rely on this to stage exact batch compositions."""
        with self._cond:
            if self._paused or not self._items:
                self._cond.wait(timeout)
            if self._paused or not self._items:
                return []
            if linger_s > 0 and len(self._items) < max_items:
                deadline = monotonic() + linger_s
                while len(self._items) < max_items:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                if self._paused:
                    return []
            batch: List[PendingRequest] = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            self._depth.set(len(self._items))
            return batch

    def pause(self) -> None:
        """Park the queue: admitted requests are held, not handed out."""
        with self._cond:
            self._paused = True
            self._cond.notify_all()

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def close(self) -> None:
        """Stop admitting; wakes any waiting take()."""
        with self._cond:
            self._closed = True
            self._paused = False
            self._cond.notify_all()

    def depth(self) -> int:
        with self._cond:
            return len(self._items)


class Batcher(threading.Thread):
    """Single consumer thread: drain → group by batch key → execute.

    ``pause()``/``resume()`` gate draining (tests use this to fill the
    queue deterministically); :meth:`stop` performs a bounded-join
    shutdown, draining whatever is already parked so no admitted
    request is abandoned.
    """

    def __init__(
        self,
        queue: RequestQueue,
        executor,
        batch_window_ms: float = 2.0,
        max_batch: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(name="serve-batcher", daemon=True)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.queue = queue
        self.executor = executor
        self.linger_s = max(0.0, float(batch_window_ms)) / 1000.0
        self.max_batch = int(max_batch)
        registry = registry if registry is not None else MetricsRegistry()
        self._served = registry.counter("serve.served", "requests answered 200")
        self._failed = registry.counter("serve.failed", "requests failed in execution")
        self._batches = registry.counter("serve.batches", "frontier runs executed")
        self._coalesced = registry.counter(
            "serve.coalesced", "requests that shared a batch with another"
        )
        self._batch_size = registry.histogram(
            "serve.batch_size", "requests coalesced per frontier run"
        )
        self._stopping = threading.Event()

    # -- control -----------------------------------------------------------

    def pause(self) -> None:
        """Hold admitted requests in the queue (delegates to the queue's
        lock-synchronised gate, so the pause is deterministic)."""
        self.queue.pause()

    def resume(self) -> None:
        self.queue.resume()

    def stop(self, timeout: float = 10.0) -> bool:
        """Close admission, drain, and join; True iff the join was clean."""
        self._stopping.set()
        self.queue.close()
        self.join(timeout)
        return not self.is_alive()

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        while True:
            batch = self.queue.take(self.max_batch, self.linger_s, timeout=0.1)
            if not batch:
                if self._stopping.is_set() and self.queue.depth() == 0:
                    break
                continue
            self._execute_groups(batch)

    def _execute_groups(self, batch: List[PendingRequest]) -> None:
        groups: "dict[tuple, List[PendingRequest]]" = {}
        for pending in batch:
            groups.setdefault(pending.batch_key(), []).append(pending)
        for group in groups.values():
            self._batches.inc()
            self._batch_size.observe(len(group))
            if len(group) > 1:
                self._coalesced.inc(len(group))
            events.emit(
                "serve.batch",
                requests=len(group),
                walks=sum(p.request.num_walks for p in group),
            )
            try:
                self.executor.execute(group)
            except BaseException as exc:  # noqa: BLE001 - resolve waiters
                for pending in group:
                    self._failed.inc()
                    pending.resolve(None, exc)
            else:
                for pending in group:
                    self._served.inc()
                    pending.resolve(pending.response, None)
