"""Stdlib HTTP client for the walk service.

Connections are keep-alive and thread-local (``http.client`` over the
daemon's HTTP/1.1): one ``ServeClient`` can be shared by many client
threads, and each thread reuses its own persistent connection instead
of paying a TCP handshake per request — under a batched daemon, every
batch resolution wakes many clients at once, and simultaneous fresh
connects can overflow the listen backlog into 1 s SYN-retransmit
stalls. A dropped connection (daemon restart, timeout) is re-opened
transparently once. The typed helpers raise
:class:`~repro.exceptions.ServeError` carrying the HTTP status on any
non-200 answer; :meth:`ServeClient.post` returns the raw
``(status, payload)`` pair for callers (the stress test) that treat
429 as a legitimate outcome rather than an error.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Optional, Sequence, Tuple

from repro.exceptions import ServeError


class ServeClient:
    """Talks to one `repro serve` daemon."""

    def __init__(self, port: int, host: str = "127.0.0.1", timeout: float = 30.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._local = threading.local()

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            conn.connect()
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Drop this thread's persistent connection (if any)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            conn.close()

    def _request(self, method: str, path: str, body: Optional[dict]) -> Tuple[int, bytes]:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                # Stale keep-alive socket: reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def post(self, path: str, body: dict) -> Tuple[int, dict]:
        """Raw POST; returns ``(status, decoded_json)``, never raises on
        HTTP-level errors (connection errors still propagate)."""
        status, raw = self._request("POST", path, body)
        return status, json.loads(raw)

    def _post_ok(self, path: str, body: dict) -> dict:
        status, payload = self.post(path, body)
        if status != 200:
            raise ServeError(
                payload.get("error", f"HTTP {status}") if isinstance(payload, dict)
                else f"HTTP {status}",
                status=status,
            )
        return payload

    def _get_ok(self, path: str) -> bytes:
        status, raw = self._request("GET", path, None)
        if status != 200:
            raise ServeError(f"GET {path} -> HTTP {status}", status=status)
        return raw

    # -- typed endpoints ---------------------------------------------------

    def walk(self, starts: Sequence[int], **kwargs) -> dict:
        return self._post_ok("/walk", {"starts": list(starts), **kwargs})

    def recommend(self, starts: Sequence[int], **kwargs) -> dict:
        return self._post_ok("/recommend", {"starts": list(starts), **kwargs})

    def gnn_sample(
        self,
        nodes: Sequence[int],
        times: Sequence[float],
        fanouts: Sequence[int] = (10,),
        **kwargs,
    ) -> dict:
        return self._post_ok(
            "/gnn/sample",
            {"nodes": list(nodes), "times": list(times),
             "fanouts": list(fanouts), **kwargs},
        )

    def healthz(self) -> dict:
        return json.loads(self._get_ok("/healthz"))

    def stats(self) -> dict:
        return json.loads(self._get_ok("/stats"))

    def metrics(self) -> str:
        return self._get_ok("/metrics").decode()
