"""Request/response schema for the walk service.

One wire format, three request kinds:

* ``walk`` — run temporal random walks from the given start vertices
  and return the sampled paths (or just lengths);
* ``recommend`` — same walk execution, aggregated server-side into a
  visit-count top-k per the e-commerce recommendation recipe;
* ``gnn_sample`` — temporal neighbor blocks from the GNN sampler
  (served per-request, never coalesced: the sampler draws from one
  generator, so sharing a batch would entangle request randomness).

The batching contract lives here too: a request's randomness is fully
determined by its own ``seed``. :meth:`WalkRequest.lane_seeds` derives
one counter-based lane seed per walk from it (exactly what a solo run
uses), so the batcher may concatenate any set of requests sharing a
:meth:`WalkRequest.batch_key` into one frontier run and every request
still receives bit-identical walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.engines.session import _spec_key
from repro.exceptions import ServeError
from repro.rng import make_rng, spawn_seeds
from repro.walks.apps import (
    DEFAULT_EXP_SCALE,
    exponential_walk,
    linear_walk,
    temporal_node2vec,
    unbiased_walk,
)
from repro.walks.spec import WalkSpec

#: Schema stamp included in every response envelope.
SERVE_SCHEMA = "tea-repro/serve/v1"

#: Hard per-request walk cap: a single request may not monopolise the
#: batcher (admission control bounds queue *depth*; this bounds width).
MAX_WALKS_PER_REQUEST = 100_000

APPS = ("linear", "exponential", "node2vec", "unbiased")


def build_spec(
    app: str,
    scale: Optional[float] = None,
    p: Optional[float] = None,
    q: Optional[float] = None,
    time_window: Optional[Tuple[float, float]] = None,
) -> WalkSpec:
    """Build the :class:`WalkSpec` for a request's application knobs."""
    if app == "linear":
        return linear_walk(time_window=time_window)
    if app == "unbiased":
        return unbiased_walk(time_window=time_window)
    if app == "exponential":
        return exponential_walk(
            scale=scale if scale is not None else DEFAULT_EXP_SCALE,
            time_window=time_window,
        )
    if app == "node2vec":
        return temporal_node2vec(
            p=p if p is not None else 0.5,
            q=q if q is not None else 2.0,
            scale=scale if scale is not None else DEFAULT_EXP_SCALE,
            time_window=time_window,
        )
    raise ServeError(f"unknown app {app!r}; expected one of {APPS}")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ServeError(message)


@dataclass(frozen=True)
class WalkRequest:
    """One validated walk/recommend query.

    ``starts`` are the request's start vertices; each is walked
    ``walks_per_vertex`` times, so the request contributes
    ``len(starts) * walks_per_vertex`` lanes to whichever batch it
    joins.
    """

    kind: str  # "walk" | "recommend"
    starts: Tuple[int, ...]
    app: str = "exponential"
    walks_per_vertex: int = 1
    max_length: int = 20
    stop_probability: float = 0.0
    seed: int = 0
    scale: Optional[float] = None
    p: Optional[float] = None
    q: Optional[float] = None
    time_window: Optional[Tuple[float, float]] = None
    record_paths: bool = True
    top_k: int = 5

    # -- construction ------------------------------------------------------

    @classmethod
    def from_json(cls, payload, kind: str = "walk") -> "WalkRequest":
        """Validate a decoded JSON body; raises :class:`ServeError` (→ 400)."""
        _require(isinstance(payload, dict), "request body must be a JSON object")
        starts = payload.get("starts")
        _require(
            isinstance(starts, (list, tuple)) and len(starts) > 0,
            "'starts' must be a non-empty list of vertex ids",
        )
        _require(
            all(isinstance(v, int) and not isinstance(v, bool) and v >= 0
                for v in starts),
            "'starts' entries must be non-negative integers",
        )
        app = payload.get("app", "exponential")
        _require(app in APPS, f"'app' must be one of {APPS}, got {app!r}")
        wpv = payload.get("walks_per_vertex", 1)
        _require(isinstance(wpv, int) and wpv >= 1, "'walks_per_vertex' must be >= 1")
        max_length = payload.get("max_length", 20)
        _require(isinstance(max_length, int) and max_length >= 1,
                 "'max_length' must be >= 1")
        stop_p = float(payload.get("stop_probability", 0.0))
        _require(0.0 <= stop_p < 1.0, "'stop_probability' must be in [0, 1)")
        seed = payload.get("seed", 0)
        _require(isinstance(seed, int), "'seed' must be an integer")
        window = payload.get("time_window")
        if window is not None:
            _require(
                isinstance(window, (list, tuple)) and len(window) == 2,
                "'time_window' must be a [lo, hi] pair",
            )
            window = (float(window[0]), float(window[1]))
        top_k = payload.get("top_k", 5)
        _require(isinstance(top_k, int) and top_k >= 1, "'top_k' must be >= 1")
        _require(
            len(starts) * wpv <= MAX_WALKS_PER_REQUEST,
            f"request exceeds {MAX_WALKS_PER_REQUEST} walks",
        )

        def _opt_float(key):
            value = payload.get(key)
            return None if value is None else float(value)

        return cls(
            kind=kind,
            starts=tuple(int(v) for v in starts),
            app=app,
            walks_per_vertex=wpv,
            max_length=max_length,
            stop_probability=stop_p,
            seed=seed,
            scale=_opt_float("scale"),
            p=_opt_float("p"),
            q=_opt_float("q"),
            time_window=window,
            record_paths=bool(payload.get("record_paths", True)),
            top_k=top_k,
        )

    # -- batching contract -------------------------------------------------

    def spec(self) -> WalkSpec:
        return build_spec(
            self.app, scale=self.scale, p=self.p, q=self.q,
            time_window=self.time_window,
        )

    @property
    def num_walks(self) -> int:
        return len(self.starts) * self.walks_per_vertex

    def expanded_starts(self) -> np.ndarray:
        """Start vertex per lane, ``walks_per_vertex`` lanes per start."""
        starts = np.asarray(self.starts, dtype=np.int64)
        return np.repeat(starts, self.walks_per_vertex)

    def lane_seeds(self) -> np.ndarray:
        """Per-lane counter seeds — the same derivation a solo run uses,
        so batch composition cannot perturb any lane's draws."""
        return spawn_seeds(make_rng(self.seed), self.num_walks)

    def batch_key(self, spec: Optional[WalkSpec] = None) -> Tuple:
        """Coalescing key: requests sharing it run in one frontier pass.

        The spec key covers (window, weight model, dynamic parameter);
        ``max_length`` and ``stop_probability`` join because they shape
        the frontier loop itself. ``record_paths``/``top_k``/``kind``
        stay out — they are post-processing and must not fragment
        batches.
        """
        spec = spec if spec is not None else self.spec()
        return (_spec_key(spec), self.max_length, self.stop_probability)
