"""Batch execution: one frontier run per coalesced request group.

The executor turns a group of parked requests (all sharing a batch key,
hence one prepared engine) into a single lane-seeded frontier run:

1. fetch the prepared engine from the :class:`~repro.engines.session.
   TeaSession` (LRU of hot HPATs / warm pools);
2. concatenate every request's expanded starts and per-request lane
   seeds (``spawn_seeds`` over the request's own seed — identical to a
   solo run, which is the whole parity argument);
3. run ``engine.run_lanes`` (vectorised / chunk-parallel engines) or a
   scalar per-lane loop (the ``tea`` engine kind);
4. split the columnar result back into per-request responses.

The parallel path runs through the supervised chunk executor, so the
PR 4 resilience machinery (retry, backend degradation) operates under
the server; chunk retries surface as the ``serve.retries`` counter.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.engines.batch import FrontierResult
from repro.engines.session import TeaSession
from repro.exceptions import ServeError
from repro.sampling.counters import CostCounters
from repro.serve.batcher import PendingRequest
from repro.serve.protocol import SERVE_SCHEMA
from repro.telemetry.registry import MetricsRegistry


class BatchExecutor:
    """Executes coalesced request groups against a :class:`TeaSession`."""

    def __init__(self, session: TeaSession, registry: Optional[MetricsRegistry] = None):
        self.session = session
        self.registry = registry
        self._retries = (
            registry.counter(
                "serve.retries", "chunk retries absorbed while serving"
            )
            if registry is not None
            else None
        )
        self._gnn_samplers: dict = {}
        self._gnn_lock = threading.Lock()

    # -- walk / recommend --------------------------------------------------

    def execute(self, group: List[PendingRequest]) -> None:
        """Run one frontier pass for ``group``; fills each response."""
        spec = group[0].spec
        engine = self.session.engine_for(spec)
        starts = np.concatenate([p.request.expanded_starts() for p in group])
        seeds = np.concatenate([p.request.lane_seeds() for p in group])
        max_length = group[0].request.max_length
        stop_probability = group[0].request.stop_probability
        keep_hops = any(
            p.request.record_paths or p.request.kind == "recommend" for p in group
        )
        if hasattr(engine, "run_lanes"):
            frontier = engine.run_lanes(
                starts,
                seeds,
                max_length,
                stop_probability=stop_probability,
                keep_hops=keep_hops,
                registry=self.registry,
            )
        else:
            frontier = self._run_scalar(
                engine, starts, seeds, max_length, stop_probability, keep_hops
            )
        last_events = getattr(engine, "last_events", None)
        if self._retries is not None and last_events:
            self._retries.inc(int(last_events.get("chunk_retries", 0)))
        offset = 0
        for pending in group:
            n = pending.request.num_walks
            pending.response = self._encode(
                pending, frontier, offset, offset + n, batched_with=len(group)
            )
            offset += n

    def _run_scalar(
        self, engine, starts, seeds, max_length, stop_probability, keep_hops
    ) -> FrontierResult:
        """Per-lane scalar loop for the ``tea`` engine kind.

        Each lane walks with its own generator seeded from its lane
        seed, so — like the vectorised path — batch composition is
        invisible to the sampled edges.
        """
        counters = CostCounters()
        num = int(starts.size)
        lengths = np.zeros(num, dtype=np.int64)
        hop_vertex = hop_time = None
        if keep_hops:
            hop_vertex = np.zeros((num, int(max_length)), dtype=np.int64)
            hop_time = np.zeros((num, int(max_length)), dtype=np.float64)
        for i in range(num):
            rng = np.random.default_rng(int(seeds[i]))
            walker = engine._walk_one(
                int(starts[i]), int(max_length), rng, counters, stop_probability
            )
            hops = walker.hops[1:]
            lengths[i] = len(hops)
            if keep_hops:
                for j, (vertex, t) in enumerate(hops):
                    hop_vertex[i, j] = vertex
                    hop_time[i, j] = t
        return FrontierResult(
            starts=starts, lengths=lengths, hop_vertex=hop_vertex, hop_time=hop_time
        )

    def _encode(
        self,
        pending: PendingRequest,
        frontier: FrontierResult,
        lo: int,
        hi: int,
        batched_with: int,
    ) -> dict:
        request = pending.request
        lengths = frontier.lengths[lo:hi]
        response = {
            "schema": SERVE_SCHEMA,
            "kind": request.kind,
            "run_id": pending.request_id,
            "num_walks": int(hi - lo),
            "lengths": [int(n) for n in lengths],
            "batched_with": int(batched_with),
            "engine": self.session.engine_kind,
        }
        if request.record_paths and frontier.hop_vertex is not None:
            walks, times = [], []
            starts = frontier.starts[lo:hi]
            for i in range(hi - lo):
                n = int(lengths[i])
                walks.append(
                    [int(starts[i])]
                    + [int(v) for v in frontier.hop_vertex[lo + i, :n]]
                )
                times.append([float(t) for t in frontier.hop_time[lo + i, :n]])
            response["walks"] = walks
            response["times"] = times
        if request.kind == "recommend":
            response["recommendations"] = self._recommend(
                request, frontier, lo, hi
            )
        return response

    @staticmethod
    def _recommend(request, frontier: FrontierResult, lo: int, hi: int) -> list:
        """Visit-count top-k over the request's walks, starts excluded.

        Ties break on vertex id so the ranking is deterministic — the
        chaos test compares recommendations bit-for-bit across retries.
        """
        if frontier.hop_vertex is None:
            return []
        exclude = set(request.starts)
        counts: dict = {}
        for i in range(lo, hi):
            n = int(frontier.lengths[i])
            for vertex in frontier.hop_vertex[i, :n]:
                vertex = int(vertex)
                if vertex in exclude:
                    continue
                counts[vertex] = counts.get(vertex, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [[vertex, count] for vertex, count in ranked[: request.top_k]]

    # -- GNN sampling ------------------------------------------------------

    def gnn_sample(self, payload) -> dict:
        """Serve one temporal-neighbor-block query (never coalesced)."""
        from repro.gnn.sampler import TemporalNeighborSampler

        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        nodes = payload.get("nodes")
        if not isinstance(nodes, (list, tuple)) or not nodes:
            raise ServeError("'nodes' must be a non-empty list of vertex ids")
        times = payload.get("times")
        if not isinstance(times, (list, tuple)) or len(times) != len(nodes):
            raise ServeError("'times' must align with 'nodes'")
        fanouts = payload.get("fanouts", [10])
        if not isinstance(fanouts, (list, tuple)) or not fanouts:
            raise ServeError("'fanouts' must be a non-empty list")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise ServeError("'seed' must be an integer")
        recency_scale = payload.get("recency_scale")
        key = float(recency_scale) if recency_scale is not None else None
        with self._gnn_lock:
            sampler = self._gnn_samplers.get(key)
            if sampler is None:
                sampler = TemporalNeighborSampler(
                    self.session.graph, recency_scale=key, seed=0
                )
                self._gnn_samplers[key] = sampler
            blocks = sampler.sample_blocks(
                [int(v) for v in nodes],
                [float(t) for t in times],
                [int(k) for k in fanouts],
                rng=np.random.default_rng(seed),
            )
        return {
            "schema": SERVE_SCHEMA,
            "kind": "gnn_sample",
            "blocks": [
                {
                    "seeds": block.seeds.tolist(),
                    "seed_times": block.seed_times.tolist(),
                    "neighbors": block.neighbors.tolist(),
                    "times": block.times.tolist(),
                    "mask": block.mask.astype(int).tolist(),
                }
                for block in blocks
            ],
        }
