"""Strong-scaling sweep and smoke check for the parallel executor.

``python -m repro.parallel.scaling`` runs a worker-count sweep on a
synthetic graph and prints (or writes) the scaling table the walk
benchmarks also produce. ``--smoke`` runs the fast invariant check the
``make scaling-smoke`` target gates on:

* bit-determinism — total sampled steps are identical across worker
  counts (chunking, not scheduling, keys the randomness);
* telemetry conservation — the ``parallel.worker_steps`` fold and the
  merged ``sampling.steps`` counter both equal the serial run's steps;
* no regression — 2-worker wall time is no worse than 1-worker on
  multi-core hosts (on single-core hosts only a looser floor is
  asserted, since true parallel speedup is physically unavailable).
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engines.base import Workload
from repro.parallel.engine import ParallelBatchTeaEngine
from repro.telemetry import MetricsRegistry

#: Wall-time floor asserted by the smoke check when the host cannot run
#: workers concurrently (cpu_count == 1): dispatch overhead must not
#: cost more than ~60% of throughput on a millisecond-scale workload
#: (the margin absorbs scheduler jitter at these tiny wall times).
SINGLE_CORE_FLOOR = 0.4


@dataclass
class ScalingRow:
    """One sweep point: a full run at a fixed worker count."""

    workers: int
    backend: str
    share_mode: str
    chunks: int
    steps: int
    walk_seconds: float
    speedup: float
    queue_wait_share: float

    def snapshot(self) -> dict:
        return {
            "workers": self.workers,
            "backend": self.backend,
            "share_mode": self.share_mode,
            "chunks": self.chunks,
            "steps": self.steps,
            "walk_s": round(self.walk_seconds, 4),
            "speedup": round(self.speedup, 3),
            "queue_wait_share": round(self.queue_wait_share, 4),
        }


def run_scaling(
    graph,
    spec,
    workload: Workload,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    chunk_size: Optional[int] = None,
    backend: str = "auto",
    share_mode: str = "auto",
    seed: int = 0,
) -> List[ScalingRow]:
    """Run ``workload`` once per worker count; speedup is vs the first.

    ``chunk_size`` defaults to the *largest* swept worker count's
    default so every run uses one identical chunk plan — the
    determinism contract then guarantees identical sampled walks, and
    the sweep isolates pure execution scaling.
    """
    rows: List[ScalingRow] = []
    base_wall: Optional[float] = None
    if chunk_size is None:
        # Probe the workload size the way the engine does, to pin one
        # plan across the sweep.
        from repro.parallel.chunks import default_chunk_size
        from repro.rng import make_rng

        num = workload.resolve_starts(graph.num_vertices, make_rng(seed)).size
        chunk_size = default_chunk_size(num, max(worker_counts))
    for workers in worker_counts:
        engine = ParallelBatchTeaEngine(
            graph, spec, workers=workers, chunk_size=chunk_size,
            backend=backend, share_mode=share_mode,
        )
        registry = MetricsRegistry()
        result = engine.run(workload, seed=seed, record_paths=False,
                            registry=registry)
        wall = result.walk_seconds
        if base_wall is None:
            base_wall = wall
        wait_hist = registry.histogram(
            "parallel.queue_wait_seconds",
            "delay between chunk enqueue and execution start",
        )
        chunks = int(registry.counter_value("parallel.chunks"))
        # Average fraction of the walk phase a chunk spent enqueued
        # (mean wait / wall): ~0.5 for a fully serialised queue,
        # approaching 0 when workers drain chunks as they arrive.
        mean_wait = (wait_hist.total / chunks) if chunks else 0.0
        rows.append(ScalingRow(
            workers=workers,
            backend=engine.last_backend or backend,
            share_mode=engine.last_share_mode or share_mode,
            chunks=chunks,
            steps=result.counters.steps,
            walk_seconds=wall,
            speedup=(base_wall / wall) if wall else 1.0,
            queue_wait_share=(mean_wait / wall) if wall else 0.0,
        ))
    return rows


def format_scaling_table(rows: List[ScalingRow], title: str = "") -> str:
    header = ("workers", "backend", "share", "chunks", "steps",
              "walk_s", "speedup", "q_wait")
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(f"{h:>8}" for h in header))
    for row in rows:
        snap = row.snapshot()
        lines.append("  ".join(
            f"{str(snap[key]):>8}" for key in (
                "workers", "backend", "share_mode", "chunks", "steps",
                "walk_s", "speedup", "queue_wait_share",
            )
        ))
    return "\n".join(lines)


def scaling_smoke(verbose: bool = True) -> List[ScalingRow]:
    """The ``make scaling-smoke`` check: tiny graph, workers 1 and 2.

    Raises ``AssertionError`` on any invariant violation; returns the
    sweep rows for display.
    """
    from repro.graph.datasets import load_dataset
    from repro.parallel.chunks import default_chunk_size
    from repro.rng import make_rng
    from repro.walks.apps import exponential_walk

    graph = load_dataset("growth", scale=0.25, seed=7)
    spec = exponential_walk(scale=2.0)
    workload = Workload(walks_per_vertex=2, max_length=40)
    # One chunk plan for every run below: determinism is keyed by the
    # plan, so the serial reference and both sweep points must chunk
    # identically for the step counts to be comparable bit-for-bit.
    num_walks = workload.resolve_starts(graph.num_vertices, make_rng(0)).size
    chunk_size = default_chunk_size(num_walks, 2)

    # Serial reference for the conservation invariant.
    serial = ParallelBatchTeaEngine(graph, spec, workers=1, backend="serial",
                                    chunk_size=chunk_size)
    serial_registry = MetricsRegistry()
    serial_result = serial.run(workload, seed=0, record_paths=False,
                               registry=serial_registry)
    serial_steps = serial_result.counters.steps

    # Timing sweep: on a single-core host true speedup is physically
    # unavailable and fork startup (~tens of ms) swamps a ~10 ms walk
    # phase, so the wall-clock check runs on the thread backend there
    # (near-zero dispatch overhead) with a looser floor. The process
    # backend is still exercised below by the conservation check.
    cores = os.cpu_count() or 1
    sweep_backend = "auto" if cores >= 2 else "thread"
    rows = run_scaling(graph, spec, workload, worker_counts=(1, 2),
                       chunk_size=chunk_size, backend=sweep_backend, seed=0)

    for row in rows:
        assert row.steps == serial_steps, (
            f"determinism violated: {row.workers}-worker run took "
            f"{row.steps} steps, serial took {serial_steps}"
        )
    # Telemetry conservation: the per-worker fold must account for
    # every step exactly once.
    engine = ParallelBatchTeaEngine(graph, spec, workers=2,
                                    chunk_size=chunk_size)
    registry = MetricsRegistry()
    result = engine.run(workload, seed=0, record_paths=False, registry=registry)
    worker_fold = registry.histogram(
        "parallel.worker_steps", "sampling steps per worker (fold of chunks)"
    ).total
    assert int(worker_fold) == serial_steps, (
        f"worker_steps fold {int(worker_fold)} != serial steps {serial_steps}"
    )
    assert int(registry.counter_value("sampling.steps")) == serial_steps
    assert result.counters.steps == serial_steps

    speedup = rows[-1].speedup
    if cores >= 2:
        assert speedup >= 1.0, (
            f"2-worker speedup {speedup:.2f}x regressed below 1.0x "
            f"on a {cores}-core host"
        )
    else:
        assert speedup >= SINGLE_CORE_FLOOR, (
            f"2-worker speedup {speedup:.2f}x below the single-core "
            f"overhead floor {SINGLE_CORE_FLOOR}x"
        )
    if verbose:
        print(format_scaling_table(rows, title="scaling smoke (growth@0.25)"))
        print(f"steps conserved: {serial_steps} across serial/1w/2w; "
              f"2-worker speedup {speedup:.2f}x on {cores} core(s)")
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="parallel walk executor scaling sweep"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fast invariant check (make scaling-smoke)")
    parser.add_argument("--dataset", default="growth")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke:
        scaling_smoke(verbose=True)
        return 0

    from repro.graph.datasets import load_dataset
    from repro.walks.apps import exponential_walk

    graph = load_dataset(args.dataset, scale=args.scale, seed=7)
    spec = exponential_walk(scale=2.0)
    workload = Workload(walks_per_vertex=2, max_length=80)
    rows = run_scaling(
        graph, spec, workload, worker_counts=args.workers,
        chunk_size=args.chunk_size, backend=args.backend, seed=args.seed,
    )
    print(format_scaling_table(
        rows, title=f"parallel scaling ({args.dataset}@{args.scale})"
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
