"""Strong-scaling sweep, smoke check, and speedup gate for the
parallel executor.

``python -m repro.parallel.scaling`` runs a worker-count sweep on a
synthetic graph and prints (or writes) the scaling table the walk
benchmarks also produce. Each sweep point runs its engine **twice** —
a cold run that builds the warm pool and a warm run that reuses it —
so the table separates steady-state walk time (what the executor
optimises) from one-time pool spin-up, and demonstrates the reuse
contract (``warm_pool_s == 0`` on the second run).

``--smoke`` runs the fast invariant check the ``make scaling-smoke``
target gates on:

* bit-determinism — total sampled steps are identical across worker
  counts (per-walk seeding keys the randomness, not scheduling);
* telemetry conservation — the ``parallel.worker_steps`` fold and the
  merged ``sampling.steps`` counter both equal the serial run's steps;
* warm-pool reuse — the second run of a multi-worker engine pays zero
  pool startup and reports ``pool.reuse``;
* no regression — 2-worker warm wall time is no worse than 1-worker on
  multi-core hosts (on single-core hosts only a looser floor is
  asserted, since true parallel speedup is physically unavailable).

``--gate`` runs the heavyweight speedup gate: a workload calibrated to
≥2 s of serial walking, swept through process workers, recorded into
the bench history (``bench_results/history/walk_scaling_gate.jsonl``),
and asserted to reach >2x speedup at 4 workers. Hosts with fewer than
4 cores record a skip note instead of a meaningless failure.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engines.base import Workload
from repro.parallel.engine import ParallelBatchTeaEngine
from repro.telemetry import MetricsRegistry

#: Wall-time floor asserted by the smoke check when the host cannot run
#: workers concurrently (cpu_count == 1): dispatch overhead must not
#: cost more than ~60% of throughput on a millisecond-scale workload
#: (the margin absorbs scheduler jitter at these tiny wall times).
SINGLE_CORE_FLOOR = 0.4

#: Cores the speedup gate needs before its 2x assertion is physical.
GATE_MIN_CORES = 4

#: Serial walk seconds the gate workload is calibrated to reach: big
#: enough that pool/dispatch overhead is noise against real work.
GATE_MIN_SERIAL_SECONDS = 2.0

#: Speedup the gate requires from 4 process workers on a gate-sized
#: workload (the ISSUE's acceptance bar).
GATE_SPEEDUP_FLOOR = 2.0


@dataclass
class ScalingRow:
    """One sweep point: cold + warm runs at a fixed worker count.

    ``walk_seconds``/``speedup`` describe the *warm* (steady-state) run;
    ``cold_walk_seconds`` and ``pool_startup_seconds`` show what the
    first run additionally paid, and ``warm_startup_seconds`` is the
    reuse contract (0.0 when the warm run found its pool alive).
    """

    workers: int
    backend: str
    share_mode: str
    chunks: int
    steps: int
    walk_seconds: float
    speedup: float
    queue_wait_share: float
    cold_walk_seconds: float = 0.0
    pool_startup_seconds: float = 0.0
    warm_startup_seconds: float = 0.0
    pool_reuses: int = 0

    def snapshot(self) -> dict:
        return {
            "workers": self.workers,
            "backend": self.backend,
            "share_mode": self.share_mode,
            "chunks": self.chunks,
            "steps": self.steps,
            "walk_s": round(self.walk_seconds, 4),
            "speedup": round(self.speedup, 3),
            "queue_wait_share": round(self.queue_wait_share, 4),
            "cold_walk_s": round(self.cold_walk_seconds, 4),
            "pool_startup_s": round(self.pool_startup_seconds, 4),
            "warm_startup_s": round(self.warm_startup_seconds, 4),
            "pool_reuses": self.pool_reuses,
        }


def run_scaling(
    graph,
    spec,
    workload: Workload,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    chunk_size: Optional[int] = None,
    backend: str = "auto",
    share_mode: str = "auto",
    seed: int = 0,
    warm_runs: bool = True,
    skip_oversubscribed: bool = True,
    notes: Optional[List[str]] = None,
) -> List[ScalingRow]:
    """Run ``workload`` per worker count; speedup is vs the first row.

    Each executed count runs twice against one engine: cold (pool
    build + attach) then warm (pool reuse); ``walk_seconds`` and
    ``speedup`` come from the warm run, the cold costs ride along in
    their own columns. Per-walk seeding makes every run bit-identical
    regardless of chunking, so ``chunk_size=None`` simply engages the
    adaptive planner.

    ``skip_oversubscribed`` drops worker counts above ``os.cpu_count()``
    — oversubscribed points measure scheduler thrash, not scaling — and
    records why in ``notes`` (pass a list to collect them).
    """
    rows: List[ScalingRow] = []
    base_wall: Optional[float] = None
    cores = os.cpu_count() or 1
    for workers in worker_counts:
        if skip_oversubscribed and workers > max(1, cores):
            note = (f"skipped workers={workers}: exceeds cpu_count={cores} "
                    f"(oversubscription measures scheduler thrash)")
            if notes is not None:
                notes.append(note)
            continue
        engine = ParallelBatchTeaEngine(
            graph, spec, workers=workers, chunk_size=chunk_size,
            backend=backend, share_mode=share_mode,
        )
        try:
            cold_registry = MetricsRegistry()
            cold = engine.run(workload, seed=seed, record_paths=False,
                              registry=cold_registry)
            pool_startup = float(engine.last_pool["startup_seconds"])
            if warm_runs:
                registry = MetricsRegistry()
                result = engine.run(workload, seed=seed, record_paths=False,
                                    registry=registry)
            else:
                registry, result = cold_registry, cold
            warm_startup = float(engine.last_pool["startup_seconds"])
            pool_reuses = int(engine.last_pool["reuses"])
        finally:
            engine.close()
        wall = result.walk_seconds
        if base_wall is None:
            base_wall = wall
        wait_hist = registry.histogram(
            "parallel.queue_wait_seconds",
            "delay between chunk enqueue and execution start",
        )
        chunks = int(registry.counter_value("parallel.chunks"))
        # Average fraction of the walk phase a chunk spent enqueued
        # (mean wait / wall): ~0.5 for a fully serialised queue,
        # approaching 0 when workers drain chunks as they arrive.
        mean_wait = (wait_hist.total / chunks) if chunks else 0.0
        rows.append(ScalingRow(
            workers=workers,
            backend=engine.last_backend or backend,
            share_mode=engine.last_share_mode or share_mode,
            chunks=chunks,
            steps=result.counters.steps,
            walk_seconds=wall,
            speedup=(base_wall / wall) if wall else 1.0,
            queue_wait_share=(mean_wait / wall) if wall else 0.0,
            cold_walk_seconds=cold.walk_seconds,
            pool_startup_seconds=pool_startup,
            warm_startup_seconds=warm_startup if warm_runs else pool_startup,
            pool_reuses=pool_reuses,
        ))
    return rows


def format_scaling_table(rows: List[ScalingRow], title: str = "",
                         notes: Optional[Sequence[str]] = None) -> str:
    header = ("workers", "backend", "share", "chunks", "steps",
              "walk_s", "speedup", "q_wait", "cold_s", "pool_s", "warm_p_s")
    keys = ("workers", "backend", "share_mode", "chunks", "steps",
            "walk_s", "speedup", "queue_wait_share", "cold_walk_s",
            "pool_startup_s", "warm_startup_s")
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(f"{h:>8}" for h in header))
    for row in rows:
        snap = row.snapshot()
        lines.append("  ".join(f"{str(snap[key]):>8}" for key in keys))
    for note in notes or ():
        lines.append(f"note: {note}")
    return "\n".join(lines)


def scaling_smoke(verbose: bool = True) -> List[ScalingRow]:
    """The ``make scaling-smoke`` check: tiny graph, workers 1 and 2.

    Raises ``AssertionError`` on any invariant violation; returns the
    sweep rows for display.
    """
    from repro.graph.datasets import load_dataset
    from repro.parallel.chunks import default_chunk_size
    from repro.rng import make_rng
    from repro.walks.apps import exponential_walk

    graph = load_dataset("growth", scale=0.25, seed=7)
    spec = exponential_walk(scale=2.0)
    workload = Workload(walks_per_vertex=2, max_length=40)
    # Randomness is planned per walk, so the chunk size below only
    # shapes scheduling; it is pinned for stable chunk *counts* in the
    # conservation assertions.
    num_walks = workload.resolve_starts(graph.num_vertices, make_rng(0)).size
    chunk_size = default_chunk_size(num_walks, 2)

    # Serial reference for the conservation invariant.
    serial = ParallelBatchTeaEngine(graph, spec, workers=1, backend="serial",
                                    chunk_size=chunk_size)
    serial_registry = MetricsRegistry()
    serial_result = serial.run(workload, seed=0, record_paths=False,
                               registry=serial_registry)
    serial_steps = serial_result.counters.steps
    serial.close()

    # Timing sweep: on a single-core host true speedup is physically
    # unavailable and fork startup (~tens of ms) swamps a ~10 ms walk
    # phase, so the wall-clock check runs on the thread backend there
    # (near-zero dispatch overhead) with a looser floor. The process
    # backend is still exercised below by the conservation check.
    # skip_oversubscribed=False: the 2-worker point on a 1-core host is
    # exactly the overhead floor this smoke exists to measure.
    cores = os.cpu_count() or 1
    sweep_backend = "auto" if cores >= 2 else "thread"
    rows = run_scaling(graph, spec, workload, worker_counts=(1, 2),
                       chunk_size=chunk_size, backend=sweep_backend, seed=0,
                       warm_runs=True, skip_oversubscribed=False)

    for row in rows:
        assert row.steps == serial_steps, (
            f"determinism violated: {row.workers}-worker run took "
            f"{row.steps} steps, serial took {serial_steps}"
        )
    # Warm-pool reuse contract: the multi-worker engine's second run
    # must find its pool alive — zero startup, at least one reuse.
    multi = rows[-1]
    assert multi.warm_startup_seconds == 0.0, (
        f"warm run rebuilt its pool: startup "
        f"{multi.warm_startup_seconds:.4f}s (expected 0 — reuse broken)"
    )
    assert multi.pool_reuses >= 1, (
        "warm run reported no pool.reuse — pool lifecycle broken"
    )
    # Telemetry conservation: the per-worker fold must account for
    # every step exactly once.
    engine = ParallelBatchTeaEngine(graph, spec, workers=2,
                                    chunk_size=chunk_size)
    registry = MetricsRegistry()
    result = engine.run(workload, seed=0, record_paths=False, registry=registry)
    engine.close()
    worker_fold = registry.histogram(
        "parallel.worker_steps", "sampling steps per worker (fold of chunks)"
    ).total
    assert int(worker_fold) == serial_steps, (
        f"worker_steps fold {int(worker_fold)} != serial steps {serial_steps}"
    )
    assert int(registry.counter_value("sampling.steps")) == serial_steps
    assert result.counters.steps == serial_steps

    speedup = rows[-1].speedup
    if cores >= 2:
        assert speedup >= 1.0, (
            f"2-worker speedup {speedup:.2f}x regressed below 1.0x "
            f"on a {cores}-core host"
        )
    else:
        assert speedup >= SINGLE_CORE_FLOOR, (
            f"2-worker speedup {speedup:.2f}x below the single-core "
            f"overhead floor {SINGLE_CORE_FLOOR}x"
        )
    if verbose:
        print(format_scaling_table(rows, title="scaling smoke (growth@0.25)"))
        print(f"steps conserved: {serial_steps} across serial/1w/2w; "
              f"2-worker warm speedup {speedup:.2f}x on {cores} core(s); "
              f"warm pool reused (startup {multi.warm_startup_seconds:.4f}s)")
    return rows


def _gate_workload(graph, spec) -> Workload:
    """Scale walks until one serial run costs ≥GATE_MIN_SERIAL_SECONDS."""
    walks_per_vertex = 2
    while True:
        workload = Workload(walks_per_vertex=walks_per_vertex, max_length=80)
        engine = ParallelBatchTeaEngine(graph, spec, workers=1,
                                        backend="serial")
        result = engine.run(workload, seed=0, record_paths=False)
        engine.close()
        if result.walk_seconds >= GATE_MIN_SERIAL_SECONDS or \
                walks_per_vertex >= 512:
            return workload
        # Aim straight at the target with one multiplicative correction.
        factor = GATE_MIN_SERIAL_SECONDS / max(result.walk_seconds, 1e-6)
        walks_per_vertex = max(
            walks_per_vertex + 1, int(walks_per_vertex * factor * 1.2)
        )


def scaling_gate(verbose: bool = True) -> bool:
    """The ``make scaling-smoke`` speedup gate, recorded to history.

    On hosts with ≥:data:`GATE_MIN_CORES` cores: calibrate a ≥2 s-serial
    workload, sweep process workers (1, 2, 4) with warm pools, assert
    4-worker speedup > :data:`GATE_SPEEDUP_FLOOR` and that no point
    regresses below serial, and append the sweep to
    ``bench_results/history/walk_scaling_gate.jsonl``. On smaller hosts
    the gate is physically meaningless, so a skip record (with the core
    count) is appended instead and the check passes.

    Returns True when the gate actually ran (False = recorded skip).
    """
    from repro.benchhistory import append_record, make_record
    from repro.graph.datasets import load_dataset
    from repro.kernels import resolve_backend
    from repro.walks.apps import exponential_walk

    # Metrics must stay numeric; the active sampling-kernel backend
    # rides in meta so regressions can be attributed to backend flips.
    kernel_backend = resolve_backend("auto").name
    cores = os.cpu_count() or 1
    if cores < GATE_MIN_CORES:
        note = (f"scaling gate skipped: needs >= {GATE_MIN_CORES} cores for "
                f"the {GATE_SPEEDUP_FLOOR}x/4-worker assertion, host has "
                f"{cores}")
        append_record(make_record(
            "walk_scaling_gate",
            {"gate_ran": 0.0, "cpus": float(cores)},
            meta={"note": note, "kernel_backend": kernel_backend},
        ))
        if verbose:
            print(note)
        return False

    graph = load_dataset("growth", scale=1.0, seed=7)
    spec = exponential_walk(scale=2.0)
    workload = _gate_workload(graph, spec)
    notes: List[str] = []
    rows = run_scaling(graph, spec, workload, worker_counts=(1, 2, 4),
                       backend="process", seed=0, warm_runs=True,
                       notes=notes)
    by_workers = {row.workers: row for row in rows}
    metrics = {"gate_ran": 1.0, "cpus": float(cores)}
    for row in rows:
        metrics[f"walk_s_w{row.workers}"] = row.walk_seconds
        metrics[f"speedup_w{row.workers}"] = row.speedup
        metrics[f"pool_startup_s_w{row.workers}"] = row.pool_startup_seconds
    append_record(make_record(
        "walk_scaling_gate", metrics,
        meta={"workload": workload.describe(), "notes": notes,
              "kernel_backend": kernel_backend},
    ))
    if verbose:
        print(format_scaling_table(rows, title="scaling gate (growth@1.0)",
                                   notes=notes))
    for row in rows:
        assert row.speedup >= 1.0 or row.workers == 1, (
            f"parallelism regressed below serial: {row.workers} workers ran "
            f"{row.speedup:.2f}x"
        )
    gate_row = by_workers.get(4)
    assert gate_row is not None, "gate sweep lost its 4-worker point"
    assert gate_row.speedup > GATE_SPEEDUP_FLOOR, (
        f"4-worker speedup {gate_row.speedup:.2f}x <= "
        f"{GATE_SPEEDUP_FLOOR}x on a {cores}-core host "
        f"(serial walk {by_workers[1].walk_seconds:.2f}s)"
    )
    if verbose:
        print(f"gate passed: 4-worker speedup {gate_row.speedup:.2f}x "
              f"(> {GATE_SPEEDUP_FLOOR}x) on {cores} cores")
    return True


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="parallel walk executor scaling sweep"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fast invariant check (make scaling-smoke)")
    parser.add_argument("--gate", action="store_true",
                        help="speedup gate: >2x at 4 process workers on a "
                             "≥2s-serial workload, recorded to bench history "
                             "(skips with a note below 4 cores)")
    parser.add_argument("--dataset", default="growth")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke or args.gate:
        if args.smoke:
            scaling_smoke(verbose=True)
        if args.gate:
            scaling_gate(verbose=True)
        return 0

    from repro.graph.datasets import load_dataset
    from repro.walks.apps import exponential_walk

    graph = load_dataset(args.dataset, scale=args.scale, seed=7)
    spec = exponential_walk(scale=2.0)
    workload = Workload(walks_per_vertex=2, max_length=80)
    notes: List[str] = []
    rows = run_scaling(
        graph, spec, workload, worker_counts=args.workers,
        chunk_size=args.chunk_size, backend=args.backend, seed=args.seed,
        notes=notes,
    )
    print(format_scaling_table(
        rows, title=f"parallel scaling ({args.dataset}@{args.scale})",
        notes=notes,
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
