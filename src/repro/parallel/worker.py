"""Worker-side chunk execution for the parallel walk executor.

A worker — thread or forked process — owns nothing but a
:class:`WorkerContext`: the walk spec and the shared read-only image of
the prepared index. From it each worker builds one private
:class:`~repro.engines.batch.BatchTeaEngine` via
:meth:`~repro.engines.batch.BatchTeaEngine.from_prepared` (no index
rebuild, no array copies) and then serves :class:`ChunkTask` messages
for as long as the pool lives — the context is *static* so a warm pool
(:mod:`repro.parallel.pool`) can span many ``run()`` calls, while
everything run-scoped (start slices, per-walk seeds, walk parameters,
``run_id``) ships inside each task.

Every chunk execution carries a private :class:`CostCounters`, a private
:class:`MetricsRegistry`, and a private :class:`Tracer` — the
per-worker telemetry discipline (see :mod:`repro.sampling.counters`);
the engine folds all three at the join barrier. A chunk's randomness
comes exclusively from its walks' planned seeds (counter-based
:class:`~repro.rng.LaneRng` streams), so the produced walks are
independent of which worker ran it, in which pool generation, at what
chunk size.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.aux_index import AuxiliaryIndex
from repro.core.hpat import HierarchicalPAT
from repro.core.persist import HPAT_ARRAY_FIELDS
from repro.engines.batch import BatchTeaEngine, FrontierResult
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import LaneRng
from repro.sampling.counters import CostCounters
from repro.telemetry import (
    LATENCY_BUCKETS,
    EventLog,
    MetricsRegistry,
    PhaseProfiler,
    Span,
    Tracer,
    events,
)
from repro.telemetry.clock import monotonic as _monotonic
from repro.walks.spec import WalkSpec


@dataclass
class WorkerContext:
    """The *static* half of a worker's world, with zero-copy arrays.

    Holds only what stays fixed for the engine's lifetime — the spec,
    the shared index image, the fault injector — so a warm process pool
    can inherit it once at fork and keep serving runs. ``arrays`` maps
    prefixed names to the shared image:
    ``graph.indptr/nbr/etime[/eweight]`` (the spec-restricted CSR), the
    HPAT catalogue fields plus ``candidate_sizes``, and — when the spec
    has a prepared node2vec parameter — ``static.indptr/nbr/keys``. The
    backing may be shared-memory segments or the parent's own arrays
    inherited copy-on-write; workers cannot tell and do not care.
    """

    spec: WalkSpec
    aux_max: int
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Resolved kernel-backend *name* (never the backend object — it
    #: must survive pickling into process workers; each worker
    #: re-resolves locally, falling back if e.g. numba exists only in
    #: the parent).
    kernel_backend: str = "numpy"
    #: Optional :class:`repro.resilience.faults.FaultInjector` evaluated
    #: at the ``chunk`` site with key ``(chunk_id, attempt)`` — chaos
    #: plans crash/hang specific chunk attempts deterministically, in
    #: whichever backend (fork inherits it, threads share it).
    injector: object = None

    def build_engine(self) -> BatchTeaEngine:
        """Assemble a private engine over the shared arrays.

        The only per-worker allocation of note is
        ``TemporalGraph._neg_etime`` (|E| floats, recomputed by the
        constructor); the CSR, index, and candidate arrays are adopted
        as-is.
        """
        a = self.arrays
        graph = TemporalGraph(
            a["graph.indptr"], a["graph.nbr"], a["graph.etime"],
            eweight=a.get("graph.eweight"),
        )
        if "static.indptr" in a:
            graph._static_indptr = a["static.indptr"]
            graph._static_nbr = a["static.nbr"]
        aux = AuxiliaryIndex(self.aux_max) if self.aux_max >= 0 else None
        index = HierarchicalPAT(
            aux=aux, **{name: a[name] for name in HPAT_ARRAY_FIELDS}
        )
        return BatchTeaEngine.from_prepared(
            graph, self.spec, index, a["candidate_sizes"],
            static_keys=a.get("static.keys"),
            kernel_backend=self.kernel_backend,
        )


@dataclass
class ChunkTask:
    """One chunk of walks, fully self-describing, shipped per dispatch.

    Carries the run-scoped state a warm worker cannot inherit: the
    chunk's start/seed slices (small — ``chunk_size`` ints each), the
    walk parameters, and the parent's ``run_id`` so a pool that outlives
    runs stamps events with the *current* run, not the one it was warmed
    under. ``enqueue_ts`` is taken at submit, after the pool is warm —
    the resulting ``queue_wait_seconds`` measures only time spent
    unclaimed in the queue (pool spin-up and shm attach are accounted
    separately by :mod:`repro.parallel.pool`).
    """

    chunk_id: int
    starts: np.ndarray
    seeds: np.ndarray
    max_length: int
    stop_probability: float
    keep_hops: bool
    interleave: int = 1
    run_id: Optional[str] = None
    profile: bool = False
    enqueue_ts: float = 0.0
    attempt: int = 0


@dataclass
class ChunkResult:
    """One chunk's walks plus its private telemetry, ready to fold.

    ``lengths``/``hop_vertex``/``hop_time`` are the chunk's slice of the
    columnar frontier output (hop columns trimmed to the chunk's longest
    walk so process workers ship minimal bytes). ``spans`` are the
    worker tracer's finished roots — the engine adopts them under its
    ``walk`` span at the barrier.
    """

    chunk_id: int
    num_walks: int
    lengths: np.ndarray
    hop_vertex: Optional[np.ndarray]
    hop_time: Optional[np.ndarray]
    counters: CostCounters
    registry: MetricsRegistry
    spans: List[Span]
    queue_wait_seconds: float
    wall_seconds: float
    worker_label: str
    #: Events recorded *during this chunk* in a forked process worker,
    #: shipped back for the engine to fold into the parent's log.
    #: Thread/serial chunks leave this empty — they append into the
    #: shared parent log directly.
    events: List[dict] = field(default_factory=list)
    #: Per-chunk profiler snapshot (``ChunkTask.profile`` only).
    profile: Optional[dict] = None

    @property
    def total_steps(self) -> int:
        return int(self.lengths.sum())


def worker_label() -> str:
    """Stable identity of the executing worker for per-worker metrics."""
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


def execute_chunk(
    engine: BatchTeaEngine, ctx: WorkerContext, task: ChunkTask
) -> ChunkResult:
    """Walk ``task``'s chunk to completion.

    Runs the same frontier kernel as the serial engine, with per-walk
    :class:`~repro.rng.LaneRng` streams keyed on the task's seed slice;
    telemetry goes to private per-chunk instances.

    ``task.attempt`` is the supervisor's retry ordinal: it keys fault
    injection only — the chunk's randomness still comes exclusively
    from its walks' planned seeds, so a retried chunk reproduces its
    exact paths (bit-determinism survives crashes, pool rebuilds, and
    backend degradation).
    """
    t0 = _monotonic()
    queue_wait = max(0.0, t0 - task.enqueue_ts)
    # Event shipping: thread/serial chunks emit straight into the
    # parent's installed log; a forked process worker emits into its own
    # log and ships only the events recorded during this chunk back on
    # the result. A warm worker may have been forked under an earlier
    # run (or before any run): re-stamp its log whenever the task's
    # run_id differs.
    in_child = multiprocessing.parent_process() is not None
    log = events.current()
    if in_child and task.run_id is not None and (
        log is None or log.run_id != task.run_id
    ):
        events.install(EventLog(run_id=task.run_id))
        log = events.current()
    event_mark = len(log) if (log is not None and in_child) else 0
    if ctx.injector is not None:
        ctx.injector.check("chunk", key=(task.chunk_id, task.attempt))
    lane_rng = LaneRng(task.seeds)
    counters = CostCounters()
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True)
    # Per-chunk profiler, same discipline as registry/tracer: private to
    # the chunk, folded by the engine at the barrier. calibrate=False —
    # the per-event cost is measured once per process and cached.
    profiler = PhaseProfiler(calibrate=False) if task.profile else None
    frontier_hist = registry.histogram(
        "batch.frontier_size", "active walkers per frontier iteration"
    )
    label = worker_label()
    rng = np.random.default_rng(0)  # unused: draws come from lane_rng
    with tracer.span(
        "walk.chunk", chunk=task.chunk_id, walks=task.starts.size, worker=label
    ) as span:
        if profiler is not None:
            with profiler.phase("chunk_exec"):
                result: FrontierResult = engine._run_frontier(
                    task.starts, task.max_length, task.stop_probability,
                    rng, counters, task.keep_hops, frontier_hist,
                    profiler=profiler, lane_rng=lane_rng,
                    interleave=task.interleave,
                )
        else:
            result = engine._run_frontier(
                task.starts, task.max_length, task.stop_probability,
                rng, counters, task.keep_hops, frontier_hist,
                lane_rng=lane_rng, interleave=task.interleave,
            )
        span.set("steps", result.total_steps)
        span.set("queue_wait_seconds", round(queue_wait, 6))
    registry.histogram(
        "parallel.queue_wait_seconds",
        "delay between chunk enqueue and execution start",
        **LATENCY_BUCKETS,
    ).observe(queue_wait)
    events.emit(
        "chunk.exec", chunk_id=int(task.chunk_id), attempt=int(task.attempt),
        worker=label, walks=int(task.starts.size),
        steps=int(result.total_steps),
        queue_wait_seconds=round(queue_wait, 6),
    )

    hop_vertex = hop_time = None
    if result.hop_vertex is not None:
        # Trim hop columns to this chunk's longest walk: correctness is
        # row-wise (walk i uses columns [:lengths[i]]), and process
        # workers pickle the result back to the parent.
        width = int(result.lengths.max()) if result.lengths.size else 0
        hop_vertex = np.ascontiguousarray(result.hop_vertex[:, :width])
        hop_time = np.ascontiguousarray(result.hop_time[:, :width])
    return ChunkResult(
        chunk_id=task.chunk_id,
        num_walks=int(task.starts.size),
        lengths=result.lengths,
        hop_vertex=hop_vertex,
        hop_time=hop_time,
        counters=counters,
        registry=registry,
        spans=tracer.roots,
        queue_wait_seconds=queue_wait,
        wall_seconds=_monotonic() - t0,
        worker_label=label,
        events=(list(log.events[event_mark:])
                if (log is not None and in_child) else []),
        profile=profiler.snapshot() if profiler is not None else None,
    )


# -- process-backend entry points ------------------------------------------
#
# The process pool uses the fork start method: the initializer and its
# context argument reach children by inheritance (no pickling), and the
# shared image's mappings come along for free. Each child builds its
# engine once — at *pool* creation, not per run — so with a warm pool
# the attach cost below is paid exactly once per worker per engine
# lifetime; chunk tasks then cost one small ChunkTask pickle in and one
# ChunkResult pickle out.

_ENGINE: Optional[BatchTeaEngine] = None
_CONTEXT: Optional[WorkerContext] = None
_ATTACH_SECONDS: float = 0.0


def _process_init(ctx: WorkerContext) -> None:
    global _ENGINE, _CONTEXT, _ATTACH_SECONDS
    t0 = _monotonic()
    _CONTEXT = ctx
    _ENGINE = ctx.build_engine()
    _ATTACH_SECONDS = _monotonic() - t0


def _warmup_ping() -> tuple:
    """Pool warmup probe: forces the worker to exist (and so to have
    attached the shared image) and reports what the attach cost."""
    return os.getpid(), _ATTACH_SECONDS


def _process_chunk(task: ChunkTask) -> ChunkResult:
    assert _ENGINE is not None and _CONTEXT is not None, "worker not initialised"
    return execute_chunk(_ENGINE, _CONTEXT, task)
