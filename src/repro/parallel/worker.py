"""Worker-side chunk execution for the parallel walk executor.

A worker — thread or forked process — owns nothing but a
:class:`WorkerContext`: the walk parameters, the chunk plan's arrays,
and the shared read-only image of the prepared index. From it each
worker builds one private :class:`~repro.engines.batch.BatchTeaEngine`
via :meth:`~repro.engines.batch.BatchTeaEngine.from_prepared` (no index
rebuild, no array copies) and then runs chunks through the frontier
kernel.

Every chunk execution carries a private :class:`CostCounters`, a private
:class:`MetricsRegistry`, and a private :class:`Tracer` — the
per-worker telemetry discipline (see :mod:`repro.sampling.counters`);
the engine folds all three at the join barrier. A chunk's randomness
comes exclusively from its planned seed, so the produced walks are
independent of which worker ran it.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.aux_index import AuxiliaryIndex
from repro.core.hpat import HierarchicalPAT
from repro.core.persist import HPAT_ARRAY_FIELDS
from repro.engines.batch import BatchTeaEngine, FrontierResult
from repro.graph.temporal_graph import TemporalGraph
from repro.sampling.counters import CostCounters
from repro.telemetry import (
    LATENCY_BUCKETS,
    EventLog,
    MetricsRegistry,
    PhaseProfiler,
    Span,
    Tracer,
    events,
)
from repro.telemetry.clock import monotonic as _monotonic
from repro.walks.spec import WalkSpec


@dataclass
class WorkerContext:
    """Everything a worker needs to run chunks, with zero-copy arrays.

    ``arrays`` maps prefixed names to the shared image:
    ``graph.indptr/nbr/etime[/eweight]`` (the spec-restricted CSR), the
    HPAT catalogue fields plus ``candidate_sizes``, and — when the spec
    has a prepared node2vec parameter — ``static.indptr/nbr/keys``. The
    backing may be shared-memory segments or the parent's own arrays
    inherited copy-on-write; workers cannot tell and do not care.
    """

    spec: WalkSpec
    starts: np.ndarray
    seeds: np.ndarray
    max_length: int
    stop_probability: float
    keep_hops: bool
    aux_max: int
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Optional :class:`repro.resilience.faults.FaultInjector` evaluated
    #: at the ``chunk`` site with key ``(chunk_id, attempt)`` — chaos
    #: plans crash/hang specific chunk attempts deterministically, in
    #: whichever backend (fork inherits it, threads share it).
    injector: object = None
    #: Run correlation id: process workers install an
    #: :class:`~repro.telemetry.EventLog` with this id at pool init, so
    #: worker-side events carry the same ``run_id`` as the parent's.
    run_id: Optional[str] = None
    #: When set, every chunk profiles its frontier phases into a
    #: private :class:`PhaseProfiler` shipped back on the result.
    profile: bool = False

    def build_engine(self) -> BatchTeaEngine:
        """Assemble a private engine over the shared arrays.

        The only per-worker allocation of note is
        ``TemporalGraph._neg_etime`` (|E| floats, recomputed by the
        constructor); the CSR, index, and candidate arrays are adopted
        as-is.
        """
        a = self.arrays
        graph = TemporalGraph(
            a["graph.indptr"], a["graph.nbr"], a["graph.etime"],
            eweight=a.get("graph.eweight"),
        )
        if "static.indptr" in a:
            graph._static_indptr = a["static.indptr"]
            graph._static_nbr = a["static.nbr"]
        aux = AuxiliaryIndex(self.aux_max) if self.aux_max >= 0 else None
        index = HierarchicalPAT(
            aux=aux, **{name: a[name] for name in HPAT_ARRAY_FIELDS}
        )
        return BatchTeaEngine.from_prepared(
            graph, self.spec, index, a["candidate_sizes"],
            static_keys=a.get("static.keys"),
        )


@dataclass
class ChunkResult:
    """One chunk's walks plus its private telemetry, ready to fold.

    ``lengths``/``hop_vertex``/``hop_time`` are the chunk's slice of the
    columnar frontier output (hop columns trimmed to the chunk's longest
    walk so process workers ship minimal bytes). ``spans`` are the
    worker tracer's finished roots — the engine adopts them under its
    ``walk`` span at the barrier.
    """

    chunk_id: int
    num_walks: int
    lengths: np.ndarray
    hop_vertex: Optional[np.ndarray]
    hop_time: Optional[np.ndarray]
    counters: CostCounters
    registry: MetricsRegistry
    spans: List[Span]
    queue_wait_seconds: float
    wall_seconds: float
    worker_label: str
    #: Events recorded *during this chunk* in a forked process worker,
    #: shipped back for the engine to fold into the parent's log.
    #: Thread/serial chunks leave this empty — they append into the
    #: shared parent log directly.
    events: List[dict] = field(default_factory=list)
    #: Per-chunk profiler snapshot (``WorkerContext.profile`` only).
    profile: Optional[dict] = None

    @property
    def total_steps(self) -> int:
        return int(self.lengths.sum())


def worker_label() -> str:
    """Stable identity of the executing worker for per-worker metrics."""
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


def execute_chunk(
    engine: BatchTeaEngine,
    ctx: WorkerContext,
    chunk_id: int,
    lo: int,
    hi: int,
    enqueue_ts: float,
    attempt: int = 0,
) -> ChunkResult:
    """Walk chunk ``chunk_id`` (``starts[lo:hi]``) to completion.

    Runs the same frontier kernel as the serial engine with a fresh
    generator seeded from the chunk plan; telemetry goes to private
    per-chunk instances. ``enqueue_ts`` (``time.monotonic`` at submit)
    yields the queue-wait share the scaling report tracks.

    ``attempt`` is the supervisor's retry ordinal: it keys fault
    injection only — the chunk's randomness still comes exclusively
    from its planned seed, so a retried chunk reproduces its exact
    paths (bit-determinism survives crashes).
    """
    t0 = _monotonic()
    queue_wait = max(0.0, t0 - enqueue_ts)
    # Event shipping: thread/serial chunks emit straight into the
    # parent's installed log; a forked process worker emits into its own
    # (inherited or pool-init-installed) log and ships only the events
    # recorded during this chunk back on the result.
    log = events.current()
    in_child = multiprocessing.parent_process() is not None
    event_mark = len(log) if (log is not None and in_child) else 0
    if ctx.injector is not None:
        ctx.injector.check("chunk", key=(chunk_id, attempt))
    rng = np.random.default_rng(int(ctx.seeds[chunk_id]))
    counters = CostCounters()
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True)
    # Per-chunk profiler, same discipline as registry/tracer: private to
    # the chunk, folded by the engine at the barrier. calibrate=False —
    # the per-event cost is measured once per process and cached.
    profiler = PhaseProfiler(calibrate=False) if ctx.profile else None
    frontier_hist = registry.histogram(
        "batch.frontier_size", "active walkers per frontier iteration"
    )
    label = worker_label()
    with tracer.span(
        "walk.chunk", chunk=chunk_id, walks=hi - lo, worker=label
    ) as span:
        if profiler is not None:
            with profiler.phase("chunk_exec"):
                result: FrontierResult = engine._run_frontier(
                    ctx.starts[lo:hi], ctx.max_length, ctx.stop_probability,
                    rng, counters, ctx.keep_hops, frontier_hist,
                    profiler=profiler,
                )
        else:
            result = engine._run_frontier(
                ctx.starts[lo:hi], ctx.max_length, ctx.stop_probability,
                rng, counters, ctx.keep_hops, frontier_hist,
            )
        span.set("steps", result.total_steps)
        span.set("queue_wait_seconds", round(queue_wait, 6))
    registry.histogram(
        "parallel.queue_wait_seconds",
        "delay between chunk enqueue and execution start",
        **LATENCY_BUCKETS,
    ).observe(queue_wait)
    events.emit(
        "chunk.exec", chunk_id=int(chunk_id), attempt=int(attempt),
        worker=label, walks=int(hi - lo), steps=int(result.total_steps),
        queue_wait_seconds=round(queue_wait, 6),
    )

    hop_vertex = hop_time = None
    if result.hop_vertex is not None:
        # Trim hop columns to this chunk's longest walk: correctness is
        # row-wise (walk i uses columns [:lengths[i]]), and process
        # workers pickle the result back to the parent.
        width = int(result.lengths.max()) if result.lengths.size else 0
        hop_vertex = np.ascontiguousarray(result.hop_vertex[:, :width])
        hop_time = np.ascontiguousarray(result.hop_time[:, :width])
    return ChunkResult(
        chunk_id=chunk_id,
        num_walks=hi - lo,
        lengths=result.lengths,
        hop_vertex=hop_vertex,
        hop_time=hop_time,
        counters=counters,
        registry=registry,
        spans=tracer.roots,
        queue_wait_seconds=queue_wait,
        wall_seconds=_monotonic() - t0,
        worker_label=label,
        events=(list(log.events[event_mark:])
                if (log is not None and in_child) else []),
        profile=profiler.snapshot() if profiler is not None else None,
    )


# -- process-backend entry points ------------------------------------------
#
# The process pool uses the fork start method: the initializer and its
# context argument reach children by inheritance (no pickling), and the
# shared image's mappings come along for free. Each child builds its
# engine once; chunk tasks then cost one small (ints) message in and one
# ChunkResult pickle out.

_ENGINE: Optional[BatchTeaEngine] = None
_CONTEXT: Optional[WorkerContext] = None


def _process_init(ctx: WorkerContext) -> None:
    global _ENGINE, _CONTEXT
    _CONTEXT = ctx
    _ENGINE = ctx.build_engine()
    if ctx.run_id is not None:
        # Fresh, empty log stamped with the parent's run_id: chunk
        # executions mark/ship against it regardless of what (or
        # whether) the fork inherited.
        events.install(EventLog(run_id=ctx.run_id))


def _process_chunk(chunk_id: int, lo: int, hi: int, enqueue_ts: float,
                   attempt: int = 0) -> ChunkResult:
    assert _ENGINE is not None and _CONTEXT is not None, "worker not initialised"
    return execute_chunk(_ENGINE, _CONTEXT, chunk_id, lo, hi, enqueue_ts, attempt)
