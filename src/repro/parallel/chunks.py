"""Chunk planning for the parallel walk executor.

The workload's start vertices are split into contiguous chunks; chunks
are the unit of scheduling (a shared work queue hands them to whichever
worker is free) — but *walks* are the unit of randomness. Every walk
gets its own seed drawn up front from the run's root generator (one
:func:`~repro.rng.spawn_seeds` call over the whole start array), and
workers key a counter-based lane stream (:class:`~repro.rng.LaneRng`)
on it. Sampled walks therefore depend only on ``(starts, seed)`` —
never on chunk size, worker count, backend, or completion order — which
is what lets the adaptive planner re-chunk freely: ``--chunk-size 16``
and ``--chunk-target-ms 80`` walk bit-identical paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.rng import spawn_seeds

#: Chunks per worker the fallback planner aims for: enough queue slack
#: that an unlucky worker (long walks, slow core) doesn't become the
#: critical path, few enough that per-chunk overhead stays negligible.
CHUNKS_PER_WORKER = 4

#: Work per chunk the adaptive planner targets, in milliseconds. The
#: ISSUE's 50–100ms band: chunks this size amortise queue/dispatch
#: overhead (~1ms each) to <2% while still giving the queue enough
#: entries to balance load across workers.
DEFAULT_CHUNK_TARGET_MS = 75.0

#: Walks the calibration probe executes when no prior timing exists.
PROBE_WALKS = 64


def default_chunk_size(num_walks: int, workers: int) -> int:
    """~:data:`CHUNKS_PER_WORKER` chunks per worker, at least one walk."""
    return max(1, -(-num_walks // (max(1, workers) * CHUNKS_PER_WORKER)))


def adaptive_chunk_size(
    num_walks: int,
    workers: int,
    per_walk_seconds: Optional[float],
    target_ms: float = DEFAULT_CHUNK_TARGET_MS,
) -> int:
    """Chunk size targeting ``target_ms`` of work per chunk.

    ``per_walk_seconds`` comes from a short calibration probe or the
    engine's prior-run ``chunk_exec`` self-time; when it is unknown or
    degenerate (``None``/``<= 0``) the planner falls back to
    :func:`default_chunk_size`. The result is clamped so every worker
    can still receive at least one chunk (``ceil(num_walks/workers)``)
    — a too-generous target must not serialise the run — and is
    monotone non-decreasing in ``target_ms``.
    """
    if num_walks <= 0:
        return 1
    if per_walk_seconds is None or per_walk_seconds <= 0.0:
        return default_chunk_size(num_walks, workers)
    size = math.ceil((float(target_ms) / 1000.0) / float(per_walk_seconds))
    cap = -(-num_walks // max(1, workers))
    return int(max(1, min(size, cap)))


@dataclass(frozen=True)
class ChunkPlan:
    """An immutable partition of the start array plus per-walk seeds.

    Chunk ``i`` covers ``starts[bounds[i]:bounds[i+1]]``; walk ``j`` is
    advanced by the counter-based lane stream keyed on ``seeds[j]``
    (``seeds`` aligns with ``starts``, one seed per walk). Because the
    seeds ignore the partition, :func:`rechunk` can change ``bounds``
    without changing a single sampled edge.
    """

    starts: np.ndarray
    bounds: np.ndarray
    seeds: np.ndarray

    @property
    def num_chunks(self) -> int:
        return int(self.bounds.size - 1)

    @property
    def num_walks(self) -> int:
        return int(self.starts.size)

    def chunk(self, chunk_id: int) -> Tuple[int, int]:
        """(lo, hi) slice bounds of ``chunk_id`` in the start array."""
        return int(self.bounds[chunk_id]), int(self.bounds[chunk_id + 1])


def _chunk_bounds(num_walks: int, chunk_size: int) -> np.ndarray:
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    bounds = np.arange(0, num_walks + chunk_size, chunk_size, dtype=np.int64)
    bounds[-1] = num_walks
    if bounds.size < 2:  # zero walks: one empty chunk keeps folds simple
        bounds = np.array([0, 0], dtype=np.int64)
    return bounds


def plan_chunks(
    starts: np.ndarray, chunk_size: int, rng: np.random.Generator
) -> ChunkPlan:
    """Split ``starts`` into fixed-size chunks and draw per-walk seeds.

    Seeds are drawn in walk order from ``rng`` (one
    :func:`~repro.rng.spawn_seeds` call over the whole start array),
    which pins the entire run's randomness before any worker starts and
    independently of ``chunk_size`` — the determinism contract the
    executor's tests assert.
    """
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    bounds = _chunk_bounds(starts.size, chunk_size)
    seeds = spawn_seeds(rng, starts.size)
    return ChunkPlan(starts=starts, bounds=bounds, seeds=seeds)


def plan_for_seeds(
    starts: np.ndarray, seeds: np.ndarray, chunk_size: int
) -> ChunkPlan:
    """Build a plan from caller-supplied per-walk seeds.

    The serving layer (:mod:`repro.serve`) derives each request's lane
    seeds from the *request's own* seed, then concatenates requests into
    one plan — per-walk seeding makes the partition (and the batch
    composition) invisible to every sampled edge.
    """
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    seeds = np.ascontiguousarray(seeds)
    if starts.size != seeds.size:
        raise ValueError("starts and seeds must be equal length")
    return ChunkPlan(
        starts=starts, bounds=_chunk_bounds(starts.size, chunk_size), seeds=seeds
    )


def rechunk(plan: ChunkPlan, chunk_size: int) -> ChunkPlan:
    """Repartition ``plan`` into ``chunk_size``-walk chunks.

    Seeds are per walk, so the new plan samples bit-identical walks —
    this is how the adaptive planner resizes chunks after calibration
    without re-drawing any randomness.
    """
    return ChunkPlan(
        starts=plan.starts,
        bounds=_chunk_bounds(plan.starts.size, chunk_size),
        seeds=plan.seeds,
    )
