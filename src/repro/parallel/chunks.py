"""Chunk planning for the parallel walk executor.

The workload's start vertices are split into contiguous chunks; chunks
are the unit of scheduling (a shared work queue hands them to whichever
worker is free) *and* the unit of randomness. Each chunk gets its own
seed drawn up front from the run's root generator, so the sampled walks
depend only on ``(starts, chunk_size, seed)`` — never on worker count,
backend, or completion order. ``--workers 1`` and ``--workers 8`` over
the same plan are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.rng import spawn_seeds

#: Chunks per worker the default planner aims for: enough queue slack
#: that an unlucky worker (long walks, slow core) doesn't become the
#: critical path, few enough that per-chunk overhead stays negligible.
CHUNKS_PER_WORKER = 4


def default_chunk_size(num_walks: int, workers: int) -> int:
    """~:data:`CHUNKS_PER_WORKER` chunks per worker, at least one walk."""
    return max(1, -(-num_walks // (max(1, workers) * CHUNKS_PER_WORKER)))


@dataclass(frozen=True)
class ChunkPlan:
    """An immutable partition of the start array plus per-chunk seeds.

    Chunk ``i`` covers ``starts[bounds[i]:bounds[i+1]]`` and is walked
    with ``np.random.default_rng(int(seeds[i]))``.
    """

    starts: np.ndarray
    bounds: np.ndarray
    seeds: np.ndarray

    @property
    def num_chunks(self) -> int:
        return int(self.bounds.size - 1)

    @property
    def num_walks(self) -> int:
        return int(self.starts.size)

    def chunk(self, chunk_id: int) -> Tuple[int, int]:
        """(lo, hi) slice bounds of ``chunk_id`` in the start array."""
        return int(self.bounds[chunk_id]), int(self.bounds[chunk_id + 1])


def plan_chunks(
    starts: np.ndarray, chunk_size: int, rng: np.random.Generator
) -> ChunkPlan:
    """Split ``starts`` into fixed-size chunks and draw their seeds.

    Seeds are drawn in chunk order from ``rng`` (one
    :func:`~repro.rng.spawn_seeds` call), which pins the whole run's
    randomness before any worker starts — the determinism contract the
    executor's tests assert.
    """
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    bounds = np.arange(0, starts.size + chunk_size, chunk_size, dtype=np.int64)
    bounds[-1] = starts.size
    if bounds.size < 2:  # zero walks: one empty chunk keeps folds simple
        bounds = np.array([0, 0], dtype=np.int64)
    seeds = spawn_seeds(rng, bounds.size - 1)
    return ChunkPlan(starts=starts, bounds=bounds, seeds=seeds)
