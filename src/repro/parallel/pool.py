"""Warm, persistent worker pools for the parallel walk executor.

The PR-2 executor built a fresh ``ProcessPoolExecutor`` per ``run()``
attempt, so every run paid worker spawn + shared-index attach before
the first chunk moved — on small workloads that overhead exceeded the
walk itself (the 0.44–0.54x "speedups" ROADMAP item 1 records).
:class:`WarmWorkerPool` makes the pool an *engine-lifetime* resource:

* **startup once** — the executor is created on first use and kept; a
  second ``run()`` finds it warm and pays ~zero startup
  (``parallel.pool_startup_seconds == 0`` is the reuse contract the
  scaling bench demonstrates).
* **attach once** — process workers build their engine over the shared
  index image in the pool initializer (fork inherits the static
  :class:`~repro.parallel.worker.WorkerContext`), so the attach cost is
  per worker per pool generation, not per run or per chunk. Warmup
  pings force every worker into existence *before* chunks are enqueued,
  which is also what lets ``queue_wait_seconds`` measure only genuine
  queue time.
* **recycle on harm** — the supervisor marks a pool broken after a hang
  or a dead worker (:meth:`mark_broken`); the next :meth:`ensure` call
  rebuilds it from the same static context. Degradation
  (process → thread → serial) and retries never assume a fresh pool.

Lifecycle telemetry: ``pool.start`` / ``pool.reuse`` / ``pool.recycle``
/ ``pool.shutdown`` events, plus the startup/attach timings the engine
republishes as ``parallel.pool_startup_seconds`` /
``parallel.attach_seconds``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional

from repro.parallel.worker import WorkerContext, _process_init, _warmup_ping
from repro.telemetry import events
from repro.telemetry.clock import monotonic as _monotonic

#: Seconds to wait for the warmup pings before giving up on measuring
#: attach time (the pool still works; the metric just reads 0).
WARMUP_TIMEOUT = 30.0


class WarmWorkerPool:
    """A process or thread executor that outlives ``run()`` calls.

    ``kind`` is ``"process"`` or ``"thread"``; ``ctx`` (process pools
    only) is the static worker context fork-inherited by every worker
    at pool creation — it must stay valid for the pool's lifetime,
    which is why the engine pins the shared-memory image for as long as
    it owns pools.
    """

    def __init__(self, kind: str, workers: int,
                 ctx: Optional[WorkerContext] = None):
        if kind not in ("process", "thread"):
            raise ValueError(f"kind must be 'process' or 'thread', got {kind!r}")
        self.kind = kind
        self.workers = int(workers)
        self.ctx = ctx
        self.executor = None
        self.broken = False
        #: Pool builds so far (1 after first ensure; +1 per recycle).
        self.generation = 0
        #: Wall seconds the most recent build spent (executor creation
        #: plus warmup); 0.0 reported for reused-warm serves.
        self.startup_seconds = 0.0
        #: Summed per-worker engine-build/attach seconds of the most
        #: recent build (reported by the warmup pings).
        self.attach_seconds = 0.0

    @property
    def warm(self) -> bool:
        """True when :meth:`ensure` would reuse the live executor."""
        return self.executor is not None and not self.broken

    def ensure(self):
        """Return ``(executor, reused)``; builds or rebuilds if needed."""
        if self.warm:
            events.emit("pool.reuse", pool=self.kind,
                        generation=self.generation)
            return self.executor, True
        if self.executor is not None:
            # Broken executor from a previous generation: detach without
            # waiting (a hung worker must not block the rebuild).
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.executor = None
        t0 = _monotonic()
        attach = 0.0
        if self.kind == "process":
            executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_process_init,
                initargs=(self.ctx,),
            )
            # Warmup: one ping per worker slot forces every process to
            # spawn (and so to attach the shared image) before any real
            # chunk is enqueued. Each ping reports its worker's attach
            # cost; sum over distinct pids — a fast worker may answer
            # several pings.
            try:
                pings = [executor.submit(_warmup_ping)
                         for _ in range(self.workers)]
                seen = {}
                for ping in pings:
                    pid, seconds = ping.result(timeout=WARMUP_TIMEOUT)
                    seen[pid] = seconds
                attach = float(sum(seen.values()))
            except Exception:
                # A worker died during warmup; the supervisor will see
                # BrokenExecutor on the first real submit and recycle.
                attach = 0.0
        else:
            executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="walk"
            )
        self.executor = executor
        self.broken = False
        self.generation += 1
        self.startup_seconds = _monotonic() - t0
        self.attach_seconds = attach
        events.emit(
            "pool.start", pool=self.kind, workers=self.workers,
            generation=self.generation,
            startup_seconds=round(self.startup_seconds, 6),
            attach_seconds=round(self.attach_seconds, 6),
        )
        return self.executor, False

    def mark_broken(self, reason: str) -> None:
        """Condemn the current generation; the next ensure() rebuilds.

        Shutdown never waits: the pool is being condemned precisely
        because a worker hung or died, so joining it could deadlock.
        """
        if self.broken:
            return
        self.broken = True
        events.emit("pool.recycle", pool=self.kind, reason=reason,
                    generation=self.generation)

    def close(self) -> None:
        """Dispose the executor (end of the owning engine's life)."""
        if self.executor is None:
            return
        self.executor.shutdown(wait=not self.broken, cancel_futures=True)
        self.executor = None
        events.emit("pool.shutdown", pool=self.kind,
                    generation=self.generation)
