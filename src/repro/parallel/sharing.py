"""Zero-copy sharing of a prepared index image across walk workers.

A parallel walk run reads the same immutable arrays from every worker:
the graph CSR, the HPAT flat arrays (the catalogue
:data:`repro.core.persist.HPAT_ARRAY_FIELDS` enumerates), the per-edge
candidate index, and — for node2vec specs — the static-adjacency
offset-key view. None of it is written during the walk, so the right
sharing primitive is a read-only page mapping, not a pickle.

Two mechanisms, in preference order:

* **POSIX shared memory** (:class:`SharedIndexImage`): the arrays are
  copied once into ``multiprocessing.shared_memory`` segments; workers
  either inherit the mappings through ``fork`` or attach by segment
  name (:meth:`SharedIndexImage.attach` — the picklable
  :meth:`~SharedIndexImage.specs` travel to any process). One physical
  copy serves every worker regardless of start method.
* **fork copy-on-write fallback**: on platforms or in conditions where
  shared memory is unavailable (``/dev/shm`` full, permissions), the
  parent simply passes its own arrays into the pre-fork worker context.
  ``fork`` shares the pages copy-on-write, and since the walk never
  writes them, they are never duplicated. This is equally zero-copy but
  only works for forked children.

The exporting process owns the segments: call :meth:`dispose` after the
worker pool has shut down to close and unlink them (numpy views must be
dropped before closing, which ``dispose`` handles).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

#: spec entry: (shared-memory segment name, array shape, dtype string)
ArraySpec = Tuple[str, Tuple[int, ...], str]


class SharedIndexImage:
    """A dict of named arrays exported into shared-memory segments.

    Use :meth:`export` in the owning process and :meth:`arrays` for
    views backed by the segments; ship :meth:`specs` to non-forked
    workers and rebuild views there with :meth:`attach`.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._specs: Dict[str, ArraySpec] = {}
        self._views: Dict[str, np.ndarray] = {}
        self._owner = False

    # -- construction ------------------------------------------------------

    @classmethod
    def export(cls, arrays: Dict[str, np.ndarray]) -> "SharedIndexImage":
        """Copy ``arrays`` into fresh shared-memory segments (one each).

        The one copy this module ever makes: after it, every process
        reads the same physical pages. Raises ``OSError`` when shared
        memory cannot be allocated — callers fall back to
        copy-on-write inheritance.
        """
        image = cls()
        image._owner = True
        try:
            for field, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                # A zero-byte segment is invalid; round up so empty
                # arrays (empty graphs, weightless specs) still ship.
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes)
                )
                image._segments.append(shm)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                view.setflags(write=False)
                image._specs[field] = (shm.name, arr.shape, arr.dtype.str)
                image._views[field] = view
        except OSError:
            image.dispose()
            raise
        return image

    @classmethod
    def attach(cls, specs: Dict[str, ArraySpec]) -> "SharedIndexImage":
        """Map the segments named in ``specs`` (worker side, by name).

        The attach-by-name path works from any process on the host —
        including ``spawn``-started ones — as long as the exporting
        process keeps the image alive. Call :meth:`dispose` (which only
        closes, never unlinks, on attached images) when done.
        """
        image = cls()
        for field, (name, shape, dtype) in specs.items():
            shm = shared_memory.SharedMemory(name=name)
            image._segments.append(shm)
            view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
            view.setflags(write=False)
            image._specs[field] = (name, tuple(shape), dtype)
            image._views[field] = view
        return image

    # -- access ------------------------------------------------------------

    def arrays(self) -> Dict[str, np.ndarray]:
        """Read-only views backed by the shared segments."""
        return dict(self._views)

    def specs(self) -> Dict[str, ArraySpec]:
        """Picklable descriptors for :meth:`attach` in another process."""
        return dict(self._specs)

    @property
    def nbytes(self) -> int:
        return sum(view.nbytes for view in self._views.values())

    # -- teardown ----------------------------------------------------------

    def dispose(self) -> None:
        """Drop views, close the mappings, and (if owner) unlink.

        numpy views hold buffer references into the segments, so they
        must be released before ``close()`` — call this only after no
        other live array references the image (i.e. after the worker
        pool has joined).
        """
        self._views.clear()
        for shm in self._segments:
            try:
                shm.close()
            except (OSError, BufferError):  # pragma: no cover - teardown
                pass
            if self._owner:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self._segments.clear()
        self._specs.clear()


def export_or_none(arrays: Dict[str, np.ndarray]) -> Optional[SharedIndexImage]:
    """Try the shared-memory export; ``None`` means "use the fallback".

    The graceful half of the share-mode ladder: a full ``/dev/shm`` or a
    platform without POSIX shared memory degrades to fork/copy-on-write
    sharing instead of failing the run.
    """
    try:
        return SharedIndexImage.export(arrays)
    except (OSError, ValueError):
        return None
