"""Chunk-parallel walk execution over a shared prepared index.

The single-node multi-core counterpart to :mod:`repro.distributed`'s
simulated cluster: one preprocessing pass in the parent, then the
vectorised frontier kernel (:mod:`repro.engines.batch`) runs per chunk
of start vertices in a warm, engine-lifetime worker pool
(:mod:`repro.parallel.pool`), against index arrays shared zero-copy
(POSIX shared memory, falling back to fork copy-on-write). Randomness
is planned *per walk* (counter-based lane streams), so results are
bit-identical across worker counts, backends, chunk sizes (fixed or
adaptive), warm or cold pools, and scheduling orders; every worker's
counters/metrics/spans fold at the join barrier.

Public surface:

* :class:`~repro.parallel.engine.ParallelBatchTeaEngine` — the engine
  (registered as ``tea-parallel`` in the CLI);
* :func:`~repro.parallel.chunks.plan_chunks` /
  :func:`~repro.parallel.chunks.rechunk` /
  :func:`~repro.parallel.chunks.adaptive_chunk_size` /
  :class:`~repro.parallel.chunks.ChunkPlan` — deterministic per-walk
  seeding and (re)chunking;
* :class:`~repro.parallel.pool.WarmWorkerPool` — the persistent pool;
* :class:`~repro.parallel.sharing.SharedIndexImage` — the shared-memory
  image of the prepared arrays;
* :func:`~repro.parallel.scaling.run_scaling` — the strong-scaling
  sweep behind ``bench_results/walk_scaling.txt`` and
  ``make scaling-smoke``.
"""

from repro.parallel.chunks import (
    DEFAULT_CHUNK_TARGET_MS,
    ChunkPlan,
    adaptive_chunk_size,
    default_chunk_size,
    plan_chunks,
    rechunk,
)
from repro.parallel.engine import ParallelBatchTeaEngine
from repro.parallel.pool import WarmWorkerPool
from repro.parallel.sharing import SharedIndexImage
from repro.parallel.worker import (
    ChunkResult,
    ChunkTask,
    WorkerContext,
    execute_chunk,
)

__all__ = [
    "ChunkPlan",
    "ChunkResult",
    "ChunkTask",
    "DEFAULT_CHUNK_TARGET_MS",
    "ParallelBatchTeaEngine",
    "SharedIndexImage",
    "WarmWorkerPool",
    "WorkerContext",
    "adaptive_chunk_size",
    "default_chunk_size",
    "execute_chunk",
    "plan_chunks",
    "rechunk",
]
