"""Chunk-parallel walk execution over a shared prepared index.

The single-node multi-core counterpart to :mod:`repro.distributed`'s
simulated cluster: one preprocessing pass in the parent, then the
vectorised frontier kernel (:mod:`repro.engines.batch`) runs per chunk
of start vertices in a worker pool, against index arrays shared
zero-copy (POSIX shared memory, falling back to fork copy-on-write).
Results are deterministic in the chunk plan — not in worker count or
scheduling — and every worker's counters/metrics/spans fold at the join
barrier.

Public surface:

* :class:`~repro.parallel.engine.ParallelBatchTeaEngine` — the engine
  (registered as ``tea-parallel`` in the CLI);
* :func:`~repro.parallel.chunks.plan_chunks` /
  :class:`~repro.parallel.chunks.ChunkPlan` — deterministic chunking;
* :class:`~repro.parallel.sharing.SharedIndexImage` — the shared-memory
  image of the prepared arrays;
* :func:`~repro.parallel.scaling.run_scaling` — the strong-scaling
  sweep behind ``bench_results/walk_scaling.txt`` and
  ``make scaling-smoke``.
"""

from repro.parallel.chunks import ChunkPlan, default_chunk_size, plan_chunks
from repro.parallel.engine import ParallelBatchTeaEngine
from repro.parallel.sharing import SharedIndexImage
from repro.parallel.worker import ChunkResult, WorkerContext, execute_chunk

__all__ = [
    "ChunkPlan",
    "ChunkResult",
    "ParallelBatchTeaEngine",
    "SharedIndexImage",
    "WorkerContext",
    "default_chunk_size",
    "execute_chunk",
    "plan_chunks",
]
