"""Chunk-parallel frontier walk execution (multi-core single node).

:class:`ParallelBatchTeaEngine` runs the exact
:class:`~repro.engines.batch.BatchTeaEngine` frontier kernel, but over
*chunks* of the workload's start vertices served from a shared work
queue to a pool of workers. The prepared index is built once in the
parent and shared zero-copy (see :mod:`repro.parallel.sharing`);
workers wrap it with
:meth:`~repro.engines.batch.BatchTeaEngine.from_prepared` and walk
their chunks independently.

Design invariants:

* **Determinism** — every *walk* owns a seed planned up front
  (:mod:`repro.parallel.chunks`) and is advanced by a counter-based
  lane stream (:class:`~repro.rng.LaneRng`), so results are
  bit-identical across worker counts, backends, chunk sizes (fixed or
  adaptive), warm or cold pools, interleave settings, and scheduling
  orders for a fixed ``seed``. ``--workers 1`` is the reference run,
  not a special case.
* **Warm pools** — worker pools and the shared-memory image are
  *engine-lifetime* resources (:mod:`repro.parallel.pool`): the first
  run pays pool spin-up and per-worker attach once, later runs find
  the pool warm (``parallel.pool_startup_seconds == 0``). Supervision
  recycles a broken/hung pool instead of assuming one pool per
  attempt. :meth:`close` (or garbage collection) releases everything.
* **Adaptive chunking** — without an explicit ``chunk_size`` the
  planner calibrates from a short probe (or the previous run's
  measured per-walk cost) and sizes chunks to
  ``chunk_target_ms`` (default ~75ms) of work each, so dispatch
  overhead is amortised while the queue still load-balances.
* **Per-worker telemetry** — each chunk carries private
  :class:`~repro.sampling.counters.CostCounters`, registry, and tracer;
  the engine folds all of them at the join barrier through their
  associative merge paths, then adds the ``parallel.*`` metrics
  (workers, chunks, queue wait, pool startup/attach, per-worker step
  totals).
* **Backends** — ``process`` (forked workers, true multi-core; index
  shared via POSIX shared memory with a copy-on-write fallback),
  ``thread`` (numpy releases the GIL for long stretches of the kernel,
  and threads need no array shipping at all), or ``serial`` (inline,
  for debugging). ``auto`` picks ``process`` where ``fork`` exists.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Dict, List, Optional

import numpy as np

from repro.core.persist import hpat_array_catalogue
from repro.engines.base import EngineResult, Workload
from repro.engines.batch import BatchTeaEngine, FrontierResult
from repro.exceptions import WorkerCrashError
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.chunks import (
    DEFAULT_CHUNK_TARGET_MS,
    PROBE_WALKS,
    ChunkPlan,
    adaptive_chunk_size,
    plan_chunks,
    plan_for_seeds,
    rechunk,
)
from repro.parallel.pool import WarmWorkerPool
from repro.parallel.sharing import export_or_none
from repro.parallel.worker import (
    ChunkResult,
    ChunkTask,
    WorkerContext,
    _process_chunk,
    execute_chunk,
)
from repro.rng import LaneRng, RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.telemetry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    PhaseTimer,
    Tracer,
    events,
)
from repro.telemetry.events import current_run_id
from repro.walks.spec import WalkSpec

BACKENDS = ("auto", "process", "thread", "serial")
SHARE_MODES = ("auto", "shm", "inherit")

#: Default per-chunk retry budget (additional attempts after the first).
DEFAULT_CHUNK_RETRIES = 2


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ParallelBatchTeaEngine(BatchTeaEngine):
    """Work-queue parallel TEA: the frontier kernel per chunk, merged.

    Parameters
    ----------
    workers:
        Pool size; defaults to the machine's CPU count. The effective
        pool never exceeds the number of chunks.
    chunk_size:
        Start vertices per chunk. ``None`` (default) engages the
        adaptive planner; per-walk seeding makes both settings
        bit-identical, so pin it only to make chunk *counts*
        reproducible (e.g. telemetry assertions).
    chunk_target_ms:
        Work per chunk the adaptive planner aims for (default
        :data:`~repro.parallel.chunks.DEFAULT_CHUNK_TARGET_MS`).
        Ignored when ``chunk_size`` is given.
    backend:
        ``auto`` | ``process`` | ``thread`` | ``serial``.
    share_mode:
        ``auto`` (shared memory, falling back to fork/copy-on-write),
        ``shm``, or ``inherit`` (copy-on-write only). Only the process
        backend ships arrays; threads share the address space.
    warm_pool:
        Keep worker pools alive across ``run()`` calls (default). With
        ``False`` pools are torn down after every run — the PR-2
        behaviour, kept for cold-start comparisons.
    interleave:
        Walker cohorts per chunk advanced round-robin inside a worker
        (ThunderRW-style step interleaving); 1 disables. Output is
        bit-identical either way.
    """

    name = "tea-parallel"

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        backend: str = "auto",
        share_mode: str = "auto",
        retries: int = DEFAULT_CHUNK_RETRIES,
        chunk_timeout: Optional[float] = None,
        fault_injector=None,
        warm_pool: bool = True,
        chunk_target_ms: Optional[float] = None,
        interleave: int = 1,
        kernel_backend="auto",
    ):
        super().__init__(graph, spec, kernel_backend=kernel_backend)
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if share_mode not in SHARE_MODES:
            raise ValueError(
                f"share_mode must be one of {SHARE_MODES}, got {share_mode!r}"
            )
        self.workers = int(workers) if workers else (multiprocessing.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.chunk_size = int(chunk_size) if chunk_size else None
        if chunk_target_ms is not None and float(chunk_target_ms) <= 0:
            raise ValueError("chunk_target_ms must be > 0")
        self.chunk_target_ms = (
            float(chunk_target_ms) if chunk_target_ms is not None else None
        )
        self.interleave = int(interleave)
        if self.interleave < 1:
            raise ValueError("interleave must be >= 1")
        self.backend = backend
        self.share_mode = share_mode
        self.warm_pool = bool(warm_pool)
        #: Per-chunk retry budget: a chunk may fail (crash, hang, broken
        #: pool) this many times beyond its first attempt before the run
        #: aborts with :class:`WorkerCrashError`.
        self.retries = int(retries)
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        #: Seconds a single chunk may run before the supervisor declares
        #: it hung (``None`` disables the watchdog). Applies to the
        #: process and thread backends' future waits.
        self.chunk_timeout = chunk_timeout
        #: Optional :class:`repro.resilience.faults.FaultInjector`
        #: threaded into the worker context (``chunk`` site).
        self.fault_injector = fault_injector
        #: How the last run actually shared arrays / executed (for
        #: reports and tests): set by :meth:`run`.
        self.last_backend: Optional[str] = None
        self.last_share_mode: Optional[str] = None
        #: Supervision ledger of the last run: ``chunk_retries`` (chunk
        #: executions repeated after a failure) and ``degraded`` (the
        #: backends fallen back to, in order).
        self.last_events: Dict[str, object] = {"chunk_retries": 0, "degraded": []}
        #: Pool ledger of the last run: warm serves (``reuses``), pool
        #: builds and their cost (``builds`` / ``startup_seconds`` /
        #: ``attach_seconds``).
        self.last_pool: Dict[str, float] = {
            "reuses": 0, "builds": 0,
            "startup_seconds": 0.0, "attach_seconds": 0.0,
        }
        # Engine-lifetime execution resources (see close()).
        self._pools: Dict[str, WarmWorkerPool] = {}
        self._image = None
        self._static_ctx: Optional[WorkerContext] = None
        self._local_worker_ctx: Optional[WorkerContext] = None
        #: Measured seconds per walk (calibration memory): seeded by the
        #: probe, refined after every run from actual chunk walls.
        self._per_walk_seconds: Optional[float] = None

    # -- context -----------------------------------------------------------

    def _resolve_backend(self, workers_used: int) -> str:
        if self.backend == "auto":
            if workers_used <= 1:
                return "serial"
            return "process" if _fork_available() else "thread"
        if self.backend == "process" and not _fork_available():
            return "thread"
        return self.backend

    def _shared_arrays(self) -> Dict[str, np.ndarray]:
        """The read-only image workers need, under the catalogue names."""
        g = self.graph
        arrays: Dict[str, np.ndarray] = {
            "graph.indptr": g.indptr,
            "graph.nbr": g.nbr,
            "graph.etime": g.etime,
        }
        if g.eweight is not None:
            arrays["graph.eweight"] = g.eweight
        arrays.update(hpat_array_catalogue(self.index, self.candidate_sizes))
        if g._static_indptr is not None:
            arrays["static.indptr"] = g._static_indptr
            arrays["static.nbr"] = g._static_nbr
        if self._static_ready:
            arrays["static.keys"] = self._static_keys
        return arrays

    def _prebuild_static(self) -> None:
        # Build the static adjacency once in the parent (any dynamic
        # parameter may consult it): workers then share it instead of
        # each lazily rebuilding, and the thread backend avoids a
        # concurrent-build race inside the kernel.
        if (
            self.spec.dynamic_parameter is not None
            and self.graph.num_vertices
            and self.graph._static_indptr is None
        ):
            self.graph._build_static_adjacency()

    def _local_ctx(self) -> WorkerContext:
        """Context for thread/serial chunks: they run against ``self``
        directly, so only the injector matters."""
        if self._local_worker_ctx is None:
            self._local_worker_ctx = WorkerContext(
                spec=self.spec, aux_max=-1, injector=self.fault_injector,
                kernel_backend=self.kernel.name,
            )
        return self._local_worker_ctx

    def _ensure_static_ctx(self) -> WorkerContext:
        """The fork-inherited process-worker context, built once.

        Exports the prepared arrays to shared memory (when allowed) the
        first time a process pool is needed; the image then lives until
        :meth:`close` because warm pool workers hold views into it
        across runs.
        """
        if self._static_ctx is not None:
            return self._static_ctx
        arrays = self._shared_arrays()
        if self.share_mode in ("auto", "shm"):
            self._image = export_or_none(arrays)
            if self._image is not None:
                arrays = self._image.arrays()
        aux = self.index.aux
        self._static_ctx = WorkerContext(
            spec=self.spec,
            aux_max=aux.max_size if aux is not None else -1,
            arrays=arrays,
            injector=self.fault_injector,
            # The resolved *name*, not the object: process workers
            # re-resolve after fork/spawn (and degrade gracefully if the
            # parent had numba but the child can't import it).
            kernel_backend=self.kernel.name,
        )
        return self._static_ctx

    def _pool(self, kind: str) -> WarmWorkerPool:
        pool = self._pools.get(kind)
        if pool is None:
            ctx = self._ensure_static_ctx() if kind == "process" else None
            pool = WarmWorkerPool(kind, self.workers, ctx=ctx)
            self._pools[kind] = pool
        return pool

    def _note_pool(self, reused: bool, pool: WarmWorkerPool) -> None:
        if reused:
            self.last_pool["reuses"] += 1
        else:
            self.last_pool["builds"] += 1
            self.last_pool["startup_seconds"] += pool.startup_seconds
            self.last_pool["attach_seconds"] += pool.attach_seconds

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release warm pools and the shared-memory image.

        Idempotent; also invoked by ``__del__`` so dropped engines do
        not leak worker processes or shm segments. After close the
        engine remains usable — the next run simply pays startup again.
        """
        for pool in self._pools.values():
            pool.close()
        self._pools = {}
        self._static_ctx = None
        if self._image is not None:
            self._image.dispose()
            self._image = None

    def __del__(self):  # noqa: D105 — best-effort resource release
        try:
            self.close()
        except Exception:
            pass

    # -- planning ----------------------------------------------------------

    def _probe(self, plan: ChunkPlan, workload: Workload) -> Optional[float]:
        """Measure per-walk seconds on a small prefix of the workload.

        Runs the first :data:`~repro.parallel.chunks.PROBE_WALKS` walks
        inline with their *actual* lane seeds and discards the result:
        no counters, no paths, no draw from the run's root generator —
        so calibration is invisible to determinism and telemetry
        conservation.
        """
        n = min(PROBE_WALKS, plan.num_walks)
        if n <= 0:
            return None
        t0 = time.monotonic()
        self._run_frontier(
            plan.starts[:n], workload.max_length, workload.stop_probability,
            np.random.default_rng(0), CostCounters(), False,
            lane_rng=LaneRng(plan.seeds[:n]),
        )
        return (time.monotonic() - t0) / n

    def _plan(self, starts: np.ndarray, workload: Workload,
              rng: np.random.Generator, profiler) -> ChunkPlan:
        """Draw per-walk seeds, then pick the partition.

        Seeds are drawn before (and independently of) the chunk-size
        decision, which is what makes fixed and adaptive plans walk
        bit-identical paths.
        """
        if self.chunk_size:
            return plan_chunks(starts, self.chunk_size, rng)
        plan = plan_chunks(starts, max(1, starts.size), rng)
        per_walk = self._per_walk_seconds
        if per_walk is None:
            with profiler.phase("probe"):
                per_walk = self._probe(plan, workload)
        size = adaptive_chunk_size(
            starts.size, self.workers, per_walk,
            self.chunk_target_ms if self.chunk_target_ms is not None
            else DEFAULT_CHUNK_TARGET_MS,
        )
        return rechunk(plan, size)

    def _make_task(self, plan: ChunkPlan, chunk_id: int, attempt: int,
                   rp: Dict[str, object]) -> ChunkTask:
        lo, hi = plan.chunk(chunk_id)
        return ChunkTask(
            chunk_id=chunk_id,
            starts=plan.starts[lo:hi],
            seeds=plan.seeds[lo:hi],
            max_length=rp["max_length"],
            stop_probability=rp["stop_probability"],
            keep_hops=rp["keep_hops"],
            interleave=self.interleave,
            run_id=rp["run_id"],
            profile=rp["profile"],
            attempt=attempt,
        )

    # -- execution ---------------------------------------------------------
    #
    # The supervised executor. One attempt = one pass over the
    # currently-pending chunks through the active backend's warm pool
    # (or inline for serial); the supervisor classifies every failed
    # chunk as "crash" (the future raised), "hang" (the per-chunk
    # timeout expired), or "broken" (the pool itself died, e.g. a worker
    # process exited hard) and requeues it under the retry budget.
    # "hang"/"broken" condemn the pool — mark_broken() recycles it on
    # its next use — and degrade the backend one level down the chain
    # process -> thread -> serial: a pool that killed or lost a worker
    # is not trusted with the retry. Determinism survives all of this —
    # a walk's randomness is keyed by its planned seed, never by the
    # attempt, the pool generation, or the backend that finally ran it.

    def _degradation_chain(self, backend: str) -> List[str]:
        chain = ["process", "thread", "serial"]
        return chain[chain.index(backend):] if backend in chain else ["serial"]

    def _collect(self, futures):
        """Wait on ``(future, chunk_id)`` pairs; classify failures.

        Returns ``(done, failed, pool_hurt)`` where ``done`` maps
        chunk_id -> ChunkResult, ``failed`` lists
        ``(chunk_id, reason, exc)``, and ``pool_hurt`` means the pool
        hung or broke (it must be recycled, and shutdown must not block
        on it).
        """
        done: Dict[int, ChunkResult] = {}
        failed = []
        broken = hung = False
        for fut, cid in futures:
            try:
                if broken:
                    # A broken pool poisons every unfinished future with
                    # BrokenExecutor; salvage the ones that completed.
                    done[cid] = fut.result(timeout=0)
                else:
                    done[cid] = fut.result(timeout=self.chunk_timeout)
            except FuturesTimeoutError as exc:
                hung = True
                fut.cancel()
                failed.append((cid, "hang", exc))
            except BrokenExecutor as exc:
                broken = True
                failed.append((cid, "broken", exc))
            except Exception as exc:  # noqa: BLE001 — worker raised
                failed.append((cid, "crash", exc))
        return done, failed, broken or hung

    def _attempt_serial(self, chunk_ids, plan, rp, attempts):
        done: Dict[int, ChunkResult] = {}
        failed = []
        ctx = self._local_ctx()
        for cid in chunk_ids:
            task = self._make_task(plan, cid, attempts[cid], rp)
            task.enqueue_ts = time.monotonic()
            try:
                done[cid] = execute_chunk(self, ctx, task)
            except Exception as exc:  # noqa: BLE001
                failed.append((cid, "crash", exc))
        return done, failed

    def _attempt_thread(self, chunk_ids, plan, rp, attempts):
        pool = self._pool("thread")
        executor, reused = pool.ensure()
        self._note_pool(reused, pool)
        ctx = self._local_ctx()
        futures = []
        for cid in chunk_ids:
            task = self._make_task(plan, cid, attempts[cid], rp)
            task.enqueue_ts = time.monotonic()
            futures.append((executor.submit(execute_chunk, self, ctx, task), cid))
        done, failed, pool_hurt = self._collect(futures)
        if pool_hurt:
            # A hung thread cannot be killed: condemn the pool (its
            # daemonic join happens at interpreter exit) so the next
            # attempt — and the next run — gets a fresh one.
            pool.mark_broken("hang")
        return done, failed

    def _attempt_process(self, chunk_ids, plan, rp, attempts):
        pool = self._pool("process")
        executor, reused = pool.ensure()
        self._note_pool(reused, pool)
        futures = []
        unsubmitted = []
        for cid in chunk_ids:
            task = self._make_task(plan, cid, attempts[cid], rp)
            task.enqueue_ts = time.monotonic()
            try:
                futures.append((executor.submit(_process_chunk, task), cid))
            except BrokenExecutor as exc:
                # A worker died while we were still submitting:
                # everything not yet in flight fails as "broken".
                unsubmitted.append((cid, "broken", exc))
        done, failed, pool_hurt = self._collect(futures)
        failed.extend(unsubmitted)
        if pool_hurt or unsubmitted:
            pool.mark_broken("worker_death_or_hang")
        return done, failed

    def _execute_chunks(
        self, plan: ChunkPlan, backend: str, workers_used: int,
        rp: Dict[str, object],
    ) -> List[ChunkResult]:
        pending: List[int] = list(range(plan.num_chunks))
        if backend == "serial" or workers_used <= 1:
            chain = ["serial"]
        else:
            chain = self._degradation_chain(backend)

        attempts = {cid: 0 for cid in pending}
        results: Dict[int, ChunkResult] = {}
        level = 0
        while pending:
            active = chain[level]
            self.last_backend = active
            if active == "process":
                # Materialise the shared image (once per engine) before
                # reporting how arrays reached the workers.
                self._ensure_static_ctx()
                self.last_share_mode = "shm" if self._image is not None else "cow"
                done, failed = self._attempt_process(pending, plan, rp, attempts)
            elif active == "thread":
                if self._image is None:
                    self.last_share_mode = "local"
                done, failed = self._attempt_thread(pending, plan, rp, attempts)
            else:
                if self._image is None:
                    self.last_share_mode = "local"
                done, failed = self._attempt_serial(pending, plan, rp, attempts)
            results.update(done)
            if not failed:
                break
            degrade = False
            pending = []
            for cid, reason, exc in failed:
                attempts[cid] += 1
                if attempts[cid] > self.retries:
                    raise WorkerCrashError(
                        f"chunk {cid} failed {attempts[cid]} times "
                        f"(last failure: {reason}); retry budget "
                        f"({self.retries}) exhausted",
                        chunk_id=cid, attempts=attempts[cid],
                    ) from exc
                self.last_events["chunk_retries"] += 1
                events.emit(
                    "chunk.retry", chunk_id=cid, attempt=attempts[cid],
                    reason=reason, error=type(exc).__name__,
                )
                pending.append(cid)
                if reason in ("hang", "broken"):
                    degrade = True
            if degrade and level < len(chain) - 1:
                level += 1
                self.last_events["degraded"].append(chain[level])
                events.emit(
                    "backend.degraded",
                    from_backend=chain[level - 1], to_backend=chain[level],
                )
        # Chunk order, regardless of which attempt produced each result:
        # the fold below is then deterministic.
        return [results[cid] for cid in sorted(results)]

    # -- lane-seeded execution ---------------------------------------------

    def run_lanes(
        self,
        starts: np.ndarray,
        seeds: np.ndarray,
        max_length: int,
        stop_probability: float = 0.0,
        keep_hops: bool = True,
        counters=None,
        registry: Optional[MetricsRegistry] = None,
    ) -> FrontierResult:
        """Chunk-parallel twin of :meth:`BatchTeaEngine.run_lanes`.

        The caller supplies per-walk seeds; the engine only decides the
        partition (fixed ``chunk_size`` or the adaptive planner's
        calibration memory) and the backend. Because every walk's
        randomness is keyed on its own seed, the result is bit-identical
        to the serial ``run_lanes`` — across worker counts, backends,
        chunkings, retries, and degradations — which lets the serving
        batcher coalesce requests onto this engine without changing any
        response. Chunk failures go through the same supervised
        retry/degradation path as :meth:`run`.
        """
        self.prepare()
        self._prebuild_static()
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        seeds = np.ascontiguousarray(seeds)
        if self.chunk_size:
            size = self.chunk_size
        else:
            size = adaptive_chunk_size(
                starts.size, self.workers, self._per_walk_seconds,
                self.chunk_target_ms if self.chunk_target_ms is not None
                else DEFAULT_CHUNK_TARGET_MS,
            )
        plan = plan_for_seeds(starts, seeds, size)
        workers_used = max(1, min(self.workers, plan.num_chunks))
        backend = self._resolve_backend(workers_used)
        self.last_backend = backend
        self.last_events = {"chunk_retries": 0, "degraded": []}
        self.last_pool = {"reuses": 0, "builds": 0,
                          "startup_seconds": 0.0, "attach_seconds": 0.0}
        rp = {
            "max_length": int(max_length),
            "stop_probability": float(stop_probability),
            "keep_hops": bool(keep_hops),
            "run_id": current_run_id(),
            "profile": False,
        }
        results = self._execute_chunks(plan, backend, workers_used, rp)

        # Refine the adaptive planner's calibration memory, same as run().
        if plan.num_walks and results:
            total_wall = sum(res.wall_seconds for res in results)
            if total_wall > 0:
                self._per_walk_seconds = total_wall / plan.num_walks

        parent_log = events.current()
        if parent_log is not None:
            for res in results:
                if res.events:
                    parent_log.extend(res.events)

        num = int(starts.size)
        lengths = np.zeros(num, dtype=np.int64)
        hop_vertex = hop_time = None
        if keep_hops:
            hop_vertex = np.zeros((num, int(max_length)), dtype=np.int64)
            hop_time = np.zeros((num, int(max_length)), dtype=np.float64)
        for res in results:
            lo, hi = plan.chunk(res.chunk_id)
            lengths[lo:hi] = res.lengths
            if keep_hops and res.hop_vertex is not None:
                width = res.hop_vertex.shape[1]
                hop_vertex[lo:hi, :width] = res.hop_vertex
                hop_time[lo:hi, :width] = res.hop_time
        if counters is not None:
            counters.merge(CostCounters.merge_all(res.counters for res in results))
        if registry is not None:
            for res in results:
                registry.merge(res.registry)
            registry.counter(
                "parallel.chunk_retries",
                "chunk executions repeated after a crash/hang/broken pool",
            ).inc(int(self.last_events["chunk_retries"]))
            registry.counter(
                "resilience.degraded",
                "backend degradations (process->thread->serial) this run",
            ).inc(len(self.last_events["degraded"]))
            if self.fault_injector is not None:
                self.fault_injector.publish(registry)
        return FrontierResult(
            starts=starts, lengths=lengths,
            hop_vertex=hop_vertex, hop_time=hop_time,
        )

    # -- run ---------------------------------------------------------------

    def run(self, workload: Workload, seed: RngLike = 0,
            record_paths: bool = True, sink=None,
            registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None) -> EngineResult:
        registry = registry if registry is not None else MetricsRegistry()
        tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.tracer = tracer
        profiler = self.profiler
        timer = PhaseTimer()
        with timer.phase("prepare"), tracer.span("prepare", engine=self.name), \
                profiler.phase("prepare"):
            self.prepare()
        rng = make_rng(seed)
        starts = workload.resolve_starts(self.graph.num_vertices, rng).astype(np.int64)
        keep_hops = record_paths or sink is not None

        self.last_events = {"chunk_retries": 0, "degraded": []}
        self.last_pool = {"reuses": 0, "builds": 0,
                          "startup_seconds": 0.0, "attach_seconds": 0.0}
        self._prebuild_static()
        plan = self._plan(starts, workload, rng, profiler)
        chunk_size = int(np.diff(plan.bounds).max()) if plan.num_chunks else 1
        workers_used = max(1, min(self.workers, plan.num_chunks))
        backend = self._resolve_backend(workers_used)
        self.last_backend = backend
        rp = {
            "max_length": workload.max_length,
            "stop_probability": workload.stop_probability,
            "keep_hops": keep_hops,
            "run_id": current_run_id(),
            "profile": profiler.enabled,
        }

        with timer.phase("walk"), tracer.span(
            "walk", engine=self.name, walks=int(starts.size),
            workers=workers_used, chunks=plan.num_chunks, backend=backend,
        ) as walk_span, profiler.phase("walk"):
            results = self._execute_chunks(plan, backend, workers_used, rp)
            walk_span.set("share_mode", self.last_share_mode)
            if self.last_events["degraded"]:
                walk_span.set("degraded_to", self.last_backend)
            for res in results:
                walk_span.children.extend(res.spans)

        if not self.warm_pool:
            # Cold mode: the PR-2 cost model — pools die with the run.
            for pool in self._pools.values():
                pool.close()
            self._pools = {}

        # Refine the calibration memory from what the run actually
        # measured: next run's adaptive plan skips the probe.
        if plan.num_walks and results:
            total_wall = sum(res.wall_seconds for res in results)
            if total_wall > 0:
                self._per_walk_seconds = total_wall / plan.num_walks

        # Adopt events shipped back from forked process workers (thread
        # and serial chunks emitted into the shared parent log already).
        parent_log = events.current()
        if parent_log is not None:
            for res in results:
                if res.events:
                    parent_log.extend(res.events)

        # Absorb per-chunk profiles under the walk phase. Chunks ran
        # concurrently, so their summed inclusive time can exceed the
        # walk frame's wall time — subtract each chunk's root inclusive
        # from walk's *self* so the supervision overhead stays honest
        # (rendering clamps a negative remainder at zero).
        if profiler.enabled:
            total_queue_wait = 0.0
            for res in results:
                total_queue_wait += res.queue_wait_seconds
                snap = res.profile
                if not snap:
                    continue
                profiler.absorb(snap, prefix=("walk",))
                chunk_root = sum(
                    cell["inclusive_s"]
                    for joined, cell in snap.get("phases", {}).items()
                    if ";" not in joined
                )
                profiler.add_seconds(("walk",), 0.0, calls=0,
                                     self_seconds=-chunk_root)
            profiler.add_seconds(("walk", "queue_wait"), total_queue_wait,
                                 calls=len(results))
            if self.last_pool["builds"]:
                profiler.add_seconds(
                    ("walk", "pool_startup"),
                    float(self.last_pool["startup_seconds"]),
                    calls=int(self.last_pool["builds"]),
                )

        # Fold at the barrier, in chunk order: counters, registries,
        # lengths, paths. Merge is associative, so this equals any
        # completion order — but a fixed order keeps reports stable.
        with profiler.phase("fold"):
            counters = CostCounters.merge_all(res.counters for res in results)
            for res in results:
                registry.merge(res.registry)

            lengths = (
                np.concatenate([res.lengths for res in results])
                if results else np.zeros(0, dtype=np.int64)
            )
            FrontierResult(starts=starts, lengths=lengths).observe_lengths(
                registry.histogram("walk.length", "edges per completed walk")
            )
            paths = []
            for res in results:
                lo, hi = plan.chunk(res.chunk_id)
                chunk = FrontierResult(
                    starts=plan.starts[lo:hi], lengths=res.lengths,
                    hop_vertex=res.hop_vertex, hop_time=res.hop_time,
                )
                paths.extend(chunk.materialise_paths(record_paths=record_paths, sink=sink))

            self._publish_parallel_metrics(
                registry, results, workers_used, plan, chunk_size
            )
            memory = self.memory_report()
            counters.publish(registry)
            registry.counter("walk.walks", "walks executed").inc(int(starts.size))
            registry.gauge("memory.bytes", "engine structure bytes").set(memory.total)
            self.publish_telemetry(registry)
        return EngineResult(
            engine=self.name,
            spec=self.spec.describe(),
            workload=workload.describe(),
            paths=paths,
            counters=counters,
            timer=timer,
            memory=memory,
            registry=registry,
            trace=tracer,
            run_id=current_run_id(),
        )

    def _publish_parallel_metrics(
        self,
        registry: MetricsRegistry,
        results: List[ChunkResult],
        workers_used: int,
        plan: ChunkPlan,
        chunk_size: int,
    ) -> None:
        registry.gauge("parallel.workers", "worker pool size").set(workers_used)
        registry.counter("parallel.chunks", "chunks executed").inc(plan.num_chunks)
        registry.gauge(
            "parallel.chunk_size", "walks per chunk the planner chose"
        ).set(chunk_size)
        # The per-chunk registries already folded their queue-wait
        # observations into parallel.queue_wait_seconds via merge();
        # touch it here so the metric exists even for zero-chunk runs.
        # Since the pool is warmed before chunks are enqueued, this
        # measures only unclaimed-queue time — spin-up and attach land
        # in the two pool gauges below.
        registry.histogram(
            "parallel.queue_wait_seconds",
            "delay between chunk enqueue and execution start",
            **LATENCY_BUCKETS,
        )
        registry.gauge(
            "parallel.pool_startup_seconds",
            "seconds this run spent building worker pools (0 = warm reuse)",
        ).set(float(self.last_pool["startup_seconds"]))
        registry.gauge(
            "parallel.attach_seconds",
            "summed per-worker shared-index attach seconds this run",
        ).set(float(self.last_pool["attach_seconds"]))
        registry.counter(
            "parallel.pool_reuse",
            "chunk passes served by an already-warm pool",
        ).inc(int(self.last_pool["reuses"]))
        per_worker: Dict[str, int] = {}
        for res in results:
            per_worker[res.worker_label] = (
                per_worker.get(res.worker_label, 0) + res.total_steps
            )
        steps_hist = registry.histogram(
            "parallel.worker_steps", "sampling steps per worker (fold of chunks)"
        )
        for steps in per_worker.values():
            steps_hist.observe(steps)
        # Supervision ledger: always exported so dashboards can alert on
        # transitions from zero, not on metric appearance.
        registry.counter(
            "parallel.chunk_retries",
            "chunk executions repeated after a crash/hang/broken pool",
        ).inc(int(self.last_events["chunk_retries"]))
        registry.counter(
            "resilience.degraded",
            "backend degradations (process->thread->serial) this run",
        ).inc(len(self.last_events["degraded"]))
        if self.fault_injector is not None:
            self.fault_injector.publish(registry)
