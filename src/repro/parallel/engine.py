"""Chunk-parallel frontier walk execution (multi-core single node).

:class:`ParallelBatchTeaEngine` runs the exact
:class:`~repro.engines.batch.BatchTeaEngine` frontier kernel, but over
*chunks* of the workload's start vertices served from a shared work
queue to a pool of workers. The prepared index is built once in the
parent and shared zero-copy (see :mod:`repro.parallel.sharing`);
workers wrap it with
:meth:`~repro.engines.batch.BatchTeaEngine.from_prepared` and walk
their chunks independently.

Design invariants:

* **Determinism** — every chunk's randomness comes from a seed planned
  up front (:mod:`repro.parallel.chunks`), so results are bit-identical
  across worker counts, backends, and scheduling orders for a fixed
  ``(seed, chunk_size)``. ``--workers 1`` is the reference run, not a
  special case.
* **Per-worker telemetry** — each chunk carries private
  :class:`~repro.sampling.counters.CostCounters`, registry, and tracer;
  the engine folds all of them at the join barrier through their
  associative merge paths, then adds the ``parallel.*`` metrics
  (workers, chunks, queue wait, per-worker step totals).
* **Backends** — ``process`` (forked workers, true multi-core; index
  shared via POSIX shared memory with a copy-on-write fallback),
  ``thread`` (numpy releases the GIL for long stretches of the kernel,
  and threads need no array shipping at all), or ``serial`` (inline,
  for debugging). ``auto`` picks ``process`` where ``fork`` exists.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.persist import hpat_array_catalogue
from repro.engines.base import EngineResult, Workload
from repro.engines.batch import BatchTeaEngine, FrontierResult
from repro.exceptions import WorkerCrashError
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.chunks import ChunkPlan, default_chunk_size, plan_chunks
from repro.parallel.sharing import export_or_none
from repro.parallel.worker import (
    ChunkResult,
    WorkerContext,
    _process_chunk,
    _process_init,
    execute_chunk,
)
from repro.rng import RngLike, make_rng
from repro.sampling.counters import CostCounters
from repro.telemetry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    PhaseTimer,
    Tracer,
    events,
)
from repro.telemetry.events import current_run_id
from repro.walks.spec import WalkSpec

BACKENDS = ("auto", "process", "thread", "serial")
SHARE_MODES = ("auto", "shm", "inherit")

#: Task tuple the supervisor tracks: ``(chunk_id, lo, hi)``.
Task = Tuple[int, int, int]

#: Default per-chunk retry budget (additional attempts after the first).
DEFAULT_CHUNK_RETRIES = 2


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ParallelBatchTeaEngine(BatchTeaEngine):
    """Work-queue parallel TEA: the frontier kernel per chunk, merged.

    Parameters
    ----------
    workers:
        Pool size; defaults to the machine's CPU count. The effective
        pool never exceeds the number of chunks.
    chunk_size:
        Start vertices per chunk; default targets ~4 chunks per worker
        (queue-level load balancing). Chunking — not worker count —
        keys the randomness, so pin it when comparing worker counts.
    backend:
        ``auto`` | ``process`` | ``thread`` | ``serial``.
    share_mode:
        ``auto`` (shared memory, falling back to fork/copy-on-write),
        ``shm``, or ``inherit`` (copy-on-write only). Only the process
        backend ships arrays; threads share the address space.
    """

    name = "tea-parallel"

    def __init__(
        self,
        graph: TemporalGraph,
        spec: WalkSpec,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        backend: str = "auto",
        share_mode: str = "auto",
        retries: int = DEFAULT_CHUNK_RETRIES,
        chunk_timeout: Optional[float] = None,
        fault_injector=None,
    ):
        super().__init__(graph, spec)
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if share_mode not in SHARE_MODES:
            raise ValueError(
                f"share_mode must be one of {SHARE_MODES}, got {share_mode!r}"
            )
        self.workers = int(workers) if workers else (multiprocessing.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.chunk_size = int(chunk_size) if chunk_size else None
        self.backend = backend
        self.share_mode = share_mode
        #: Per-chunk retry budget: a chunk may fail (crash, hang, broken
        #: pool) this many times beyond its first attempt before the run
        #: aborts with :class:`WorkerCrashError`.
        self.retries = int(retries)
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        #: Seconds a single chunk may run before the supervisor declares
        #: it hung (``None`` disables the watchdog). Applies to the
        #: process and thread backends' future waits.
        self.chunk_timeout = chunk_timeout
        #: Optional :class:`repro.resilience.faults.FaultInjector`
        #: threaded into the worker context (``chunk`` site).
        self.fault_injector = fault_injector
        #: How the last run actually shared arrays / executed (for
        #: reports and tests): set by :meth:`run`.
        self.last_backend: Optional[str] = None
        self.last_share_mode: Optional[str] = None
        #: Supervision ledger of the last run: ``chunk_retries`` (chunk
        #: executions repeated after a failure) and ``degraded`` (the
        #: backends fallen back to, in order).
        self.last_events: Dict[str, object] = {"chunk_retries": 0, "degraded": []}

    # -- context -----------------------------------------------------------

    def _resolve_backend(self, workers_used: int) -> str:
        if self.backend == "auto":
            if workers_used <= 1:
                return "serial"
            return "process" if _fork_available() else "thread"
        if self.backend == "process" and not _fork_available():
            return "thread"
        return self.backend

    def _shared_arrays(self) -> Dict[str, np.ndarray]:
        """The read-only image workers need, under the catalogue names."""
        g = self.graph
        arrays: Dict[str, np.ndarray] = {
            "graph.indptr": g.indptr,
            "graph.nbr": g.nbr,
            "graph.etime": g.etime,
        }
        if g.eweight is not None:
            arrays["graph.eweight"] = g.eweight
        arrays.update(hpat_array_catalogue(self.index, self.candidate_sizes))
        if g._static_indptr is not None:
            arrays["static.indptr"] = g._static_indptr
            arrays["static.nbr"] = g._static_nbr
        if self._static_ready:
            arrays["static.keys"] = self._static_keys
        return arrays

    def _build_context(
        self, plan: ChunkPlan, workload: Workload, keep_hops: bool
    ) -> WorkerContext:
        # Build the static adjacency once in the parent (any dynamic
        # parameter may consult it): workers then share it instead of
        # each lazily rebuilding, and the thread backend avoids a
        # concurrent-build race inside the kernel.
        if (
            self.spec.dynamic_parameter is not None
            and self.graph.num_vertices
            and self.graph._static_indptr is None
        ):
            self.graph._build_static_adjacency()
        aux = self.index.aux
        return WorkerContext(
            spec=self.spec,
            starts=plan.starts,
            seeds=plan.seeds,
            max_length=workload.max_length,
            stop_probability=workload.stop_probability,
            keep_hops=keep_hops,
            aux_max=aux.max_size if aux is not None else -1,
            arrays=self._shared_arrays(),
            injector=self.fault_injector,
            run_id=current_run_id(),
            profile=self.profiler.enabled,
        )

    # -- execution ---------------------------------------------------------
    #
    # The supervised executor. One attempt = one pool (or inline pass)
    # over the currently-pending chunks; the supervisor classifies every
    # failed chunk as "crash" (the future raised), "hang" (the per-chunk
    # timeout expired), or "broken" (the pool itself died, e.g. a worker
    # process exited hard) and requeues it under the retry budget.
    # "hang"/"broken" also degrade the backend one level down the chain
    # process -> thread -> serial: a pool that killed or lost a worker
    # is not trusted with the retry. Determinism survives all of this —
    # a chunk's randomness is keyed by its planned seed, never by the
    # attempt or the backend that finally ran it.

    def _degradation_chain(self, backend: str) -> List[str]:
        chain = ["process", "thread", "serial"]
        return chain[chain.index(backend):] if backend in chain else ["serial"]

    def _collect(self, futures):
        """Wait on ``(future, task)`` pairs; classify failures.

        Returns ``(done, failed, pool_hurt)`` where ``done`` maps
        chunk_id -> ChunkResult, ``failed`` lists
        ``(task, reason, exc)``, and ``pool_hurt`` means the pool hung
        or broke (shutdown must not block on it).
        """
        done: Dict[int, ChunkResult] = {}
        failed = []
        broken = hung = False
        for fut, task in futures:
            cid = task[0]
            try:
                if broken:
                    # A broken pool poisons every unfinished future with
                    # BrokenExecutor; salvage the ones that completed.
                    done[cid] = fut.result(timeout=0)
                else:
                    done[cid] = fut.result(timeout=self.chunk_timeout)
            except FuturesTimeoutError as exc:
                hung = True
                fut.cancel()
                failed.append((task, "hang", exc))
            except BrokenExecutor as exc:
                broken = True
                failed.append((task, "broken", exc))
            except Exception as exc:  # noqa: BLE001 — worker raised
                failed.append((task, "crash", exc))
        return done, failed, broken or hung

    def _attempt_serial(self, tasks: List[Task], ctx: WorkerContext, attempts):
        done: Dict[int, ChunkResult] = {}
        failed = []
        for chunk_id, lo, hi in tasks:
            try:
                done[chunk_id] = execute_chunk(
                    self, ctx, chunk_id, lo, hi, time.monotonic(),
                    attempt=attempts[chunk_id],
                )
            except Exception as exc:  # noqa: BLE001
                failed.append(((chunk_id, lo, hi), "crash", exc))
        return done, failed

    def _attempt_thread(
        self, tasks: List[Task], ctx: WorkerContext, workers_used: int, attempts
    ):
        pool = ThreadPoolExecutor(
            max_workers=workers_used, thread_name_prefix="walk"
        )
        pool_hurt = True
        try:
            futures = [
                (
                    pool.submit(
                        execute_chunk, self, ctx, chunk_id, lo, hi,
                        time.monotonic(), attempts[chunk_id],
                    ),
                    (chunk_id, lo, hi),
                )
                for chunk_id, lo, hi in tasks
            ]
            done, failed, pool_hurt = self._collect(futures)
        finally:
            # A hung thread cannot be killed: abandon the pool (daemonic
            # join happens at interpreter exit) rather than deadlock.
            pool.shutdown(wait=not pool_hurt, cancel_futures=True)
        return done, failed

    def _attempt_process(
        self, tasks: List[Task], ctx: WorkerContext, workers_used: int, attempts
    ):
        pool = ProcessPoolExecutor(
            max_workers=workers_used,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_process_init,
            initargs=(ctx,),
        )
        pool_hurt = True
        try:
            futures = []
            unsubmitted = []
            for chunk_id, lo, hi in tasks:
                try:
                    futures.append((
                        pool.submit(
                            _process_chunk, chunk_id, lo, hi,
                            time.monotonic(), attempts[chunk_id],
                        ),
                        (chunk_id, lo, hi),
                    ))
                except BrokenExecutor as exc:
                    # A worker died while we were still submitting:
                    # everything not yet in flight fails as "broken".
                    unsubmitted.append(((chunk_id, lo, hi), "broken", exc))
            done, failed, pool_hurt = self._collect(futures)
            failed.extend(unsubmitted)
        finally:
            pool.shutdown(wait=not pool_hurt, cancel_futures=True)
        return done, failed

    def _execute_chunks(
        self, plan: ChunkPlan, ctx: WorkerContext, backend: str, workers_used: int
    ) -> List[ChunkResult]:
        pending: List[Task] = [
            (chunk_id, *plan.chunk(chunk_id)) for chunk_id in range(plan.num_chunks)
        ]
        if backend == "serial" or workers_used <= 1:
            chain = ["serial"]
        else:
            chain = self._degradation_chain(backend)

        # Process backend: export the image to shared memory when asked;
        # otherwise (or on export failure) the pre-fork context's arrays
        # reach children copy-on-write, which is equally zero-copy. The
        # image outlives any degradation — thread/serial retries read
        # the shm views just as well.
        inherit_arrays = ctx.arrays
        image = None
        if chain[0] == "process" and self.share_mode in ("auto", "shm"):
            image = export_or_none(ctx.arrays)
            if image is not None:
                ctx.arrays = image.arrays()

        attempts = {task[0]: 0 for task in pending}
        results: Dict[int, ChunkResult] = {}
        level = 0
        try:
            while pending:
                active = chain[level]
                self.last_backend = active
                if active == "process":
                    self.last_share_mode = "shm" if image is not None else "cow"
                    done, failed = self._attempt_process(
                        pending, ctx, workers_used, attempts
                    )
                elif active == "thread":
                    if image is None:
                        self.last_share_mode = "local"
                    done, failed = self._attempt_thread(
                        pending, ctx, workers_used, attempts
                    )
                else:
                    if image is None:
                        self.last_share_mode = "local"
                    done, failed = self._attempt_serial(pending, ctx, attempts)
                results.update(done)
                if not failed:
                    break
                degrade = False
                pending = []
                for task, reason, exc in failed:
                    cid = task[0]
                    attempts[cid] += 1
                    if attempts[cid] > self.retries:
                        raise WorkerCrashError(
                            f"chunk {cid} failed {attempts[cid]} times "
                            f"(last failure: {reason}); retry budget "
                            f"({self.retries}) exhausted",
                            chunk_id=cid, attempts=attempts[cid],
                        ) from exc
                    self.last_events["chunk_retries"] += 1
                    events.emit(
                        "chunk.retry", chunk_id=cid, attempt=attempts[cid],
                        reason=reason, error=type(exc).__name__,
                    )
                    pending.append(task)
                    if reason in ("hang", "broken"):
                        degrade = True
                if degrade and level < len(chain) - 1:
                    level += 1
                    self.last_events["degraded"].append(chain[level])
                    events.emit(
                        "backend.degraded",
                        from_backend=chain[level - 1], to_backend=chain[level],
                    )
        finally:
            if image is not None:
                ctx.arrays = inherit_arrays  # release shm-backed views
                image.dispose()
        # Chunk order, regardless of which attempt produced each result:
        # the fold below is then deterministic.
        return [results[cid] for cid in sorted(results)]

    # -- run ---------------------------------------------------------------

    def run(self, workload: Workload, seed: RngLike = 0,
            record_paths: bool = True, sink=None,
            registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None) -> EngineResult:
        registry = registry if registry is not None else MetricsRegistry()
        tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.tracer = tracer
        profiler = self.profiler
        timer = PhaseTimer()
        with timer.phase("prepare"), tracer.span("prepare", engine=self.name), \
                profiler.phase("prepare"):
            self.prepare()
        rng = make_rng(seed)
        starts = workload.resolve_starts(self.graph.num_vertices, rng).astype(np.int64)
        keep_hops = record_paths or sink is not None

        chunk_size = self.chunk_size or default_chunk_size(starts.size, self.workers)
        plan = plan_chunks(starts, chunk_size, rng)
        workers_used = max(1, min(self.workers, plan.num_chunks))
        backend = self._resolve_backend(workers_used)
        self.last_backend = backend
        self.last_events = {"chunk_retries": 0, "degraded": []}
        ctx = self._build_context(plan, workload, keep_hops)

        with timer.phase("walk"), tracer.span(
            "walk", engine=self.name, walks=int(starts.size),
            workers=workers_used, chunks=plan.num_chunks, backend=backend,
        ) as walk_span, profiler.phase("walk"):
            results = self._execute_chunks(plan, ctx, backend, workers_used)
            walk_span.set("share_mode", self.last_share_mode)
            if self.last_events["degraded"]:
                walk_span.set("degraded_to", self.last_backend)
            for res in results:
                walk_span.children.extend(res.spans)

        # Adopt events shipped back from forked process workers (thread
        # and serial chunks emitted into the shared parent log already).
        parent_log = events.current()
        if parent_log is not None:
            for res in results:
                if res.events:
                    parent_log.extend(res.events)

        # Absorb per-chunk profiles under the walk phase. Chunks ran
        # concurrently, so their summed inclusive time can exceed the
        # walk frame's wall time — subtract each chunk's root inclusive
        # from walk's *self* so the supervision overhead stays honest
        # (rendering clamps a negative remainder at zero).
        if profiler.enabled:
            total_queue_wait = 0.0
            for res in results:
                total_queue_wait += res.queue_wait_seconds
                snap = res.profile
                if not snap:
                    continue
                profiler.absorb(snap, prefix=("walk",))
                chunk_root = sum(
                    cell["inclusive_s"]
                    for joined, cell in snap.get("phases", {}).items()
                    if ";" not in joined
                )
                profiler.add_seconds(("walk",), 0.0, calls=0,
                                     self_seconds=-chunk_root)
            profiler.add_seconds(("walk", "queue_wait"), total_queue_wait,
                                 calls=len(results))

        # Fold at the barrier, in chunk order: counters, registries,
        # lengths, paths. Merge is associative, so this equals any
        # completion order — but a fixed order keeps reports stable.
        with profiler.phase("fold"):
            counters = CostCounters.merge_all(res.counters for res in results)
            for res in results:
                registry.merge(res.registry)

            lengths = (
                np.concatenate([res.lengths for res in results])
                if results else np.zeros(0, dtype=np.int64)
            )
            FrontierResult(starts=starts, lengths=lengths).observe_lengths(
                registry.histogram("walk.length", "edges per completed walk")
            )
            paths = []
            for res in results:
                lo, hi = plan.chunk(res.chunk_id)
                chunk = FrontierResult(
                    starts=plan.starts[lo:hi], lengths=res.lengths,
                    hop_vertex=res.hop_vertex, hop_time=res.hop_time,
                )
                paths.extend(chunk.materialise_paths(record_paths=record_paths, sink=sink))

            self._publish_parallel_metrics(registry, results, workers_used, plan)
            memory = self.memory_report()
            counters.publish(registry)
            registry.counter("walk.walks", "walks executed").inc(int(starts.size))
            registry.gauge("memory.bytes", "engine structure bytes").set(memory.total)
            self.publish_telemetry(registry)
        return EngineResult(
            engine=self.name,
            spec=self.spec.describe(),
            workload=workload.describe(),
            paths=paths,
            counters=counters,
            timer=timer,
            memory=memory,
            registry=registry,
            trace=tracer,
            run_id=current_run_id(),
        )

    def _publish_parallel_metrics(
        self,
        registry: MetricsRegistry,
        results: List[ChunkResult],
        workers_used: int,
        plan: ChunkPlan,
    ) -> None:
        registry.gauge("parallel.workers", "worker pool size").set(workers_used)
        registry.counter("parallel.chunks", "chunks executed").inc(plan.num_chunks)
        # The per-chunk registries already folded their queue-wait
        # observations into parallel.queue_wait_seconds via merge();
        # touch it here so the metric exists even for zero-chunk runs.
        registry.histogram(
            "parallel.queue_wait_seconds",
            "delay between chunk enqueue and execution start",
            **LATENCY_BUCKETS,
        )
        per_worker: Dict[str, int] = {}
        for res in results:
            per_worker[res.worker_label] = (
                per_worker.get(res.worker_label, 0) + res.total_steps
            )
        steps_hist = registry.histogram(
            "parallel.worker_steps", "sampling steps per worker (fold of chunks)"
        )
        for steps in per_worker.values():
            steps_hist.observe(steps)
        # Supervision ledger: always exported so dashboards can alert on
        # transitions from zero, not on metric appearance.
        registry.counter(
            "parallel.chunk_retries",
            "chunk executions repeated after a crash/hang/broken pool",
        ).inc(int(self.last_events["chunk_retries"]))
        registry.counter(
            "resilience.degraded",
            "backend degradations (process->thread->serial) this run",
        ).inc(len(self.last_events["degraded"]))
        if self.fault_injector is not None:
            self.fault_injector.publish(registry)
