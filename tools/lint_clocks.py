#!/usr/bin/env python3
"""Lint: engine code must take time from ``repro.telemetry.clock``.

Phase attribution is only trustworthy when every engine reads the same
clock — a stray ``time.perf_counter()`` in a hot loop produces timings
the profiler cannot see or calibrate away. This script fails (exit 1)
on any raw clock *call* in ``src/repro/engines/``:

* ``time.time(`` / ``time.perf_counter(`` / ``time.monotonic(``
* bare ``perf_counter(`` / ``monotonic(`` (from-imports)

``repro/telemetry/clock.py`` itself is the sanctioned source (it lives
outside the scanned tree). String/comment matches are excluded by
scanning tokenized source, not raw text, so e.g. a ``"time.bin"``
filename never trips it.

Usage: python tools/lint_clocks.py [root]
"""

from __future__ import annotations

import io
import sys
import tokenize
from pathlib import Path

#: Dotted and bare call spellings of the banned raw clocks.
BANNED = {
    ("time", "time"),
    ("time", "perf_counter"),
    ("time", "monotonic"),
}
BANNED_BARE = {"perf_counter", "monotonic"}

#: Directory whose files must use repro.telemetry.clock.
SCAN_SUBDIR = Path("src") / "repro" / "engines"


def scan_file(path: Path):
    """Yield ``(line, spelling)`` for each raw clock call in ``path``."""
    source = path.read_bytes()
    try:
        tokens = list(tokenize.tokenize(io.BytesIO(source).readline))
    except tokenize.TokenizeError:  # pragma: no cover - unparseable file
        return
    # Token windows: NAME(value in module) OP(.) NAME(attr) OP(()
    # for dotted calls, NAME OP(() for bare from-import calls.
    names = [
        t for t in tokens
        if t.type in (tokenize.NAME, tokenize.OP)
    ]
    for i, tok in enumerate(names):
        if tok.type != tokenize.NAME:
            continue
        # Dotted: time . perf_counter (
        if (
            i + 3 < len(names)
            and names[i + 1].string == "."
            and names[i + 2].type == tokenize.NAME
            and names[i + 3].string == "("
            and (tok.string, names[i + 2].string) in BANNED
        ):
            yield tok.start[0], f"{tok.string}.{names[i + 2].string}("
        # Bare: perf_counter ( — but not obj.perf_counter( (the dotted
        # window above already classifies those by their module name).
        elif (
            tok.string in BANNED_BARE
            and i + 1 < len(names)
            and names[i + 1].string == "("
            and (i == 0 or names[i - 1].string != ".")
        ):
            yield tok.start[0], f"{tok.string}("


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    target = root / SCAN_SUBDIR
    if not target.is_dir():
        print(f"lint_clocks: no such directory {target}", file=sys.stderr)
        return 2
    problems = []
    for path in sorted(target.rglob("*.py")):
        for line, spelling in scan_file(path):
            problems.append(f"{path.relative_to(root)}:{line}: raw clock "
                            f"call {spelling!r} — use repro.telemetry.clock")
    if problems:
        print("\n".join(problems))
        print(f"lint_clocks: {len(problems)} raw clock call(s) in "
              f"{SCAN_SUBDIR}; engines must import from repro.telemetry.clock")
        return 1
    print(f"lint_clocks: clean ({SCAN_SUBDIR})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
