"""Figure 14 companion — batched out-of-core path: cache × prefetch sweep.

The scalar ``tea-ooc`` engine pays one synchronous trunk read per walker
step; ``tea-ooc-batch`` advances the whole frontier per step, coalesces
the step's trunk ranges into large backing reads, and (optionally)
overlaps next-step I/O with sampling via the async prefetcher. This
sweep runs both engines over cache budgets with prefetch off/on and
records the full grid to ``bench_results/ooc_cache.json``.

Asserted shape (the tentpole's acceptance bar):

* batched is >= 3x faster than scalar in the walk phase at the same
  cache budget (frontier vectorisation + coalescing);
* batched issues strictly fewer backing read operations than scalar at
  the same budget (coalescing is a strict win on operations even when
  logical bytes match);
* prefetch conservation holds on every prefetch-enabled run.
"""

import json

import pytest

from benchmarks.conftest import (
    BENCH_EXP_SCALE,
    BENCH_R,
    BENCH_SCALE,
    RESULTS_DIR,
    record_history,
)
from repro.engines import (
    BatchTeaOutOfCoreEngine,
    TeaOutOfCoreEngine,
    Workload,
)
from repro.walks.apps import temporal_node2vec

TRUNK_SIZE = 10  # the paper's choice for twitter under 16 GB
CACHE_SWEEP = (("no-cache", 0), ("cache-256KiB", 256 << 10),
               ("cache-4MiB", 4 << 20))
SPEEDUP_FLOOR = 3.0


def _row(engine_name, cache_label, cache_bytes, prefetch, result, store):
    stats = store.cache.stats
    return {
        "engine": engine_name,
        "cache": cache_label,
        "cache_bytes": cache_bytes,
        "prefetch": prefetch,
        "walk_seconds": result.timer.seconds["walk"],
        "total_seconds": result.total_seconds,
        "steps": result.total_steps,
        "io_bytes": result.counters.io_bytes,
        "io_blocks": result.counters.io_blocks,
        "read_ops": store.read_ops,
        "cache_hit_rate": stats.hit_rate,
        "cache_bytes_served": stats.bytes_served,
        "prefetch_issued": store.prefetch_issued,
        "prefetch_hits": store.prefetch_hits,
        "prefetch_wasted": store.prefetch_wasted,
        "prefetch_in_flight": store.prefetch_in_flight,
        "io_overlap_seconds": store.prefetch_overlap_seconds,
    }


def test_ooc_cache_sweep(benchmark, datasets, tmp_path):
    graph = datasets["growth"]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    # Figure 14 drives a walker per vertex times R; the batched engine's
    # win grows with frontier density (fixed per-iteration overhead is
    # amortised over more lanes), so the sweep uses a dense frontier.
    workload = Workload(walks_per_vertex=4 * BENCH_R, max_length=80)
    rows = []

    def run():
        for cache_label, cache_bytes in CACHE_SWEEP:
            scalar = TeaOutOfCoreEngine(
                graph, spec, trunk_size=TRUNK_SIZE,
                storage_dir=str(tmp_path / f"s-{cache_label}"),
                cache_bytes=cache_bytes,
            )
            result = scalar.run(workload, seed=9, record_paths=False)
            rows.append(_row("tea-ooc", cache_label, cache_bytes, False,
                             result, scalar.index.store))
            for prefetch in (False, True):
                if prefetch and not cache_bytes:
                    continue  # prefetch needs a cache to warm
                batch = BatchTeaOutOfCoreEngine(
                    graph, spec, trunk_size=TRUNK_SIZE,
                    storage_dir=str(
                        tmp_path / f"b-{cache_label}-{int(prefetch)}"
                    ),
                    cache_bytes=cache_bytes, prefetch=prefetch,
                )
                result = batch.run(workload, seed=9, record_paths=False)
                store = batch.index.store
                rows.append(_row("tea-ooc-batch", cache_label, cache_bytes,
                                 prefetch, result, store))
                if prefetch:
                    settled = (store.prefetch_hits + store.prefetch_wasted
                               + store.prefetch_in_flight)
                    assert store.prefetch_issued == settled, (
                        "prefetch conservation violated"
                    )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    by_key = {(r["engine"], r["cache"], r["prefetch"]): r for r in rows}
    speedups = {}
    for cache_label, cache_bytes in CACHE_SWEEP:
        scalar = by_key[("tea-ooc", cache_label, False)]
        batch = by_key[("tea-ooc-batch", cache_label, False)]
        speedups[cache_label] = scalar["walk_seconds"] / batch["walk_seconds"]
        # Coalescing: strictly fewer backing reads at every equal budget.
        assert batch["read_ops"] < scalar["read_ops"], (
            cache_label, batch["read_ops"], scalar["read_ops"])
    # The headline bar at the headline budget.
    assert speedups["cache-4MiB"] >= SPEEDUP_FLOOR, speedups

    doc = {
        "experiment": "ooc_cache",
        "dataset": "growth",
        "dataset_scale": BENCH_SCALE,
        "trunk_size": TRUNK_SIZE,
        "workload": workload.describe(),
        "app": "temporal_node2vec(p=0.5, q=2.0)",
        "seed": 9,
        "rows": rows,
        "walk_speedup_batch_vs_scalar": speedups,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "ooc_cache.json"
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\n===== ooc_cache =====\n-> {out_path}")
    for row in rows:
        print(
            f"{row['engine']:>14} {row['cache']:>13} "
            f"prefetch={'on' if row['prefetch'] else 'off':>3} "
            f"walk={row['walk_seconds']:.3f}s read_ops={row['read_ops']} "
            f"io={row['io_bytes'] / 1024**2:.1f}MiB "
            f"hit_rate={row['cache_hit_rate']:.3f}"
        )
    print("walk speedup batch/scalar: "
          + "  ".join(f"{k}={v:.2f}x" for k, v in speedups.items()))
    # History: the headline numbers `repro bench compare` gates on.
    headline = by_key[("tea-ooc-batch", "cache-4MiB", False)]
    record_history(
        "ooc_cache",
        {
            "speedup_cache_4MiB": speedups["cache-4MiB"],
            "batch_walk_s": headline["walk_seconds"],
            "batch_read_ops": float(headline["read_ops"]),
            "cache_hit_ratio": headline["cache_hit_rate"],
        },
        dataset="growth", scale=BENCH_SCALE, trunk_size=TRUNK_SIZE,
    )
