"""Figure 10 — TEA vs single-node KnightKing vs CTDNE (temporal node2vec).

Paper: TEA is up to 5,627× faster than single-node KnightKing and up to
8,816× faster than CTDNE (a model implementation with no system-level
optimisations).

Here: same three engines. CTDNE's per-edge interpreter-speed weight
evaluation makes it the slowest by wall clock even at our scale; the
cost model captures the rest of the gap (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, BENCH_R, write_result
from repro.bench.report import format_rows
from repro.bench.runner import ExperimentRow
from repro.engines import CtdneEngine, KnightKingEngine, TeaEngine, Workload
from repro.walks.apps import temporal_node2vec

ENGINES = {
    "tea": lambda g, s: TeaEngine(g, s),
    "knightking-1node": lambda g, s: KnightKingEngine(g, s, nodes=1),
    "ctdne": lambda g, s: CtdneEngine(g, s),
}

_rows = []


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
@pytest.mark.parametrize("engine", list(ENGINES))
def test_fig10_other_engines(benchmark, datasets, dataset, engine):
    graph = datasets[dataset]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=BENCH_R, max_length=80)

    def run():
        return ENGINES[engine](graph, spec).run(workload, seed=2, record_paths=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = ExperimentRow.from_result(dataset, result)
    row.engine = engine
    _rows.append(row)
    benchmark.extra_info["total_s"] = result.total_seconds


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if len(_rows) < 12:
        return
    by_key = {(r.dataset, r.engine): r for r in _rows}
    lines = [
        "Figure 10: TEA vs K-1-node vs CTDNE (temporal node2vec, seconds)",
        "",
        format_rows(
            _rows,
            columns=("dataset", "engine", "walk_seconds", "total_seconds",
                     "edges_per_step"),
        ),
        "",
    ]
    for dataset in ("growth", "edit", "delicious", "twitter"):
        tea = by_key[(dataset, "tea")]
        kk = by_key[(dataset, "knightking-1node")]
        ct = by_key[(dataset, "ctdne")]
        lines.append(
            f"  {dataset:10s} TEA cost-model speedup: "
            f"{kk.edges_per_step / tea.edges_per_step:6.1f}x over K-1-node, "
            f"{ct.edges_per_step / tea.edges_per_step:6.1f}x over CTDNE; "
            f"walk-time speedup {kk.walk_seconds / tea.walk_seconds:5.2f}x / "
            f"{ct.walk_seconds / tea.walk_seconds:5.2f}x"
        )
        # Paper shape: both baselines cost more per step than TEA, and
        # CTDNE's naive evaluation is the slowest walker by wall clock.
        assert tea.edges_per_step < kk.edges_per_step
        assert tea.edges_per_step < ct.edges_per_step
        assert ct.walk_seconds > tea.walk_seconds
    write_result("fig10_other_engines", "\n".join(lines))
