"""Ablation — PAT trunkSize and the paper's ⌊√D⌋ rule (§3.2).

The paper argues trunkSize should balance the two ITS stages: selecting
among D/trunkSize trunk boundaries costs O(log(D/trunkSize)) and the
partial-trunk interior costs O(log trunkSize), so ⌊√D⌋ equalises them
in memory; out of core the rule flips to "as small as fits". This bench
sweeps fixed trunk sizes against the per-vertex √ rule and checks the
U-shape: extreme trunk sizes cost more probes per step than the rule.
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, BENCH_R, write_result
from repro.bench.report import format_series
from repro.engines import TeaEngine, Workload
from repro.walks.apps import exponential_walk

TRUNK_SIZES = [2, 8, None, 64, 256]  # None = the paper's per-vertex √D rule

_cost = {}
_memory = {}
_ooc_resident = {}


@pytest.mark.parametrize("trunk_size", TRUNK_SIZES,
                         ids=lambda t: "sqrt-rule" if t is None else f"ts={t}")
def test_trunk_size_ablation(benchmark, datasets, trunk_size):
    graph = datasets["twitter"]
    spec = exponential_walk(scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=BENCH_R, max_length=80)

    def run():
        engine = TeaEngine(graph, spec, structure="pat", trunk_size=trunk_size)
        return engine.run(workload, seed=8, record_paths=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    label = "sqrt-rule" if trunk_size is None else f"ts={trunk_size}"
    _cost[label] = result.counters.edges_per_step
    _memory[label] = result.memory.total / 1024**2
    # Out-of-core resident state scales as |E|/trunkSize (§3.2's other
    # half: "as small as possible while the prefix array fits").
    engine = TeaEngine(graph, spec, structure="pat", trunk_size=trunk_size)
    engine.prepare()
    import numpy as np

    nt = np.ceil(graph.degrees() / engine.index.trunk_sizes).sum() + graph.num_vertices
    _ooc_resident[label] = float(nt * 8 / 1024)
    benchmark.extra_info.update(edges_per_step=_cost[label])


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if len(_cost) < len(TRUNK_SIZES):
        return
    # The paper's rule sits at (or near) the bottom of the U: strictly
    # better than both extremes of the sweep.
    assert _cost["sqrt-rule"] < _cost["ts=2"]
    assert _cost["sqrt-rule"] < _cost["ts=256"]
    # OOC residency shrinks as trunkSize grows (the flip side of the rule).
    assert _ooc_resident["ts=256"] < _ooc_resident["ts=2"]
    text = format_series(
        {"edges_per_step": _cost, "memory_mib": _memory,
         "ooc_resident_kib": _ooc_resident},
        x_label="trunkSize",
        title=(
            "Ablation: PAT trunkSize sweep (twitter analogue) — the §3.2 "
            "sqrt rule balances trunk-selection vs in-trunk ITS"
        ),
    )
    write_result("trunk_size_ablation", text)
