"""Strong scaling of the chunk-parallel walk executor.

Not a paper figure: the paper's engine is multi-threaded C++ and its
Table 4 numbers already assume all cores; this bench characterises the
reproduction's analogue — :class:`repro.parallel.ParallelBatchTeaEngine`
running the R·|V| node2vec workload (Table 4's shape) over 1/2/4/8
workers with one fixed chunk plan, so the sweep isolates pure execution
scaling:

* wall time and speedup per worker count (the strong-scaling curve);
* queue-wait share (work-queue pressure: time chunks spent enqueued
  relative to total worker-seconds);
* sampled steps per run — asserted identical across worker counts,
  the executor's bit-determinism contract.

On single-core CI hosts the speedup column documents overhead rather
than scaling; the determinism assertion is the portable invariant.
"""

import os

import pytest

from benchmarks.conftest import (
    BENCH_R,
    BENCH_SCALE,
    record_history,
    write_json_result,
)
from repro.engines.base import Workload
from repro.graph.datasets import load_dataset
from repro.parallel.scaling import format_scaling_table, run_scaling
from repro.walks.apps import temporal_node2vec

WORKER_COUNTS = (1, 2, 4, 8)

_rows = {}
_notes = []


@pytest.fixture(scope="module")
def scaling_graph():
    # ~100k edges at scale 1.0: the Table 4 shape on the synthetic
    # twitter analogue, halved to keep the four-point sweep tractable
    # in pure Python.
    return load_dataset("twitter", seed=0, scale=0.5 * BENCH_SCALE)


def test_walk_scaling_sweep(benchmark, scaling_graph):
    spec = temporal_node2vec(p=4.0, q=0.25, scale=6.0)
    workload = Workload(walks_per_vertex=BENCH_R, max_length=80,
                        max_walks=2000)

    def run():
        _notes.clear()
        return run_scaling(
            scaling_graph, spec, workload,
            worker_counts=WORKER_COUNTS, seed=0, notes=_notes,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows["sweep"] = rows
    benchmark.extra_info.update(
        {f"W={row.workers}": row.snapshot() for row in rows}
    )


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    rows = _rows.get("sweep")
    if not rows:
        return
    # Oversubscribed counts (> cpu_count) are skipped with a note, so
    # the executed rows are a prefix of WORKER_COUNTS.
    executed = [row.workers for row in rows]
    expected = [w for w in WORKER_COUNTS
                if w <= max(1, os.cpu_count() or 1)] or [1]
    assert executed == expected, (
        f"sweep executed {executed}, expected {expected} on this host"
    )
    # Determinism: per-walk seeding -> identical sampled steps everywhere.
    steps = {row.steps for row in rows}
    assert len(steps) == 1, f"steps varied across worker counts: {steps}"
    # Warm-pool reuse: every multi-worker point's second (measured) run
    # must have found its pool alive.
    for row in rows:
        if row.workers > 1:
            assert row.warm_startup_seconds == 0.0, (
                f"{row.workers}-worker warm run rebuilt its pool "
                f"({row.warm_startup_seconds:.4f}s startup)"
            )
    title = (
        "Parallel walk executor strong scaling "
        f"(twitter@{0.5 * BENCH_SCALE:g}, node2vec, R={BENCH_R}, L=80)"
    )
    text = format_scaling_table(rows, title=title, notes=_notes)
    print(f"\n===== walk_scaling =====\n{text}")
    # Machine-readable normal form (the .txt artifact is retired): the
    # sweep rows verbatim, plus the rendered table for human diffing.
    write_json_result("walk_scaling", {
        "title": title,
        "worker_counts": list(WORKER_COUNTS),
        "executed_worker_counts": executed,
        "notes": list(_notes),
        "rows": [row.snapshot() for row in rows],
        "table": text,
    })
    # History: flatten the curve into one record so `repro bench
    # compare` can gate regressions on any point of it. Warm walk time
    # and cold pool startup are recorded separately — the pool-reuse
    # contract makes them independent axes of regression.
    metrics = {}
    for row in rows:
        metrics[f"walk_s_w{row.workers}"] = row.walk_seconds
        metrics[f"speedup_w{row.workers}"] = row.speedup
        metrics[f"pool_startup_s_w{row.workers}"] = row.pool_startup_seconds
        metrics[f"warm_startup_s_w{row.workers}"] = row.warm_startup_seconds
    from repro.kernels import resolve_backend

    record_history(
        "walk_scaling", metrics,
        dataset="twitter", scale=0.5 * BENCH_SCALE, r=BENCH_R, length=80,
        notes=list(_notes),
        kernel_backend=resolve_backend("auto").name,
    )
