"""Extension ablation — distributed TEA (the paper's §4.4 future work).

Not a paper figure: the paper lists distributed execution as future work
and sketches the solution (KnightKing's walker-centric BSP engine with
rejection sampling replaced by PAT/HPAT). This bench characterises that
design in the simulated cluster:

* modeled makespan vs worker count (scaling curve);
* partitioner ablation: hash vs range vs degree-balanced — the
  trade-off between load balance (compute_balance) and communication
  (migration rate).
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, write_result
from repro.bench.report import format_series
from repro.distributed import DistributedTeaEngine
from repro.engines import Workload
from repro.walks.apps import exponential_walk

_scaling = {}
_partition = {}


@pytest.mark.parametrize("workers", [1, 2, 4, 8, 16])
def test_distributed_scaling(benchmark, datasets, workers):
    graph = datasets["growth"]
    spec = exponential_walk(scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=2, max_length=80)

    def run():
        engine = DistributedTeaEngine(
            graph, spec, num_workers=workers, partitioner="degree"
        )
        return engine.run(workload, seed=0, record_paths=False)

    _, stats, _, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    _scaling[workers] = stats
    benchmark.extra_info.update(stats.snapshot())


@pytest.mark.parametrize("partitioner", ["hash", "range", "degree"])
def test_partitioner_ablation(benchmark, datasets, partitioner):
    graph = datasets["growth"]
    spec = exponential_walk(scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=2, max_length=80)

    def run():
        engine = DistributedTeaEngine(
            graph, spec, num_workers=8, partitioner=partitioner
        )
        return engine.run(workload, seed=0, record_paths=False)

    _, stats, _, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    _partition[partitioner] = stats
    benchmark.extra_info.update(stats.snapshot())


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if len(_scaling) < 5 or len(_partition) < 3:
        return
    # Scaling shape: modeled makespan strictly improves with workers.
    makespans = [(_scaling[w].modeled_makespan, w) for w in sorted(_scaling)]
    assert makespans[0][0] > makespans[-1][0]
    assert _scaling[8].modeled_makespan < _scaling[1].modeled_makespan / 3
    # Degree-balanced packing must balance compute at least as well as hash.
    assert _partition["degree"].compute_balance <= _partition["hash"].compute_balance + 0.05

    text = "\n\n".join(
        [
            format_series(
                {
                    "modeled_makespan": {
                        f"W={w}": _scaling[w].modeled_makespan for w in sorted(_scaling)
                    },
                    "migration_rate": {
                        f"W={w}": _scaling[w].migration_rate for w in sorted(_scaling)
                    },
                },
                x_label="workers",
                title="Distributed TEA (§4.4 future work): scaling with workers",
            ),
            format_series(
                {
                    "compute_balance": {
                        p: s.compute_balance for p, s in _partition.items()
                    },
                    "migration_rate": {
                        p: s.migration_rate for p, s in _partition.items()
                    },
                    "edge_cut": {
                        p: float(s.edge_cut) for p, s in _partition.items()
                    },
                },
                x_label="partitioner",
                title="Partitioner ablation at 8 workers",
            ),
        ]
    )
    write_result("distributed_scaling", text)
