"""Ingest throughput — bulk columnar path vs per-edge apply loop.

Not a paper figure: the paper reports incremental maintenance cost per
batch (Figure 13d); this bench characterises the durable-ingest ISSUE's
acceptance bar instead. Three arms over the same edge stream:

* ``bulk``      — one ``add_multiple_edges`` call (one argsort, one
                  per-vertex group append, one WAL record);
* ``batched``   — ``apply_batch`` per 1,000-edge batch (the streaming
                  steady state);
* ``per_edge``  — ``apply_batch`` per single edge (the naive loop the
                  bulk path must beat ≥5x on edges/sec, measured on a
                  prefix so the run stays tractable — the prefix's
                  smaller index makes the gate conservative).

Each run appends ``edges_per_sec_*`` to
``bench_results/history/ingest_throughput.jsonl`` so
``repro bench compare --bench ingest_throughput`` gates regressions.
"""

import time

import pytest

from benchmarks.conftest import (
    BENCH_SCALE,
    record_history,
    write_json_result,
    write_result,
)
from repro.core.weights import WeightModel
from repro.graph.generators import temporal_powerlaw
from repro.streaming.batch import StreamingTeaEngine
from repro.walks.spec import WalkSpec

NUM_EDGES = int(24_000 * BENCH_SCALE)
PER_EDGE_PREFIX = int(3_000 * BENCH_SCALE)
BATCH_SIZE = 1_000

_metrics = {}


def _spec() -> WalkSpec:
    return WalkSpec(
        name="ingest-bench",
        weight_model=WeightModel("exponential_decay", scale=40.0),
    )


def _stream():
    return temporal_powerlaw(
        num_vertices=max(200, NUM_EDGES // 60),
        num_edges=NUM_EDGES,
        seed=17,
        time_horizon=500.0,
    )


def _run_arms():
    stream = _stream()

    bulk = StreamingTeaEngine(_spec())
    t0 = time.perf_counter()
    bulk.add_multiple_edges(stream.src, stream.dst, stream.time)
    bulk_s = time.perf_counter() - t0

    batched = StreamingTeaEngine(_spec())
    t0 = time.perf_counter()
    batched.ingest(stream, batch_size=BATCH_SIZE)
    batched_s = time.perf_counter() - t0

    prefix = stream[:PER_EDGE_PREFIX]
    per_edge = StreamingTeaEngine(_spec())
    t0 = time.perf_counter()
    for i in range(len(prefix)):
        per_edge.apply_batch(prefix[i : i + 1])
    per_edge_s = time.perf_counter() - t0

    # Same index, same walks: bulk and batched ingest must agree
    # bit-for-bit (the decay forest is batch-boundary-canonical).
    starts = bulk.active_vertices()[:16]
    bulk_walks = [w.hops for w in bulk.run_walks(starts, max_length=12, seed=1)]
    batched_walks = [
        w.hops for w in batched.run_walks(starts, max_length=12, seed=1)
    ]
    assert bulk_walks == batched_walks, "bulk and batched ingest diverged"

    return {
        "edges_per_sec_bulk": len(stream) / max(bulk_s, 1e-9),
        "edges_per_sec_batched": len(stream) / max(batched_s, 1e-9),
        "edges_per_sec_per_edge": len(prefix) / max(per_edge_s, 1e-9),
        "bulk_s": bulk_s,
        "batched_s": batched_s,
        "per_edge_s": per_edge_s,
    }


def test_ingest_throughput(benchmark):
    metrics = benchmark.pedantic(_run_arms, rounds=1, iterations=1)
    _metrics.update(metrics)
    benchmark.extra_info.update({k: round(v, 2) for k, v in metrics.items()})
    speedup = metrics["edges_per_sec_bulk"] / metrics["edges_per_sec_per_edge"]
    assert speedup >= 5.0, (
        f"bulk ingest only {speedup:.1f}x over the per-edge loop "
        f"({metrics['edges_per_sec_bulk']:,.0f} vs "
        f"{metrics['edges_per_sec_per_edge']:,.0f} edges/s); gate is 5x"
    )


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _metrics:
        return
    speedup = (
        _metrics["edges_per_sec_bulk"] / _metrics["edges_per_sec_per_edge"]
    )
    lines = [
        "ingest throughput (edges/sec, higher is better)",
        f"  bulk add_multiple_edges : {_metrics['edges_per_sec_bulk']:>12,.0f}"
        f"  ({NUM_EDGES} edges in {_metrics['bulk_s'] * 1e3:.1f} ms)",
        f"  batched (B={BATCH_SIZE})      : "
        f"{_metrics['edges_per_sec_batched']:>12,.0f}",
        f"  per-edge apply loop     : "
        f"{_metrics['edges_per_sec_per_edge']:>12,.0f}"
        f"  ({PER_EDGE_PREFIX}-edge prefix)",
        f"  bulk / per-edge speedup : {speedup:>12.1f}x  (gate: >= 5x)",
    ]
    write_result("ingest_throughput", "\n".join(lines))
    write_json_result(
        "ingest_throughput",
        {k: round(v, 3) for k, v in _metrics.items()},
    )
    record_history(
        "ingest_throughput",
        {
            "edges_per_sec_bulk": round(_metrics["edges_per_sec_bulk"], 1),
            "edges_per_sec_batched": round(
                _metrics["edges_per_sec_batched"], 1
            ),
            "edges_per_sec_per_edge": round(
                _metrics["edges_per_sec_per_edge"], 1
            ),
        },
        num_edges=NUM_EDGES,
        batch_size=BATCH_SIZE,
    )
